# Developer entry points.  Everything honours PYTHONPATH=src (pyproject
# sets pythonpath for pytest, the bench script inserts it itself).

PYTHON ?= python

.PHONY: test bench bench-smoke bench-graph bench-batch bench-batch-smoke bench-suites smoke-campaign topologies-campaign dist-smoke batch-diff faults-campaign chaos-smoke

## Tier-1 test suite (the CI gate).
test:
	$(PYTHON) -m pytest -x -q

## Full engine hot-path benchmark; rewrites BENCH_engine.json at the repo
## root — commit the refreshed file so the perf trajectory stays current.
bench:
	$(PYTHON) benchmarks/bench_engine_hotpath.py

## CI-sized benchmark (< 60 s) with the acceptance guard: fails if the
## worst-case-adversary headline drops below 5x over the reference path.
bench-smoke:
	@mkdir -p results
	$(PYTHON) benchmarks/bench_engine_hotpath.py --smoke \
		--out results/BENCH_engine_smoke.json --min-speedup 5

## Graph-topology (unified core) numbers, merged into BENCH_engine.json
## without disturbing the ring sections — commit the refreshed file.
bench-graph:
	$(PYTHON) benchmarks/bench_engine_hotpath.py --graph

## Batched-vs-scalar campaign throughput, merged into the batch section
## of BENCH_engine.json — commit the refreshed file.  The guard fails if
## the 256-cell k=32 headline chunk runs below 5x scalar throughput.
bench-batch:
	$(PYTHON) benchmarks/bench_batch.py --min-speedup 5

## CI-sized batch benchmark (headline + one row, single repeat) with a
## noise-tolerant 3x guard; writes next to the other smoke artifacts.
bench-batch-smoke:
	@mkdir -p results
	$(PYTHON) benchmarks/bench_batch.py --smoke \
		--out results/BENCH_batch_smoke.json --min-speedup 3

## The all-eligible smoke campaigns twice — vectorized and scalar — then
## a byte-for-byte store diff.  batch-smoke covers the NS/FSYNC corner;
## batch-wide covers the widened frontier (PT/ET transports, landmark
## kernels, SSYNC activation masks).
batch-diff:
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec batch-smoke \
		--workers 1 --batch auto --store results/batch-auto.jsonl
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec batch-smoke \
		--workers 1 --batch off --store results/batch-off.jsonl
	PYTHONPATH=src $(PYTHON) scripts/diff_stores.py \
		results/batch-auto.jsonl results/batch-off.jsonl
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec batch-wide \
		--workers 1 --batch auto --store results/batch-wide-auto.jsonl
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec batch-wide \
		--workers 1 --batch off --store results/batch-wide-off.jsonl
	PYTHONPATH=src $(PYTHON) scripts/diff_stores.py \
		results/batch-wide-auto.jsonl results/batch-wide-off.jsonl

## The pytest-benchmark suites (paper-table reproductions).
bench-suites:
	$(PYTHON) -m pytest benchmarks -q

## The CI smoke campaign, serially, against the default JSONL store.
smoke-campaign:
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec smoke --workers 2

## The unified-core scheduler x topology smoke campaign (needs networkx).
topologies-campaign:
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec topologies-smoke --workers 2

## The distributed path end to end: enqueue into the lease queue, drain it
## with two local worker processes (more hosts can join the same store).
dist-smoke:
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec topologies-smoke \
		--distributed --workers 2 --store sqlite:results/topo-dist.db

## The fault-injection sweep: crashed/lossy agents next to their
## fault-free twins, then the error and complexity-fit reports over the
## resulting store, then an integrity check.
faults-campaign:
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec faults-smoke \
		--workers 2 --store results/faults-smoke.jsonl
	PYTHONPATH=src $(PYTHON) -m repro campaign report --spec faults-smoke \
		--store results/faults-smoke.jsonl --errors
	PYTHONPATH=src $(PYTHON) -m repro campaign report --spec faults-smoke \
		--store results/faults-smoke.jsonl --fit
	PYTHONPATH=src $(PYTHON) -m repro campaign fsck --spec faults-smoke \
		--store results/faults-smoke.jsonl

## The chaos lane locally: a clean baseline run, then the same campaign
## driven through the lease queue under REPRO_CHAOS (one worker crashes
## mid-completion, the survivor finishes), then fsck + a byte diff
## against the undisturbed store.  Mirrors the CI chaos step.
chaos-smoke:
	@mkdir -p results
	rm -f results/chaos-clean.jsonl results/chaos.db
	PYTHONPATH=src $(PYTHON) -m repro campaign run --spec batch-smoke \
		--workers 1 --store results/chaos-clean.jsonl
	PYTHONPATH=src $(PYTHON) -m repro campaign enqueue --spec batch-smoke \
		--store sqlite:results/chaos.db --chunk-size 4
	-PYTHONPATH=src REPRO_CHAOS="seed=7,busy=0.2,crash=before-commit:2" \
		$(PYTHON) -m repro campaign worker --campaign batch-smoke \
		--store sqlite:results/chaos.db --worker-id doomed --lease-ttl 2
	PYTHONPATH=src REPRO_CHAOS="seed=11,busy=0.2" \
		$(PYTHON) -m repro campaign worker --campaign batch-smoke \
		--store sqlite:results/chaos.db --worker-id survivor \
		--lease-ttl 2 --poll 0.5
	PYTHONPATH=src $(PYTHON) -m repro campaign fsck --spec batch-smoke \
		--store sqlite:results/chaos.db
	PYTHONPATH=src $(PYTHON) scripts/diff_stores.py \
		sqlite:results/chaos.db results/chaos-clean.jsonl
