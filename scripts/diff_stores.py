"""Assert two result stores are identical modulo timing and telemetry.

``python scripts/diff_stores.py A B`` exits non-zero unless the stores
hold the same records — same keys, same configs, same metrics, same
errors — ignoring only :data:`IGNORED_FIELDS`:

* ``elapsed_s`` — wall time, the one result the batched and scalar
  execution paths are *allowed* to change;
* ``span_id``  — trace correlation id, present only when a run executed
  with ``--trace``/``--trace-jsonl`` and random by construction.

The CI batch lane and ``make batch-diff`` run it over a ``--batch
auto`` store and a ``--batch off`` store of the same campaign: any
other byte of difference means the vector path leaked into the
persisted results.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaigns.stores import open_store  # noqa: E402

#: Per-record fields excluded from the comparison (documented above).
IGNORED_FIELDS = frozenset({"elapsed_s", "span_id"})


def comparable(store_uri: str) -> dict[str, dict]:
    records = {}
    for record in open_store(store_uri).records():
        stripped = {k: v for k, v in record.items()
                    if k not in IGNORED_FIELDS}
        records[record["key"]] = stripped
    return records


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {Path(sys.argv[0]).name} STORE_A STORE_B",
              file=sys.stderr)
        return 2
    a, b = comparable(argv[0]), comparable(argv[1])
    if a == b:
        ignored = ", ".join(sorted(IGNORED_FIELDS))
        print(f"stores identical: {len(a)} records "
              f"(keys, configs, metrics; {ignored} ignored)")
        return 0
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    for key in only_a:
        print(f"only in {argv[0]}: {key}", file=sys.stderr)
    for key in only_b:
        print(f"only in {argv[1]}: {key}", file=sys.stderr)
    for key in sorted(set(a) & set(b)):
        if a[key] != b[key]:
            print(f"record differs for {key}:\n  A: {a[key]}\n  B: {b[key]}",
                  file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
