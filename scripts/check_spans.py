"""Validate a span trace JSONL file (the CI observability lane's check).

``python scripts/check_spans.py spans.jsonl [--require-kinds campaign,chunk,cell]``
exits non-zero unless every line is a well-formed span record
(:mod:`repro.obs.spans` schema 1) and the parent hierarchy is sound:

* every line parses as a JSON object with the required keys;
* ``kind`` / ``status`` come from the known vocabularies;
* ``elapsed_s`` is a non-negative number, ``start_s`` a positive one;
* a ``cell`` span's parent (when present in the file) is a ``chunk``;
* a ``chunk`` span's parent (when present) is a ``campaign``;
* ``--require-kinds`` asserts at least one span of each listed kind —
  the smoke lane uses it to prove the whole hierarchy was emitted.

Parents are checked only when the referenced span appears in the same
file: a multi-process fleet may split one trace across sinks, so a
dangling ``parent_id`` is not by itself an error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.spans import SPAN_KINDS, SPAN_SCHEMA  # noqa: E402

REQUIRED_KEYS = frozenset({
    "schema", "span_id", "parent_id", "kind", "name",
    "start_s", "elapsed_s", "status", "attrs",
})
STATUSES = frozenset({"ok", "error"})
#: Which parent kind each child kind must hang off (None = root allowed).
PARENT_KIND = {"campaign": None, "chunk": "campaign", "cell": "chunk"}


def check_spans(path: Path, require_kinds: list[str]) -> list[str]:
    """Every problem found in ``path`` (empty list = valid trace)."""
    problems: list[str] = []
    spans: dict[str, dict] = {}
    rows: list[tuple[int, dict]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        missing = REQUIRED_KEYS - span.keys()
        if missing:
            problems.append(
                f"line {lineno}: missing keys {sorted(missing)}")
            continue
        if span["schema"] != SPAN_SCHEMA:
            problems.append(
                f"line {lineno}: schema {span['schema']!r} != {SPAN_SCHEMA}")
        if span["kind"] not in SPAN_KINDS:
            problems.append(
                f"line {lineno}: unknown kind {span['kind']!r}")
        if span["status"] not in STATUSES:
            problems.append(
                f"line {lineno}: unknown status {span['status']!r}")
        if not isinstance(span["elapsed_s"], (int, float)) \
                or span["elapsed_s"] < 0:
            problems.append(
                f"line {lineno}: bad elapsed_s {span['elapsed_s']!r}")
        if not isinstance(span["start_s"], (int, float)) \
                or span["start_s"] <= 0:
            problems.append(
                f"line {lineno}: bad start_s {span['start_s']!r}")
        if not isinstance(span["attrs"], dict):
            problems.append(
                f"line {lineno}: attrs is not an object")
        if span["span_id"] in spans:
            problems.append(
                f"line {lineno}: duplicate span_id {span['span_id']!r}")
        spans[span["span_id"]] = span
        rows.append((lineno, span))

    for lineno, span in rows:
        parent = spans.get(span["parent_id"] or "")
        if parent is not None:
            want = PARENT_KIND.get(span["kind"])
            if want is not None and parent["kind"] != want:
                problems.append(
                    f"line {lineno}: {span['kind']} span "
                    f"{span['span_id']} hangs off a {parent['kind']} "
                    f"span (expected {want})")

    kinds = Counter(span["kind"] for _, span in rows)
    for kind in require_kinds:
        if not kinds.get(kind):
            problems.append(f"no {kind!r} span in the trace")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="span JSONL file")
    parser.add_argument("--require-kinds", default="", metavar="K1,K2",
                        help="comma-separated span kinds that must appear "
                             "at least once (e.g. campaign,chunk,cell)")
    args = parser.parse_args(argv)
    if not args.trace.exists():
        print(f"no trace file at {args.trace}", file=sys.stderr)
        return 2
    require = [k.strip() for k in args.require_kinds.split(",") if k.strip()]
    problems = check_spans(args.trace, require)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    spans = sum(1 for line in args.trace.read_text().splitlines()
                if line.strip())
    print(f"trace valid: {spans} spans"
          + (f" (kinds required: {', '.join(require)})" if require else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
