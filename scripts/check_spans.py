"""Validate a span trace JSONL file (the CI observability lane's check).

``python scripts/check_spans.py spans.jsonl [--require-kinds campaign,chunk,cell]``
exits non-zero unless every line is a well-formed span record
(:mod:`repro.obs.spans` schema 1) and the parent hierarchy is sound.

Thin shim: the validation rules live in :mod:`repro.obs.validate` so
``campaign trace`` and the unit tests share them; this script only
parses arguments and sets the exit code.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.validate import (  # noqa: E402,F401  (re-exported for callers)
    PARENT_KIND,
    REQUIRED_KEYS,
    STATUSES,
    check_spans,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="span JSONL file")
    parser.add_argument("--require-kinds", default="", metavar="K1,K2",
                        help="comma-separated span kinds that must appear "
                             "at least once (e.g. campaign,chunk,cell)")
    args = parser.parse_args(argv)
    if not args.trace.exists():
        print(f"no trace file at {args.trace}", file=sys.stderr)
        return 2
    require = [k.strip() for k in args.require_kinds.split(",") if k.strip()]
    problems = check_spans(args.trace, require)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    spans = sum(1 for line in args.trace.read_text().splitlines()
                if line.strip())
    print(f"trace valid: {spans} spans"
          + (f" (kinds required: {', '.join(require)})" if require else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
