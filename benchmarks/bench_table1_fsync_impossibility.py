"""Table 1 (FSYNC impossibility results), demonstrated.

Experiments T1.1-T1.2.  Impossibility theorems quantify over all
algorithms; these benches demonstrate the paper's constructions against
representative concrete protocols (see DESIGN.md, "What reproduction
means"):

* Theorem 1/2 — any fixed termination budget is defeated by a larger ring
  (the scaling construction), and the budget-free algorithms of this
  library never terminate, consistently with the theorems;
* Observation 1/Corollary 1 — a single agent is pinned forever;
* Observation 2 — two agents never observe each other.
"""

from conftest import record, report

from repro.adversary import BlockAgentAdversary, MeetingPreventionAdversary
from repro.algorithms import GuessAndTerminate, UnconsciousExploration
from repro.api import run_exploration
from repro.core import TerminationMode


def test_t1_theorem1_scaling_defeats_any_budget(benchmark):
    """T1.1: for every budget, a ring exists where the guess fails."""
    budgets = (10, 20, 40, 80)

    def workload():
        outcomes = {}
        for budget in budgets:
            small = run_exploration(
                GuessAndTerminate(budget=budget), ring_size=max(3, budget // 4),
                positions=[0, 1], max_rounds=budget + 10,
            )
            large = run_exploration(
                GuessAndTerminate(budget=budget), ring_size=budget + 4,
                positions=[0, 1], max_rounds=budget + 10,
            )
            outcomes[budget] = (small.termination_mode(), large.termination_mode())
        return outcomes

    outcomes = benchmark(workload)
    rows = []
    for budget, (small, large) in outcomes.items():
        rows.append((budget, small.value, large.value))
        assert large is TerminationMode.INCORRECT
    report("Table 1 (Theorem 1): guess-and-terminate vs ring size",
           rows, ("budget", "small ring", "ring of size budget+4"))
    record(benchmark, claim="partial termination impossible without knowledge",
           defeated_budgets=list(outcomes))


def test_t1_observation1_single_agent(benchmark):
    """Corollary 1: one agent, pinned forever by Observation 1's adversary."""

    def workload():
        return run_exploration(
            UnconsciousExploration(), ring_size=12, positions=[5],
            adversary=BlockAgentAdversary(0), max_rounds=2_000,
        )

    result = benchmark(workload)
    report("Observation 1 / Corollary 1",
           [("moves", 0, result.total_moves),
            ("visited", 1, len(result.visited))],
           ("quantity", "paper", "measured"))
    assert result.total_moves == 0
    assert len(result.visited) == 1
    record(benchmark, moves=result.total_moves, visited=len(result.visited))


def test_t1_observation2_no_meetings(benchmark):
    """Observation 2: the agents never share a node over a long horizon."""

    def workload():
        from repro.api import build_engine

        engine = build_engine(
            UnconsciousExploration(), ring_size=11, positions=[0, 5],
            adversary=MeetingPreventionAdversary(),
        )
        co_located = 0
        for _ in range(3_000):
            engine.step()
            if engine.agents[0].node == engine.agents[1].node:
                co_located += 1
        return co_located, engine.exploration_complete

    co_located, explored = benchmark(workload)
    report("Observation 2: meeting prevention over 3000 rounds",
           [("co-located rounds", 0, co_located),
            ("ring explored anyway", "yes (Th. 5)", explored)],
           ("quantity", "paper", "measured"))
    assert co_located == 0
    assert explored
    record(benchmark, co_located_rounds=co_located, explored=explored)
