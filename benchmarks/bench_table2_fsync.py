"""Table 2 (FSYNC possibility results) + Theorem 5, regenerated.

Experiments T2.1-T2.3 and T5, now thin drivers over the declarative
``table2-fsync`` campaign spec (:mod:`repro.campaigns.presets`): each
test executes one variant's cells through the campaign executor and
asserts the paper's claim on the aggregated records.

* Theorem 3 — ``KnownNNoChirality`` terminates at exactly ``3N - 6``;
* Theorem 5 — unconscious exploration completes in O(n);
* Theorem 6 — ``LandmarkWithChirality`` terminates in O(n);
* Theorem 8 — ``LandmarkNoChirality`` terminates in O(n log n).

Shape claims are checked with least-squares fits over a ring-size sweep;
absolute constants are implementation-specific and recorded in
EXPERIMENTS.md.  The same cells can be (re)computed in parallel with
``python -m repro campaign run --spec table2-fsync``.
"""

import statistics

from conftest import by_size, record, report, run_variant

from repro.campaigns import aggregate_records
from repro.campaigns.presets import table2_fsync
from repro.analysis.complexity import fit_model
from repro.theory.bounds import fsync_known_bound_time, no_chirality_timeout

SPEC = table2_fsync()
CELLS = SPEC.cell_list()


def test_t2_1_theorem3_exact_termination_time(benchmark):
    """T2.1: explicit termination at exactly 3N - 6 for every N and seed."""
    records = benchmark(run_variant, CELLS, "t2.1-theorem3-known-bound")
    sizes = by_size(records)
    table = []
    for n in sorted(sizes):
        measured = {m["last_termination_round"] for m in sizes[n]}
        table.append((f"n=N={n}", f"3N-6 = {fsync_known_bound_time(n)}",
                      sorted(measured), "ok"))
        assert measured == {fsync_known_bound_time(n)}
        assert all(m["explored"] for m in sizes[n])
    report("Table 2 row 1 (Theorem 3): termination round",
           table, ("setting", "paper", "measured", "verdict"))
    record(benchmark, claim="explicit termination in 3N-6 rounds",
           measured={n: fsync_known_bound_time(n) for n in sorted(sizes)})


def test_t5_unconscious_exploration_is_linear(benchmark):
    """T5: exploration round grows linearly in n (Theorem 5)."""
    records = benchmark(run_variant, CELLS, "t5-theorem5-unconscious")
    sizes = by_size(records)
    means = {}
    for n in sorted(sizes):
        assert all(m["explored"] for m in sizes[n])
        means[n] = statistics.fmean(m["exploration_round"] for m in sizes[n])
    fit = fit_model(list(means), list(means.values()), "linear")
    report("Theorem 5: unconscious exploration time",
           [(n, "O(n)", f"{means[n]:.1f}") for n in sorted(means)],
           ("n", "paper", "measured mean rounds"))
    print(f"linear fit: {fit}")
    assert fit.r_squared > 0.97
    record(benchmark, claim="unconscious exploration in O(n)",
           linear_r2=fit.r_squared, mean_rounds=means)


def test_t2_2_theorem6_landmark_chirality_linear(benchmark):
    """T2.2: LandmarkWithChirality terminates in O(n) rounds."""
    records = benchmark(run_variant, CELLS, "t2.2-theorem6-landmark-chirality")
    means = {}
    for n, metrics in sorted(by_size(records).items()):
        assert all(m["all_terminated"] and m["explored"] for m in metrics)
        means[n] = statistics.fmean(m["last_termination_round"] for m in metrics)
    fit = fit_model(list(means), list(means.values()), "linear")
    quad = fit_model(list(means), list(means.values()), "quadratic")
    report("Table 2 row 2 (Theorem 6): termination time",
           [(n, "O(n)", f"{means[n]:.1f}") for n in sorted(means)],
           ("n", "paper", "measured mean rounds"))
    print(f"linear fit: {fit}")
    assert fit.r_squared > 0.97
    assert fit.r_squared >= quad.r_squared - 0.02  # not secretly quadratic
    record(benchmark, claim="explicit termination in O(n)",
           linear_r2=fit.r_squared, mean_rounds=means)


def test_t2_3_theorem8_landmark_no_chirality(benchmark):
    """T2.3: LandmarkNoChirality terminates within the O(n log n) horizon."""
    records = benchmark(run_variant, CELLS, "t2.3-theorem8-landmark-no-chirality")
    worst = {}
    for n, metrics in sorted(by_size(records).items()):
        assert all(m["all_terminated"] and m["explored"] for m in metrics)
        worst[n] = max(m["last_termination_round"] for m in metrics)
    rows = [
        (n, f"<= {no_chirality_timeout(n) + 1}", worst[n])
        for n in sorted(worst)
    ]
    report("Table 2 row 3 (Theorem 8): termination time vs O(n log n) horizon",
           rows, ("n", "paper bound", "measured worst"))
    for n in worst:
        assert worst[n] <= no_chirality_timeout(n) + 1
    record(benchmark, claim="explicit termination in O(n log n)",
           worst_rounds=worst,
           horizon={n: no_chirality_timeout(n) for n in worst})


def test_table2_campaign_aggregation_matches_paper_modes():
    """The campaign aggregation layer reports the right termination modes.

    A few cells per variant suffice — the full families already ran in
    the benchmark tests above; this only exercises the aggregation.
    """
    records = []
    for label in ("t2.1-theorem3-known-bound", "t5-theorem5-unconscious"):
        sample = [c for c in CELLS if c.label == label][:3]
        records.extend(run_variant(sample, label))
    rows = aggregate_records(records, by=("label", "ring_size"))
    assert rows
    for row in rows:
        group = dict(row.group)
        expected = ("explicit" if group["label"].startswith("t2.1")
                    else "unconscious")
        assert set(row.stats.modes) == {expected}, row
