"""Table 2 (FSYNC possibility results) + Theorem 5, regenerated.

Experiments T2.1-T2.3 and T5 of DESIGN.md/EXPERIMENTS.md:

* Theorem 3 — ``KnownNNoChirality`` terminates at exactly ``3N - 6``;
* Theorem 5 — unconscious exploration completes in O(n);
* Theorem 6 — ``LandmarkWithChirality`` terminates in O(n);
* Theorem 8 — ``LandmarkNoChirality`` terminates in O(n log n).

Shape claims are checked with least-squares fits over a ring-size sweep;
absolute constants are implementation-specific and recorded in
EXPERIMENTS.md.
"""

import statistics

from conftest import record, report

from repro.adversary import RandomMissingEdge
from repro.algorithms.fsync import (
    KnownUpperBound,
    LandmarkNoChirality,
    LandmarkWithChirality,
    UnconsciousExploration,
)
from repro.analysis.complexity import fit_model
from repro.api import build_engine
from repro.schedulers import FsyncScheduler
from repro.theory.bounds import fsync_known_bound_time, no_chirality_timeout

SEEDS = range(5)


def run_fsync(algorithm, n, *, landmark=None, chirality=True, flipped=(),
              seed=0, max_rounds=None, stop_on_exploration=False):
    engine = build_engine(
        algorithm,
        ring_size=n,
        positions=[1, 1 + n // 2],
        landmark=landmark,
        chirality=chirality,
        flipped=flipped,
        adversary=RandomMissingEdge(seed=seed),
        scheduler=FsyncScheduler(),
    )
    horizon = max_rounds if max_rounds is not None else 100 * n
    return engine.run(horizon, stop_on_exploration=stop_on_exploration)


def test_t2_1_theorem3_exact_termination_time(benchmark):
    """T2.1: explicit termination at exactly 3N - 6 for every N and seed."""
    sizes = (8, 16, 32, 64)

    def workload():
        rows = []
        for n in sizes:
            for seed in SEEDS:
                result = run_fsync(
                    KnownUpperBound(bound=n), n, seed=seed,
                    max_rounds=fsync_known_bound_time(n) + 5,
                )
                rows.append((n, result.last_termination_round, result.explored))
        return rows

    rows = benchmark(workload)
    table = []
    for n in sizes:
        measured = {r[1] for r in rows if r[0] == n}
        table.append((f"n=N={n}", f"3N-6 = {fsync_known_bound_time(n)}",
                      sorted(measured), "ok"))
        assert measured == {fsync_known_bound_time(n)}
        assert all(r[2] for r in rows if r[0] == n)
    report("Table 2 row 1 (Theorem 3): termination round",
           table, ("setting", "paper", "measured", "verdict"))
    record(benchmark, claim="explicit termination in 3N-6 rounds",
           measured={n: fsync_known_bound_time(n) for n in sizes})


def test_t5_unconscious_exploration_is_linear(benchmark):
    """T5: exploration round grows linearly in n (Theorem 5)."""
    sizes = (8, 16, 32, 64, 128)

    def workload():
        means = {}
        for n in sizes:
            rounds = []
            for seed in SEEDS:
                result = run_fsync(
                    UnconsciousExploration(), n, seed=seed,
                    stop_on_exploration=True,
                )
                assert result.explored
                rounds.append(result.exploration_round)
            means[n] = statistics.fmean(rounds)
        return means

    means = benchmark(workload)
    fit = fit_model(list(means), list(means.values()), "linear")
    report("Theorem 5: unconscious exploration time",
           [(n, f"O(n)", f"{means[n]:.1f}") for n in sizes],
           ("n", "paper", "measured mean rounds"))
    print(f"linear fit: {fit}")
    assert fit.r_squared > 0.97
    record(benchmark, claim="unconscious exploration in O(n)",
           linear_r2=fit.r_squared, mean_rounds=means)


def test_t2_2_theorem6_landmark_chirality_linear(benchmark):
    """T2.2: LandmarkWithChirality terminates in O(n) rounds."""
    sizes = (8, 16, 32, 64, 128)

    def workload():
        means = {}
        for n in sizes:
            rounds = []
            for seed in SEEDS:
                result = run_fsync(
                    LandmarkWithChirality(), n, landmark=0, seed=seed,
                )
                assert result.all_terminated and result.explored
                rounds.append(result.last_termination_round)
            means[n] = statistics.fmean(rounds)
        return means

    means = benchmark(workload)
    fit = fit_model(list(means), list(means.values()), "linear")
    quad = fit_model(list(means), list(means.values()), "quadratic")
    report("Table 2 row 2 (Theorem 6): termination time",
           [(n, "O(n)", f"{means[n]:.1f}") for n in sizes],
           ("n", "paper", "measured mean rounds"))
    print(f"linear fit: {fit}")
    assert fit.r_squared > 0.97
    assert fit.r_squared >= quad.r_squared - 0.02  # not secretly quadratic
    record(benchmark, claim="explicit termination in O(n)",
           linear_r2=fit.r_squared, mean_rounds=means)


def test_t2_3_theorem8_landmark_no_chirality(benchmark):
    """T2.3: LandmarkNoChirality terminates within the O(n log n) horizon."""
    sizes = (6, 8, 12, 16)

    def workload():
        worst = {}
        for n in sizes:
            rounds = []
            for seed in SEEDS:
                result = run_fsync(
                    LandmarkNoChirality(), n, landmark=0,
                    chirality=False, flipped=(1,), seed=seed,
                    max_rounds=no_chirality_timeout(n) + 10,
                )
                assert result.all_terminated and result.explored
                rounds.append(result.last_termination_round)
            worst[n] = max(rounds)
        return worst

    worst = benchmark(workload)
    rows = [
        (n, f"<= {no_chirality_timeout(n) + 1}", worst[n])
        for n in sizes
    ]
    report("Table 2 row 3 (Theorem 8): termination time vs O(n log n) horizon",
           rows, ("n", "paper bound", "measured worst"))
    for n in sizes:
        assert worst[n] <= no_chirality_timeout(n) + 1
    record(benchmark, claim="explicit termination in O(n log n)",
           worst_rounds=worst,
           horizon={n: no_chirality_timeout(n) for n in sizes})
