"""Open problem (paper §5): live exploration beyond rings, measured.

Experiment OP: "a challenging [open problem] is the study of live
exploration in a network of arbitrary topology ... meshes, tori,
hypercubes".  No non-trivial algorithm is known; this bench measures the
two baselines any future algorithm must beat — the seeded random walk
(the classical dynamic-graph answer, [4]) and the rotor-router (with an
explicitly documented node-identity strengthening) — on static and
1-interval-connected dynamic versions of the paper's suggested topologies.
"""

import statistics

from conftest import record, report

from repro.extensions import (
    ConnectivityPreservingAdversary,
    DynamicGraphEngine,
    RandomWalkExplorer,
    RotorRouterExplorer,
    StaticGraphAdversary,
    hypercube,
    ring_graph,
    torus,
)
from repro.extensions.explorers import attach_node_oracle

TOPOLOGIES = {
    "ring16": ring_graph(16),
    "torus4x4": torus(4, 4),
    "hypercube4": hypercube(4),
}
SEEDS = range(6)
HORIZON = 200_000


def explore(graph, explorer_factory, *, dynamic, seed, rotor=False):
    adversary = (
        ConnectivityPreservingAdversary(budget=1, seed=seed)
        if dynamic
        else StaticGraphAdversary()
    )
    engine = DynamicGraphEngine(graph, explorer_factory(seed), [0], adversary=adversary)
    if rotor:
        attach_node_oracle(engine)
    result = engine.run(HORIZON)
    assert result.explored
    return result.exploration_round


def test_op_baselines_on_paper_topologies(benchmark):
    def workload():
        data = {}
        for label, graph in TOPOLOGIES.items():
            for dynamic in (False, True):
                walk = statistics.fmean(
                    explore(graph, lambda s: RandomWalkExplorer(seed=s),
                            dynamic=dynamic, seed=seed)
                    for seed in SEEDS
                )
                rotor = statistics.fmean(
                    explore(graph, lambda s: RotorRouterExplorer(),
                            dynamic=dynamic, seed=seed, rotor=True)
                    for seed in SEEDS
                )
                data[(label, dynamic)] = (walk, rotor)
        return data

    data = benchmark(workload)
    rows = []
    for (label, dynamic), (walk, rotor) in sorted(data.items()):
        rows.append((label, "dynamic" if dynamic else "static",
                     f"{walk:.0f}", f"{rotor:.0f}"))
    report("Open problem: baseline exploration on tori/hypercubes", rows,
           ("topology", "dynamism", "random walk (mean rounds)",
            "rotor-router (mean rounds)"))
    # sanity: dynamism can only slow a single explorer down on a ring
    assert data[("ring16", True)][0] >= data[("ring16", False)][0] * 0.5
    record(benchmark, results={f"{k[0]}/{'dyn' if k[1] else 'static'}": v
                               for k, v in data.items()})
