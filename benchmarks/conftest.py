"""Shared benchmark helpers: paper-vs-measured reporting + campaign driving."""

from __future__ import annotations


def run_variant(cells, label):
    """Execute every campaign cell carrying ``label``, in-process."""
    from repro.campaigns import execute_cell

    records = [execute_cell(c) for c in cells if c.label == label]
    assert records, f"no cells labelled {label!r}"
    errors = [r["error"] for r in records if "error" in r]
    assert not errors, errors
    return records


def by_size(records):
    """ring_size -> list of metric dicts."""
    sizes = {}
    for r in records:
        sizes.setdefault(r["config"]["ring_size"], []).append(r["metrics"])
    return sizes


def record(benchmark, **info) -> None:
    """Attach paper-vs-measured fields to the benchmark JSON/report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def report(title: str, rows: list[tuple], header: tuple) -> None:
    """Print an aligned paper-vs-measured table (shown with ``-s``/on failure)."""
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title}")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
