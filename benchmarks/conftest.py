"""Shared benchmark helpers: paper-vs-measured reporting."""

from __future__ import annotations


def record(benchmark, **info) -> None:
    """Attach paper-vs-measured fields to the benchmark JSON/report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def report(title: str, rows: list[tuple], header: tuple) -> None:
    """Print an aligned paper-vs-measured table (shown with ``-s``/on failure)."""
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title}")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
