"""Round-loop throughput of the engine hot path; persists ``BENCH_engine.json``.

Unlike the pytest-benchmark suites next to it, this is a standalone
script: it sweeps ring sizes 10^2..10^5, agent counts 1..64 and the three
transport models, measures rounds/second on the optimized engine, and —
for a subset plus the headline worst-case configuration (n=1000, k=32,
``ns-starvation``) — on the reference path (``optimized=False``), which
preserves the pre-index engine's behaviour and allocation profile
(O(k) Look scans, a fresh ``Snapshot`` per observation, uncached peeks).
The speedup column is therefore measured, not estimated, on every run.

Usage::

    python benchmarks/bench_engine_hotpath.py           # full sweep
    python benchmarks/bench_engine_hotpath.py --smoke   # CI mode, < 60 s
    make bench / make bench-smoke

Results land in ``BENCH_engine.json`` at the repo root (override with
``--out``) so the repository carries a perf trajectory reviewers can
diff PR over PR.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaigns.registry import build_cell_engine  # noqa: E402
from repro.campaigns.spec import CellConfig  # noqa: E402

#: The acceptance configuration: a peek-heavy omniscient adversary over a
#: mid-size ring and team — the regime every impossibility sweep lives in.
HEADLINE = dict(algorithm="known-bound", ring_size=1000, agents=32,
                adversary="ns-starvation", transport="ns")

WARMUP_ROUNDS = 30


def measure(cell: CellConfig, *, optimized: bool, budget_s: float,
            max_rounds: int = 200_000, prepare=None) -> dict:
    """Rounds/second for one configuration on one engine path.

    Engines that run out of live agents are rebuilt mid-measurement so
    short-lived algorithms still yield sustained-throughput numbers.
    ``prepare`` (if given) runs against every freshly built engine —
    the hook the rule-dispatch before/after measurement uses to toggle
    ``memoize_dispatch`` on the algorithm.
    """
    def build():
        engine = build_cell_engine(cell, optimized=optimized)
        if prepare is not None:
            prepare(engine)
        return engine

    engine = build()
    for _ in range(WARMUP_ROUNDS):
        if not engine.step():
            engine = build()
    rounds = 0
    elapsed = 0.0
    start = time.perf_counter()
    while rounds < max_rounds:
        if not engine.step():
            # Rebuild outside the clock: engine construction is not the
            # round loop.
            elapsed += time.perf_counter() - start
            engine = build()
            start = time.perf_counter()
            continue
        rounds += 1
        if rounds % 64 == 0:
            elapsed_now = elapsed + (time.perf_counter() - start)
            if elapsed_now >= budget_s:
                break
    elapsed += time.perf_counter() - start
    return {"rounds": rounds, "elapsed_s": round(elapsed, 4),
            "rounds_per_s": round(rounds / elapsed, 1) if elapsed else None}


def sweep_cell(ring_size: int, agents: int, transport: str) -> CellConfig:
    """A sustained workload per transport: unconscious explorers never
    terminate, so the loop runs for as long as the budget allows."""
    return CellConfig(
        algorithm="unconscious", ring_size=ring_size, agents=agents,
        max_rounds=10**8, adversary="random", transport=transport,
    )


def worst_case_cells() -> list[tuple[str, CellConfig]]:
    """The look-ahead (peeking) adversaries at benchmark scale."""
    return [
        ("ns-starvation(n=1000,k=32)", CellConfig(
            max_rounds=10**8, **HEADLINE)),
        ("block-agent(n=1000,k=8)", CellConfig(
            algorithm="unconscious", ring_size=1000, agents=8,
            max_rounds=10**8, adversary="block-agent", transport="ns")),
        ("zigzag(n=200,k=2)", CellConfig(
            algorithm="pt-bound", ring_size=200, agents=2,
            max_rounds=10**8, adversary="zigzag", transport="pt")),
    ]


def rule_dispatch_entry(budget: float) -> dict:
    """Before/after for the memoised rule dispatch of ``algorithms/base.py``.

    The workload is the compute-bound regime the ROADMAP names: FSYNC,
    every agent active every round, no adversary peeks, O(1) Look — so
    the round loop is dominated by the state-machine driver itself.
    ``interpretive`` re-derives each state's dispatch from the StateSpec
    on every Compute (the pre-memoisation behaviour); ``memoized`` reads
    the per-state table compiled at construction.
    """
    config = dict(algorithm="known-bound", ring_size=1000, agents=32,
                  adversary="none", transport="ns")
    cell = CellConfig(max_rounds=10**8, **config)

    def set_memo(value):
        def prepare(engine):
            engine.algorithm.memoize_dispatch = value
        return prepare

    memoized = measure(cell, optimized=True, budget_s=budget,
                       prepare=set_memo(True))
    interpretive = measure(cell, optimized=True, budget_s=budget,
                           prepare=set_memo(False))
    entry = {
        "config": config,
        "memoized": memoized,
        "interpretive": interpretive,
        "speedup": round(memoized["rounds_per_s"]
                         / interpretive["rounds_per_s"], 3),
    }
    print(f"  rule-dispatch (n=1000, k=32, fsync): "
          f"{memoized['rounds_per_s']:,.0f} vs "
          f"{interpretive['rounds_per_s']:,.0f} rounds/s -> "
          f"{entry['speedup']}x memoized", flush=True)
    return entry


def obs_overhead_entry(budget: float) -> dict:
    """Cost of the observability layer on the headline configuration.

    Disabled instrumentation is free *by construction* — the engine's
    plain ``step()`` is byte-identical to the pre-observability code and
    the instrumented twin only exists after ``set_instrument()``
    (``tests/obs/test_instrumented_step.py`` asserts the twin's
    equivalence).  This section measures it anyway: ``disabled`` is an
    A/A re-measurement of the baseline, so its overhead percentage
    bounds the *noise floor* the ``--max-obs-overhead`` CI guard runs
    at; ``enabled`` (a live :class:`~repro.obs.metrics.PhaseTimer` on
    every round) is reported for context, not gated.  Measurements
    interleave baseline/disabled/enabled; the gated percentage is the
    *minimum over interleaved pairs* — a real regression slows every
    pair by the same factor and survives the minimum, while scheduler
    noise (which flips sign across pairs) collapses to zero instead of
    flaking a 2% threshold.
    """
    from repro.obs.metrics import PhaseTimer

    cell = CellConfig(max_rounds=10**8, **HEADLINE)

    def plain() -> float:
        return measure(cell, optimized=True,
                       budget_s=budget)["rounds_per_s"]

    def instrumented() -> float:
        def prepare(engine):
            engine.set_instrument(PhaseTimer())
        return measure(cell, optimized=True, budget_s=budget,
                       prepare=prepare)["rounds_per_s"]

    baseline = disabled = enabled = 0.0
    paired = []
    for _ in range(3):
        b, d, e = plain(), plain(), instrumented()
        baseline, disabled, enabled = (
            max(baseline, b), max(disabled, d), max(enabled, e))
        paired.append(1 - d / b)
    entry = {
        "config": dict(HEADLINE),
        "baseline_rounds_per_s": baseline,
        "disabled_rounds_per_s": disabled,
        "enabled_rounds_per_s": enabled,
        "disabled_overhead_pct": round(max(0.0, min(paired)) * 100, 2),
        "enabled_overhead_pct": round(
            max(0.0, 1 - enabled / baseline) * 100, 2),
    }
    print(f"  obs overhead (headline): disabled "
          f"{entry['disabled_overhead_pct']}% "
          f"(A/A noise bound), enabled {entry['enabled_overhead_pct']}% "
          f"({enabled:,.0f} vs {baseline:,.0f} rounds/s)", flush=True)
    return entry


def graph_cells(smoke: bool) -> list[tuple[str, CellConfig]]:
    """Graph-topology workloads on the unified core (requires networkx).

    Explorers never terminate, so every cell sustains for the budget;
    ``adversary="random"`` includes the per-round connectivity check the
    connectivity-preserving adversary pays, ``"none"`` isolates the
    engine itself.
    """
    n = 64 if smoke else 1024  # torus factorises: 8x8 / 32x32
    cells = [
        (f"torus-walk(n={n},k=1)", CellConfig(
            algorithm="random-walk", ring_size=n, agents=1, max_rounds=10**8,
            adversary="none", topology="torus")),
        (f"torus-walk(n={n},k=8)", CellConfig(
            algorithm="random-walk", ring_size=n, agents=8, max_rounds=10**8,
            adversary="none", topology="torus")),
        # The connectivity-preserving adversary re-checks connectivity
        # per round (O(m) in networkx), so its row uses a smaller torus —
        # at large n it measures networkx, not the engine.
        (f"torus-walk-adv(n={min(n, 256)},k=8)", CellConfig(
            algorithm="random-walk", ring_size=min(n, 256), agents=8,
            max_rounds=10**8, adversary="random", topology="torus")),
        (f"torus-rotor(n={n},k=8)", CellConfig(
            algorithm="rotor-router", ring_size=n, agents=8, max_rounds=10**8,
            adversary="none", topology="torus")),
        (f"cactus-walk(n={n+1},k=8)", CellConfig(
            algorithm="random-walk", ring_size=n + 1, agents=8,
            max_rounds=10**8, adversary="none", topology="cactus")),
        (f"ring-walk(n={n},k=8)", CellConfig(
            algorithm="random-walk", ring_size=n, agents=8, max_rounds=10**8,
            adversary="none", topology="ring")),
    ]
    return cells


def run_graph(smoke: bool, budget_s: float | None) -> list[dict]:
    """The graph-topology section (``--graph`` / ``make bench-graph``)."""
    budget = budget_s or (0.05 if smoke else 0.2)
    rows = []
    for label, cell in graph_cells(smoke):
        row = {
            "workload": "graph", "label": label,
            "topology": cell.topology, "algorithm": cell.algorithm,
            "nodes": cell.ring_size, "agents": cell.agents,
            "adversary": cell.adversary,
            "optimized": measure(cell, optimized=True, budget_s=budget),
            "reference": measure(cell, optimized=False, budget_s=budget),
        }
        row["speedup"] = round(row["optimized"]["rounds_per_s"]
                               / row["reference"]["rounds_per_s"], 2)
        rows.append(row)
        print(f"  {label:<26} {row['optimized']['rounds_per_s']:>10,.0f} "
              f"rounds/s  ({row['speedup']}x vs reference)", flush=True)
    return rows


def run(smoke: bool, budget_s: float | None) -> dict:
    if smoke:
        ring_sizes = [100, 1000]
        agent_counts = [1, 8, 16]
        budget = budget_s or 0.05
        baseline_max_n = 100
    else:
        ring_sizes = [100, 1000, 10_000, 100_000]
        agent_counts = [1, 8, 64]
        budget = budget_s or 0.2
        baseline_max_n = 1000

    sweeps = []
    for transport in ("ns", "pt", "et"):
        for n in ring_sizes:
            for k in agent_counts:
                cell = sweep_cell(n, k, transport)
                row = {
                    "workload": "sweep", "transport": transport,
                    "ring_size": n, "agents": k, "adversary": "random",
                    "optimized": measure(cell, optimized=True, budget_s=budget),
                }
                if n <= baseline_max_n:
                    row["reference"] = measure(
                        cell, optimized=False, budget_s=budget)
                    row["speedup"] = round(
                        row["optimized"]["rounds_per_s"]
                        / row["reference"]["rounds_per_s"], 2)
                sweeps.append(row)
                print(f"  {transport} n={n:>6} k={k:<3} "
                      f"{row['optimized']['rounds_per_s']:>10,.0f} rounds/s"
                      + (f"  ({row['speedup']}x vs reference)"
                         if "speedup" in row else ""),
                      flush=True)

    for label, cell in worst_case_cells():
        row = {
            "workload": "worst-case", "label": label,
            "transport": cell.transport, "ring_size": cell.ring_size,
            "agents": cell.agents, "adversary": cell.adversary,
            "optimized": measure(cell, optimized=True, budget_s=budget * 2),
            "reference": measure(cell, optimized=False, budget_s=budget * 2),
        }
        row["speedup"] = round(row["optimized"]["rounds_per_s"]
                               / row["reference"]["rounds_per_s"], 2)
        sweeps.append(row)
        print(f"  {label:<28} {row['optimized']['rounds_per_s']:>10,.0f} "
              f"rounds/s  ({row['speedup']}x vs reference)", flush=True)

    # The headline ratio gates CI (--min-speedup), so give it a full
    # second per path even in smoke mode: sub-0.2s windows on shared
    # runners are noisy enough to flake a hard threshold.
    headline_budget = max(budget * 4, 1.0)
    headline_cell = CellConfig(max_rounds=10**8, **HEADLINE)
    optimized = measure(headline_cell, optimized=True, budget_s=headline_budget)
    reference = measure(headline_cell, optimized=False, budget_s=headline_budget)
    headline = {
        "config": dict(HEADLINE),
        "optimized": optimized,
        "reference": reference,
        "speedup": round(optimized["rounds_per_s"] / reference["rounds_per_s"], 2),
    }
    print(f"headline (n=1000, k=32, ns-starvation): "
          f"{optimized['rounds_per_s']:,.0f} vs {reference['rounds_per_s']:,.0f} "
          f"rounds/s -> {headline['speedup']}x", flush=True)

    results = {
        "benchmark": "engine-hotpath",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "mode": "smoke" if smoke else "full",
        "headline": headline,
        "sweeps": sweeps,
        "rule_dispatch": rule_dispatch_entry(max(budget * 4, 1.0)),
        "obs_overhead": obs_overhead_entry(max(budget * 2, 0.5)),
    }
    if not smoke:
        # Full runs also refresh the graph-topology section; smoke (CI)
        # skips it to protect the <60s budget — `make bench-graph` merges
        # it on demand.
        results["graph"] = run_graph(smoke, budget_s)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small grid, tiny budgets (< 60 s)")
    parser.add_argument("--graph", action="store_true",
                        help="measure only the graph-topology workloads and "
                             "merge them into the existing --out JSON "
                             "(make bench-graph)")
    parser.add_argument("--budget", type=float, default=None,
                        help="seconds of measurement per configuration")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_engine.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the headline speedup is below "
                             "this factor (CI guard)")
    parser.add_argument("--max-obs-overhead", type=float, default=None,
                        metavar="PCT",
                        help="exit non-zero if disabled instrumentation "
                             "costs more than PCT%% on the headline "
                             "(CI guard; e.g. 2.0)")
    args = parser.parse_args(argv)

    out = Path(args.out)
    if args.graph:
        rows = run_graph(args.smoke, args.budget)
        results = json.loads(out.read_text()) if out.exists() else {
            "benchmark": "engine-hotpath",
            "python": platform.python_version(),
        }
        results["graph"] = rows
        results["created"] = datetime.now(timezone.utc).isoformat(
            timespec="seconds")
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out} (graph section merged)")
        return 0

    results = run(args.smoke, args.budget)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    if args.min_speedup is not None and \
            results["headline"]["speedup"] < args.min_speedup:
        print(f"FAIL: headline speedup {results['headline']['speedup']}x "
              f"< required {args.min_speedup}x", file=sys.stderr)
        return 1
    if args.max_obs_overhead is not None:
        pct = results["obs_overhead"]["disabled_overhead_pct"]
        if pct > args.max_obs_overhead:
            print(f"FAIL: disabled instrumentation overhead {pct}% "
                  f"> allowed {args.max_obs_overhead}%", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
