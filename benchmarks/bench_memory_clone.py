"""Peek hot path: ``AgentMemory.clone()`` vs ``copy.deepcopy``.

The omniscient adversaries (NS starvation, zig-zag forcing, Theorem 19)
call ``Engine.peek_intended_action`` for every agent every round; before
this optimisation each peek deep-copied the agent's memory.  This bench
measures both copies on agents that have accumulated real state on a
10^4-node ring and asserts the explicit clone is decisively faster —
and, first, that it is *behaviourally identical* (same intended action,
no side effects on the real memory).
"""

import copy
import time

from conftest import record, report

from repro.adversary import RandomMissingEdge
from repro.algorithms.fsync import LandmarkNoChirality
from repro.api import build_engine

RING_SIZE = 10_000
WARMUP_ROUNDS = 60
PEEKS = 3_000


def _warm_engine():
    """A ring engine whose agents carry non-trivial memory (IDs machinery:
    schedules, dance counters — the richest ``vars`` in the library)."""
    engine = build_engine(
        LandmarkNoChirality(),
        ring_size=RING_SIZE,
        positions=[1, 1 + RING_SIZE // 2],
        landmark=0,
        chirality=False,
        flipped=(1,),
        adversary=RandomMissingEdge(seed=0),
    )
    for _ in range(WARMUP_ROUNDS):
        engine.step()
    return engine


def test_clone_matches_deepcopy_semantics():
    engine = _warm_engine()
    for index in (0, 1):
        agent = engine.agents[index]
        snapshot = engine.snapshot_for(agent)
        before = copy.deepcopy(agent.memory)  # AgentMemory is slotted: no __dict__
        via_clone = engine.algorithm.compute(snapshot, agent.memory.clone())
        via_deepcopy = engine.algorithm.compute(
            snapshot, copy.deepcopy(agent.memory))
        assert via_clone == via_deepcopy
        # the speculative Compute must not leak into the real memory
        assert agent.memory == before


def test_clone_peek_faster_than_deepcopy(benchmark):
    engine = _warm_engine()
    agent = engine.agents[0]
    snapshot = engine.snapshot_for(agent)

    def deepcopy_peeks():
        for _ in range(PEEKS):
            engine.algorithm.compute(snapshot, copy.deepcopy(agent.memory))

    def clone_peeks():
        for _ in range(PEEKS):
            engine.algorithm.compute(snapshot, agent.memory.clone())

    start = time.perf_counter()
    deepcopy_peeks()
    deepcopy_s = time.perf_counter() - start
    start = time.perf_counter()
    clone_peeks()
    clone_s = time.perf_counter() - start
    speedup = deepcopy_s / clone_s

    benchmark(clone_peeks)
    report(
        f"peek memory copy on a {RING_SIZE}-node ring ({PEEKS} peeks)",
        [("copy.deepcopy", f"{deepcopy_s * 1e6 / PEEKS:.1f} us/peek", "1.0x"),
         ("AgentMemory.clone", f"{clone_s * 1e6 / PEEKS:.1f} us/peek",
          f"{speedup:.1f}x")],
        ("strategy", "cost", "speedup"),
    )
    record(benchmark, ring_size=RING_SIZE,
           deepcopy_us_per_peek=deepcopy_s * 1e6 / PEEKS,
           clone_us_per_peek=clone_s * 1e6 / PEEKS,
           speedup=speedup)
    # Generous margin: the point is the order of magnitude, not the decimals.
    assert speedup > 1.5, f"clone should beat deepcopy (got {speedup:.2f}x)"
