"""Table 4 (SSYNC possibility results), regenerated.

Experiments T4.1-T4.6:

* Theorem 12 — PT, 2 agents, chirality, bound N: O(N²) moves;
* Theorem 14 — PT, 2 agents, chirality, landmark: O(n²) moves;
* Theorem 16 — PT, 3 agents, no chirality, bound N: O(N²) moves;
* Theorem 17 — PT, 3 agents, no chirality, landmark: O(n²) moves;
* Theorem 18 — ET, 2 agents, chirality: unconscious exploration;
* Theorem 20 — ET, 3 agents, exact n: partial termination.

Average-case move counts under random adversaries stay far below the
quadratic envelopes (they are worst-case bounds; the *worst case* shape is
regenerated separately in bench_lower_bounds.py via zig-zag forcing).
Here we check the guarantees: exploration, the promised termination mode,
and that moves never exceed the envelope.
"""

import statistics

from conftest import record, report

from repro.adversary import RandomMissingEdge
from repro.algorithms.ssync import (
    ETExactSizeNoChirality,
    ETUnconscious,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkNoChirality,
    PTLandmarkWithChirality,
)
from repro.api import build_engine
from repro.core import TerminationMode, TransportModel
from repro.schedulers import ETFairScheduler, RandomFairScheduler

SEEDS = range(6)
HORIZON = 100_000


def run_ssync(algorithm, n, agents, *, landmark=None, chirality=True,
              flipped=(), transport=TransportModel.PT, seed=0,
              stop_on_exploration=False):
    scheduler = RandomFairScheduler(seed=seed + 1)
    if transport is TransportModel.ET:
        scheduler = ETFairScheduler(scheduler)
    engine = build_engine(
        algorithm,
        ring_size=n,
        positions=[1, 1 + n // 3, 1 + (2 * n) // 3][:agents],
        landmark=landmark,
        chirality=chirality,
        flipped=flipped,
        adversary=RandomMissingEdge(seed=seed),
        scheduler=scheduler,
        transport=transport,
    )
    return engine.run(HORIZON, stop_on_exploration=stop_on_exploration)


def check_partial_guarantee(result) -> None:
    assert result.explored
    assert result.any_terminated
    assert all(a.terminated or a.waiting_on_port for a in result.agents)


def summarize(results):
    return statistics.fmean(r.total_moves for r in results), max(
        r.total_moves for r in results
    )


def test_t4_1_theorem12_pt_bound_chirality(benchmark):
    sizes = (8, 16, 32)

    def workload():
        data = {}
        for n in sizes:
            runs = [
                run_ssync(PTBoundWithChirality(bound=n), n, 2, seed=seed)
                for seed in SEEDS
            ]
            for r in runs:
                check_partial_guarantee(r)
            data[n] = summarize(runs)
        return data

    data = benchmark(workload)
    rows = [(n, f"O(N^2) <= {4 * n * n}", f"{data[n][0]:.0f}", data[n][1]) for n in sizes]
    report("Table 4 row 1 (Theorem 12): PT 2 agents + bound, moves",
           rows, ("n=N", "paper envelope", "mean moves", "max moves"))
    for n in sizes:
        assert data[n][1] <= 4 * n * n
    record(benchmark, claim="partial termination, O(N^2) moves", moves=data)


def test_t4_2_theorem14_pt_landmark_chirality(benchmark):
    sizes = (8, 16, 32)

    def workload():
        data = {}
        for n in sizes:
            runs = [
                run_ssync(PTLandmarkWithChirality(), n, 2, landmark=0, seed=seed)
                for seed in SEEDS
            ]
            for r in runs:
                check_partial_guarantee(r)
            data[n] = summarize(runs)
        return data

    data = benchmark(workload)
    rows = [(n, f"O(n^2) <= {4 * n * n}", f"{data[n][0]:.0f}", data[n][1]) for n in sizes]
    report("Table 4 row 2 (Theorem 14): PT 2 agents + landmark, moves",
           rows, ("n", "paper envelope", "mean moves", "max moves"))
    for n in sizes:
        assert data[n][1] <= 4 * n * n
    record(benchmark, claim="partial termination, O(n^2) moves", moves=data)


def test_t4_3_theorem16_pt_bound_no_chirality(benchmark):
    sizes = (9, 18, 33)

    def workload():
        data = {}
        for n in sizes:
            runs = [
                run_ssync(
                    PTBoundNoChirality(bound=n), n, 3,
                    chirality=False, flipped=(1,), seed=seed,
                )
                for seed in SEEDS
            ]
            for r in runs:
                check_partial_guarantee(r)
            data[n] = summarize(runs)
        return data

    data = benchmark(workload)
    rows = [(n, f"O(N^2) <= {6 * n * n}", f"{data[n][0]:.0f}", data[n][1]) for n in sizes]
    report("Table 4 row 3 (Theorem 16): PT 3 agents + bound, moves",
           rows, ("n=N", "paper envelope", "mean moves", "max moves"))
    for n in sizes:
        assert data[n][1] <= 6 * n * n
    record(benchmark, claim="partial termination, O(N^2) moves", moves=data)


def test_t4_4_theorem17_pt_landmark_no_chirality(benchmark):
    sizes = (9, 18, 33)

    def workload():
        data = {}
        for n in sizes:
            runs = [
                run_ssync(
                    PTLandmarkNoChirality(), n, 3, landmark=0,
                    chirality=False, flipped=(2,), seed=seed,
                )
                for seed in SEEDS
            ]
            for r in runs:
                check_partial_guarantee(r)
            data[n] = summarize(runs)
        return data

    data = benchmark(workload)
    rows = [(n, f"O(n^2) <= {6 * n * n}", f"{data[n][0]:.0f}", data[n][1]) for n in sizes]
    report("Table 4 row 4 (Theorem 17): PT 3 agents + landmark, moves",
           rows, ("n", "paper envelope", "mean moves", "max moves"))
    for n in sizes:
        assert data[n][1] <= 6 * n * n
    record(benchmark, claim="partial termination, O(n^2) moves", moves=data)


def test_t4_5_theorem18_et_unconscious(benchmark):
    sizes = (8, 16, 32)

    def workload():
        data = {}
        for n in sizes:
            rounds = []
            for seed in SEEDS:
                result = run_ssync(
                    ETUnconscious(), n, 2, transport=TransportModel.ET,
                    seed=seed, stop_on_exploration=True,
                )
                assert result.explored
                assert result.termination_mode() is TerminationMode.UNCONSCIOUS
                rounds.append(result.rounds)
            data[n] = statistics.fmean(rounds)
        return data

    data = benchmark(workload)
    report("Table 4 row 5 (Theorem 18): ET unconscious exploration",
           [(n, "explores, never stops", f"{data[n]:.0f} rounds") for n in sizes],
           ("n", "paper", "measured mean"))
    record(benchmark, claim="unconscious exploration in ET", rounds=data)


def test_t4_6_theorem20_et_exact_size(benchmark):
    sizes = (8, 16, 32)

    def workload():
        data = {}
        for n in sizes:
            runs = [
                run_ssync(
                    ETExactSizeNoChirality(ring_size=n), n, 3,
                    chirality=False, flipped=(1,),
                    transport=TransportModel.ET, seed=seed,
                )
                for seed in SEEDS
            ]
            for r in runs:
                check_partial_guarantee(r)
            data[n] = summarize(runs)
        return data

    data = benchmark(workload)
    report("Table 4 row 6 (Theorem 20): ET 3 agents + exact n",
           [(n, "partial termination", f"mean {data[n][0]:.0f} moves") for n in sizes],
           ("n", "paper", "measured"))
    record(benchmark, claim="partial termination with exact n in ET", moves=data)
