"""Table 4 (SSYNC possibility results), regenerated.

Experiments T4.1-T4.6, now thin drivers over the declarative
``table4-ssync`` campaign spec (:mod:`repro.campaigns.presets`): each
test executes one variant's cells through the campaign executor and
asserts the guarantee on the recorded metrics.

* Theorem 12 — PT, 2 agents, chirality, bound N: O(N²) moves;
* Theorem 14 — PT, 2 agents, chirality, landmark: O(n²) moves;
* Theorem 16 — PT, 3 agents, no chirality, bound N: O(N²) moves;
* Theorem 17 — PT, 3 agents, no chirality, landmark: O(n²) moves;
* Theorem 18 — ET, 2 agents, chirality: unconscious exploration;
* Theorem 20 — ET, 3 agents, exact n: partial termination.

Average-case move counts under random adversaries stay far below the
quadratic envelopes (they are worst-case bounds; the *worst case* shape is
regenerated separately in bench_lower_bounds.py via zig-zag forcing).
Here we check the guarantees: exploration, the promised termination mode,
and that moves never exceed the envelope.  The same cells can be
(re)computed in parallel with
``python -m repro campaign run --spec table4-ssync``.
"""

import statistics

from conftest import by_size, record, report, run_variant

from repro.campaigns.presets import table4_ssync

SPEC = table4_ssync()
CELLS = SPEC.cell_list()


def check_partial_guarantee(metrics) -> None:
    assert metrics["explored"]
    assert metrics["terminated_count"] >= 1
    assert metrics["all_terminated_or_waiting"]


def summarize(metrics):
    return (statistics.fmean(m["total_moves"] for m in metrics),
            max(m["total_moves"] for m in metrics))


def moves_table(label, envelope_factor):
    """Run one PT variant; per-size (mean, max) moves + envelope assertion."""
    records = run_variant(CELLS, label)
    data = {}
    for n, metrics in sorted(by_size(records).items()):
        for m in metrics:
            check_partial_guarantee(m)
        data[n] = summarize(metrics)
        assert data[n][1] <= envelope_factor * n * n
    return data


def test_t4_1_theorem12_pt_bound_chirality(benchmark):
    data = benchmark(moves_table, "t4.1-theorem12-pt-bound", 4)
    rows = [(n, f"O(N^2) <= {4 * n * n}", f"{data[n][0]:.0f}", data[n][1])
            for n in sorted(data)]
    report("Table 4 row 1 (Theorem 12): PT 2 agents + bound, moves",
           rows, ("n=N", "paper envelope", "mean moves", "max moves"))
    record(benchmark, claim="partial termination, O(N^2) moves", moves=data)


def test_t4_2_theorem14_pt_landmark_chirality(benchmark):
    data = benchmark(moves_table, "t4.2-theorem14-pt-landmark", 4)
    rows = [(n, f"O(n^2) <= {4 * n * n}", f"{data[n][0]:.0f}", data[n][1])
            for n in sorted(data)]
    report("Table 4 row 2 (Theorem 14): PT 2 agents + landmark, moves",
           rows, ("n", "paper envelope", "mean moves", "max moves"))
    record(benchmark, claim="partial termination, O(n^2) moves", moves=data)


def test_t4_3_theorem16_pt_bound_no_chirality(benchmark):
    data = benchmark(moves_table, "t4.3-theorem16-pt-bound-no-chirality", 6)
    rows = [(n, f"O(N^2) <= {6 * n * n}", f"{data[n][0]:.0f}", data[n][1])
            for n in sorted(data)]
    report("Table 4 row 3 (Theorem 16): PT 3 agents + bound, moves",
           rows, ("n=N", "paper envelope", "mean moves", "max moves"))
    record(benchmark, claim="partial termination, O(N^2) moves", moves=data)


def test_t4_4_theorem17_pt_landmark_no_chirality(benchmark):
    data = benchmark(moves_table, "t4.4-theorem17-pt-landmark-no-chirality", 6)
    rows = [(n, f"O(n^2) <= {6 * n * n}", f"{data[n][0]:.0f}", data[n][1])
            for n in sorted(data)]
    report("Table 4 row 4 (Theorem 17): PT 3 agents + landmark, moves",
           rows, ("n", "paper envelope", "mean moves", "max moves"))
    record(benchmark, claim="partial termination, O(n^2) moves", moves=data)


def test_t4_5_theorem18_et_unconscious(benchmark):
    def workload():
        records = run_variant(CELLS, "t4.5-theorem18-et-unconscious")
        data = {}
        for n, metrics in sorted(by_size(records).items()):
            for m in metrics:
                assert m["explored"]
                assert m["mode"] == "unconscious"
            data[n] = statistics.fmean(m["rounds"] for m in metrics)
        return data

    data = benchmark(workload)
    report("Table 4 row 5 (Theorem 18): ET unconscious exploration",
           [(n, "explores, never stops", f"{data[n]:.0f} rounds")
            for n in sorted(data)],
           ("n", "paper", "measured mean"))
    record(benchmark, claim="unconscious exploration in ET", rounds=data)


def test_t4_6_theorem20_et_exact_size(benchmark):
    def workload():
        records = run_variant(CELLS, "t4.6-theorem20-et-exact")
        data = {}
        for n, metrics in sorted(by_size(records).items()):
            for m in metrics:
                check_partial_guarantee(m)
            data[n] = summarize(metrics)
        return data

    data = benchmark(workload)
    report("Table 4 row 6 (Theorem 20): ET 3 agents + exact n",
           [(n, "partial termination", f"mean {data[n][0]:.0f} moves")
            for n in sorted(data)],
           ("n", "paper", "measured"))
    record(benchmark, claim="partial termination with exact n in ET", moves=data)
