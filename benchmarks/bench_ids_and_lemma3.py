"""Figures 9-11 and Lemma 3: the symmetry-breaking machinery.

Experiments F9/F10 (ID assignment examples, reproduced bit-exactly), F11
(the direction table for ID = 1), and L3 (the common-direction-window
guarantee measured over many ID pairs).
"""

import itertools

from conftest import record, report

from repro.algorithms.fsync.ids import (
    DirectionSchedule,
    common_direction_window,
    id_bit_length,
    interleave_id,
    lemma3_bound,
)
from repro.core.directions import RIGHT


def test_f9_f10_id_examples(benchmark):
    cases = {
        "Fig 9 agent a": ((2, 2, 0), 48),
        "Fig 9 agent b": ((3, 4, 0), 164),
        "Fig 10 agent a": ((2, 1, 2), 42),
        "Fig 10 agent b": ((6, 2, 0), 304),
    }

    def workload():
        return {label: interleave_id(*ks) for label, (ks, _) in cases.items()}

    measured = benchmark(workload)
    rows = [
        (label, expected, measured[label])
        for label, (_, expected) in cases.items()
    ]
    report("Figures 9/10: ID assignment examples", rows,
           ("example", "paper", "measured"))
    for label, (_, expected) in cases.items():
        assert measured[label] == expected
    record(benchmark, ids=measured)


def test_f11_direction_table(benchmark):
    """Rounds 1..15 of ID=1: 000 1010 11001100 (0=left, 1=right)."""

    def workload():
        schedule = DirectionSchedule(1)
        return "".join(
            "1" if schedule.direction(r) is RIGHT else "0" for r in range(1, 16)
        )

    bits = benchmark(workload)
    report("Figure 11: direction schedule of ID=1",
           [("rounds 1-15", "000101011001100", bits)],
           ("series", "paper", "measured"))
    assert bits == "000101011001100"
    record(benchmark, bits=bits)


def test_l3_common_direction_window(benchmark):
    """Every distinct ID pair shares a c*n window within Lemma 3's bound."""
    c, n = 1, 8
    ids = [0, 1, 2, 5, 7, 12, 42, 48, 100, 164, 304]

    def workload():
        worst = None
        checked = 0
        for id_a, id_b in itertools.combinations(ids, 2):
            horizon = lemma3_bound(
                max(id_bit_length(id_a), id_bit_length(id_b)), c, n
            )
            _, length = common_direction_window(
                DirectionSchedule(id_a), DirectionSchedule(id_b), horizon
            )
            checked += 1
            if worst is None or length < worst[2]:
                worst = (id_a, id_b, length)
        return checked, worst

    checked, worst = benchmark(workload)
    report("Lemma 3: common-direction windows",
           [("pairs checked", "-", checked),
            ("required window", f">= c*n = {c * n}", f"worst {worst[2]} "
             f"(IDs {worst[0]} vs {worst[1]})")],
           ("quantity", "paper", "measured"))
    assert worst[2] >= c * n
    record(benchmark, pairs=checked, worst_window=worst[2])
