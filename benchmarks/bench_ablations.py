"""Ablations: the semantic choices DESIGN.md pins down, shown to matter.

Each ablation flips exactly one documented implementation decision back to
the naive / literal-pseudocode reading and exhibits a concrete execution
where the ablated variant breaks while the production variant stays
correct:

* **A1 — entry-round guard deferral** (`eager_entry_rules`): evaluating a
  freshly entered state's rules against the snapshot that caused the
  transition makes one catch event fire twice (`Init: caught -> Forward`
  then `Forward: caught -> FComm`), desynchronising the Figure 4 comm
  dance and producing premature termination.
* **A2 — ``Btime >= N-1`` vs the figure's ``Btime = N-1``** in Figure 1:
  with a blocked streak straddling the ``2N-4`` threshold, the equality
  never fires, the agents push a missing edge forever, and the deadline
  terminates them on an unexplored ring.
* **A3 — catch-priority vs the figures' literal rule order** in Figure 8:
  an agent that is blocked and caught in the same round continues the ID
  phase while its peer starts the Bounce machinery; the comm dance later
  misfires.
"""

from conftest import record, report

from repro.adversary import FixedMissingEdge, RandomMissingEdge
from repro.algorithms.fsync import (
    KnownUpperBound,
    LandmarkWithChirality,
    StartFromLandmarkNoChirality,
)
from repro.api import run_exploration
from repro.core import TerminationMode
from repro.theory.bounds import fsync_known_bound_time


class EagerLandmarkWithChirality(LandmarkWithChirality):
    """A1 ablation: same-round guard evaluation after transitions."""

    name = "LandmarkWithChirality[eager-entry-rules]"
    eager_entry_rules = True


class LiteralBtimeKnownUpperBound(KnownUpperBound):
    """A2 ablation: the figure's literal ``Btime = N-1`` guard."""

    literal_btime_equality = True


class LiteralOrderStartFromLandmark(StartFromLandmarkNoChirality):
    """A3 ablation: the figures' rule order (Btime before catches)."""

    name = "StartFromLandmarkNoChirality[literal-rule-order]"
    literal_rule_order = True


def test_a1_entry_round_guard_deferral(benchmark):
    """One edge blocked early forces a first catch; the eager variant lets
    the same catch trip Forward's `caught -> FComm` immediately and F
    terminates on an unexplored ring."""
    n, horizon = 8, 4_000

    def workload():
        kwargs = dict(
            ring_size=n, positions=[1, 5], landmark=0,
            adversary=FixedMissingEdge(0), max_rounds=horizon,
        )
        good = run_exploration(LandmarkWithChirality(), **kwargs)
        bad = run_exploration(EagerLandmarkWithChirality(), **kwargs)
        return good, bad

    good, bad = benchmark(workload)
    report("Ablation A1: entry-round guard deferral (Figure 4)",
           [("production (deferred guards)", "explicit", good.termination_mode().value),
            ("ablated (eager guards)", "breaks", bad.termination_mode().value)],
           ("variant", "expected", "measured"))
    assert good.termination_mode() is TerminationMode.EXPLICIT
    assert bad.termination_mode() is TerminationMode.INCORRECT
    record(benchmark, production=good.termination_mode().value,
           ablated=bad.termination_mode().value)


def test_a2_btime_guard_comparison(benchmark):
    """Two agents facing each other across a perpetually missing edge must
    bounce once blocked N-1 rounds after warm-up; with `=` the long streak
    jumps past N-1 and they push forever."""
    n = 10

    def workload():
        # Mirrored agents converging on edge e_0 from both sides
        # (the Theorem 10 geometry, here under FSYNC).
        from repro.adversary import theorem10_configuration

        cfg = theorem10_configuration(n)
        kwargs = dict(
            ring_size=n, positions=cfg["positions"],
            orientations=cfg["orientations"], adversary=cfg["adversary"],
            max_rounds=fsync_known_bound_time(n) + 5,
        )
        good = run_exploration(KnownUpperBound(bound=n), **kwargs)
        bad = run_exploration(LiteralBtimeKnownUpperBound(bound=n), **kwargs)
        return good, bad

    good, bad = benchmark(workload)
    report("Ablation A2: Btime >= N-1 vs literal Btime = N-1 (Figure 1)",
           [("production (>=)", "explicit", good.termination_mode().value,
             f"{len(good.visited)}/{n} nodes"),
            ("ablated (=)", "breaks", bad.termination_mode().value,
             f"{len(bad.visited)}/{n} nodes")],
           ("variant", "expected", "measured", "visited"))
    assert good.termination_mode() is TerminationMode.EXPLICIT
    assert bad.termination_mode() is TerminationMode.INCORRECT
    assert not bad.explored
    record(benchmark, production=good.termination_mode().value,
           ablated=bad.termination_mode().value)


def test_a3_catch_priority_over_id_phase(benchmark):
    """The interleaving found by the property tests: blocked-and-caught in
    the same round.  Literal rule order desynchronises the roles."""
    n, seed, horizon = 6, 275, 60_000

    def workload():
        kwargs = dict(
            ring_size=n, positions=[0, 0], landmark=0,
            adversary=RandomMissingEdge(seed=seed), max_rounds=horizon,
        )
        good = run_exploration(StartFromLandmarkNoChirality(), **kwargs)
        bad = run_exploration(LiteralOrderStartFromLandmark(), **kwargs)
        return good, bad

    good, bad = benchmark(workload)
    report("Ablation A3: catch-priority vs figures' rule order (Figure 8)",
           [("production (text order)", "explicit", good.termination_mode().value),
            ("ablated (figure order)", "breaks", bad.termination_mode().value)],
           ("variant", "expected", "measured"))
    assert good.termination_mode() is TerminationMode.EXPLICIT
    assert bad.termination_mode() is TerminationMode.INCORRECT
    record(benchmark, production=good.termination_mode().value,
           ablated=bad.termination_mode().value)
