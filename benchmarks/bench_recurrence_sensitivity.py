"""Sensitivity to the dynamism class (related work, §1.1.2-1.1.3).

Experiment RS: the paper's model is the weakest recurrence assumption
(1-interval connectivity); the related work it cites ([13] Class 9, [37])
strengthens it to T-interval connectivity and delta-recurrent edges.
Sweeping ``T`` and ``delta`` shows how exploration cost decays as the
dynamism gets friendlier — the qualitative point the related-work
comparison makes: *knowledge and recurrence trade off against cost*.
"""

import statistics

from conftest import record, report

from repro.adversary import (
    DeltaRecurrentAdversary,
    FixedMissingEdge,
    RandomMissingEdge,
    TIntervalAdversary,
)
from repro.algorithms.fsync import UnconsciousExploration
from repro.api import build_engine

N = 16
SEEDS = range(8)


def exploration_rounds(adversary_factory):
    rounds = []
    for seed in SEEDS:
        engine = build_engine(
            UnconsciousExploration(),
            ring_size=N,
            positions=[0, N // 2],
            adversary=adversary_factory(seed),
        )
        result = engine.run(200 * N, stop_on_exploration=True)
        assert result.explored
        rounds.append(result.exploration_round)
    return statistics.fmean(rounds)


def test_rs_t_interval_sweep(benchmark):
    intervals = (1, 2, 4, 8, 16)

    def workload():
        return {
            t: exploration_rounds(
                lambda seed, t=t: TIntervalAdversary(
                    RandomMissingEdge(seed=seed), interval=t
                )
            )
            for t in intervals
        }

    means = benchmark(workload)
    rows = [(t, "paper's model" if t == 1 else "one hold delays <= O(T)",
             f"{means[t]:.1f}") for t in intervals]
    report("Recurrence sensitivity: T-interval connectivity (n=16)", rows,
           ("T", "meaning", "mean exploration rounds"))
    # Holding an edge for T rounds can delay a blocked agent by at most ~T
    # per encounter: the cost grows additively, not multiplicatively, in T.
    assert means[1] <= means[16] <= means[1] + 2 * 16
    record(benchmark, means=means)


def test_rs_delta_recurrence_sweep(benchmark):
    deltas = (1, 2, 4, 8, 32)

    def workload():
        # worst-case flavoured inner: always try to keep one edge missing
        return {
            d: exploration_rounds(
                lambda seed, d=d: DeltaRecurrentAdversary(
                    FixedMissingEdge(N // 2), delta=d
                )
            )
            for d in deltas
        }

    means = benchmark(workload)
    rows = [(d, "static ring" if d == 1 else "blocking capped at delta-1",
             f"{means[d]:.1f}") for d in deltas]
    report("Recurrence sensitivity: delta-recurrent edges (n=16)", rows,
           ("delta", "meaning", "mean exploration rounds"))
    assert means[1] <= means[32]  # friendlier recurrence explores no slower
    record(benchmark, means=means)
