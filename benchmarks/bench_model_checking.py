"""Exhaustive verification of Theorem 3 on small rings (model checking).

Experiment MC: the paper's conclusion asks for machine-checked analyses
"considering all possible dynamic graphs"; for small rings we enumerate
*every* effective 1-interval-connected adversary schedule against
``KnownNNoChirality`` (see :mod:`repro.analysis.model_check` for the
soundness argument bounding the per-round choices) and confirm:

* **safety/liveness, exhaustively** — every schedule is defeated by round
  ``3n - 6``;
* **tightness** — some schedule (the Figure 2 squeeze) achieves exactly
  ``3n - 6``.
"""

import itertools

from conftest import record, report

from repro.analysis.model_check import verify_theorem3, verify_theorem5


def test_mc_theorem3_exhaustive(benchmark):
    sizes = (4, 5, 6)

    def workload():
        out = {}
        for n in sizes:
            worst, branches, ok = -1, 0, True
            for a, b in itertools.combinations(range(n), 2):
                result = verify_theorem3(n, positions=(a, b))
                worst = max(worst, result.worst_value)
                branches += result.branches_explored
                ok &= result.all_succeeded
            out[n] = (worst, branches, ok)
        return out

    data = benchmark(workload)
    rows = []
    for n in sizes:
        worst, branches, ok = data[n]
        rows.append((n, f"= {3 * n - 6}", worst, branches,
                     "all defeated" if ok else "FAILED"))
        assert ok
        assert worst == 3 * n - 6
    report("Model checking: Theorem 3 over every adversary schedule", rows,
           ("n", "paper worst case", "verified worst case",
            "adversary branches", "exhaustive verdict"))
    record(benchmark, worst={n: data[n][0] for n in sizes},
           branches={n: data[n][1] for n in sizes})


def test_mc_theorem5_exhaustive(benchmark):
    """Theorem 5's O(n), machine-checked: every adversary schedule against
    Unconscious Exploration completes within ~3n rounds on small rings."""
    sizes = (4, 5, 6)

    def workload():
        out = {}
        for n in sizes:
            worst, ok = -1, True
            for a, b in itertools.combinations(range(n), 2):
                result = verify_theorem5(n, positions=(a, b))
                worst = max(worst, result.worst_value)
                ok &= result.all_succeeded
            out[n] = (worst, ok)
        return out

    data = benchmark(workload)
    rows = []
    for n in sizes:
        worst, ok = data[n]
        rows.append((n, "O(n)", worst, f"{worst / n:.2f}",
                     "all explored" if ok else "FAILED"))
        assert ok
        assert worst <= 3 * n  # the O(n) claim with its small-n constant
    report("Model checking: Theorem 5 over every adversary schedule", rows,
           ("n", "paper", "verified worst exploration", "worst/n",
            "exhaustive verdict"))
    record(benchmark, worst={n: data[n][0] for n in sizes})


def test_mc_worst_case_requires_adjacent_starts(benchmark):
    """The 3n-6 squeeze needs the Figure 2 geometry (adjacent starts)."""
    n = 7

    def workload():
        return {
            gap: verify_theorem3(n, positions=(0, gap)).worst_value
            for gap in (1, 2, 3)
        }

    worst = benchmark(workload)
    rows = [(f"(0, {gap})", 3 * n - 6 if gap == 1 else f"< {3 * n - 6}",
             worst[gap]) for gap in (1, 2, 3)]
    report("Model checking: worst case by start distance (n=7)", rows,
           ("starts", "expectation", "verified worst case"))
    assert worst[1] == 3 * n - 6
    assert worst[2] < 3 * n - 6
    assert worst[3] < 3 * n - 6
    record(benchmark, worst_by_gap=worst)
