"""Lower bounds (Obs. 3, Th. 4, Th. 13, Th. 15), extracted empirically.

Experiments LB1-LB4.  A lower bound is reproduced by exhibiting an
adversary that actually extracts the stated cost from the corresponding
(asymptotically optimal) algorithm:

* LB1 (Obs. 3, >= 2n-3 time): Figure 2's schedule costs 3n-6 >= 2n-3;
* LB2 (Th. 4, >= N-1 time for partial termination): KnownNNoChirality
  terminates at 3N-6 >= N-1 even on a static ring;
* LB3 (Th. 13, Omega(N*n) moves): zig-zag forcing vs PTBoundWithChirality
  — doubling n must roughly quadruple the moves;
* LB4 (Th. 15, Omega(n^2) moves): same forcing vs PTLandmarkWithChirality.
"""

from conftest import record, report

from repro.adversary import Figure2Schedule, NoRemoval, ZigZagForcingAdversary
from repro.algorithms.fsync import KnownUpperBound
from repro.algorithms.ssync import PTBoundWithChirality, PTLandmarkWithChirality
from repro.analysis.complexity import doubling_ratios, fit_model
from repro.api import build_engine, run_exploration
from repro.core import TransportModel
from repro.theory.bounds import (
    fsync_known_bound_time,
    fsync_lower_bound_two_agents,
    partial_termination_lower_bound,
    pt_bound_moves_lower,
    pt_landmark_moves_lower,
)


def test_lb1_observation3_time_floor(benchmark):
    sizes = (8, 16, 32)

    def workload():
        out = {}
        for n in sizes:
            cfg = Figure2Schedule(anchor=0).configuration(n)
            result = run_exploration(
                KnownUpperBound(bound=n), ring_size=n,
                max_rounds=fsync_known_bound_time(n) + 5, **cfg,
            )
            out[n] = result.exploration_round
        return out

    measured = benchmark(workload)
    rows = [(n, f">= {fsync_lower_bound_two_agents(n)}", measured[n]) for n in sizes]
    report("LB1 (Observation 3): exploration time floor", rows,
           ("n", "paper lower bound", "extracted"))
    for n in sizes:
        assert measured[n] >= fsync_lower_bound_two_agents(n)
    record(benchmark, extracted=measured)


def test_lb2_theorem4_termination_floor(benchmark):
    sizes = (8, 16, 32)

    def workload():
        out = {}
        for n in sizes:
            result = run_exploration(
                KnownUpperBound(bound=n), ring_size=n, positions=[0, 1],
                adversary=NoRemoval(), max_rounds=fsync_known_bound_time(n) + 5,
            )
            out[n] = result.last_termination_round
        return out

    measured = benchmark(workload)
    rows = [(n, f">= {partial_termination_lower_bound(n)}", measured[n]) for n in sizes]
    report("LB2 (Theorem 4): partial-termination time floor", rows,
           ("N", "paper lower bound", "measured termination"))
    for n in sizes:
        assert measured[n] >= partial_termination_lower_bound(n)
    record(benchmark, measured=measured)


def _forced_moves(algorithm_factory, n, landmark=None):
    adversary = ZigZagForcingAdversary(cap=max(1, n // 3))
    cfg = adversary.configuration(n)
    engine = build_engine(
        algorithm_factory(n),
        ring_size=n,
        positions=cfg["positions"],
        landmark=landmark,
        adversary=adversary,
        scheduler=adversary,
        transport=TransportModel.PT,
    )
    result = engine.run(400 * n * n, stop_when=lambda e: e.agents[1].terminated)
    assert result.explored
    return result.total_moves


def test_lb3_theorem13_quadratic_moves_bound_variant(benchmark):
    sizes = (8, 16, 32, 64)

    def workload():
        return {n: _forced_moves(lambda m: PTBoundWithChirality(bound=m), n)
                for n in sizes}

    moves = benchmark(workload)
    ratios = doubling_ratios(list(moves), list(moves.values()))
    fit = fit_model(list(moves), list(moves.values()), "quadratic")
    rows = [(n, f"Omega(N*n) ~ {pt_bound_moves_lower(n, n):.0f}", moves[n])
            for n in sizes]
    report("LB3 (Theorem 13): zig-zag forcing, bound variant", rows,
           ("n=N", "paper lower bound shape", "extracted moves"))
    print(f"doubling ratios (4.0 = quadratic): {[f'{r:.2f}' for r in ratios]}")
    print(f"quadratic fit: {fit}")
    assert all(r > 2.5 for r in ratios)  # clearly super-linear
    assert fit.r_squared > 0.99
    record(benchmark, extracted=moves, doubling_ratios=ratios,
           quadratic_r2=fit.r_squared)


def test_lb4_theorem15_quadratic_moves_landmark_variant(benchmark):
    sizes = (8, 16, 32, 64)

    def workload():
        return {n: _forced_moves(lambda m: PTLandmarkWithChirality(), n, landmark=0)
                for n in sizes}

    moves = benchmark(workload)
    ratios = doubling_ratios(list(moves), list(moves.values()))
    fit = fit_model(list(moves), list(moves.values()), "quadratic")
    rows = [(n, f"Omega(n^2) ~ {pt_landmark_moves_lower(n):.0f}", moves[n])
            for n in sizes]
    report("LB4 (Theorem 15): zig-zag forcing, landmark variant", rows,
           ("n", "paper lower bound shape", "extracted moves"))
    print(f"doubling ratios (4.0 = quadratic): {[f'{r:.2f}' for r in ratios]}")
    print(f"quadratic fit: {fit}")
    assert all(r > 2.5 for r in ratios)
    assert fit.r_squared > 0.99
    record(benchmark, extracted=moves, doubling_ratios=ratios,
           quadratic_r2=fit.r_squared)
