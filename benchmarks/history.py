"""Bench-history shim: ``python benchmarks/history.py record|check``.

The logic lives in :mod:`repro.obs.history` (also reachable as
``python -m repro bench record|check``); this shim exists because the
benchmarks directory is where people look for bench tooling.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.history import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
