"""Table 3 (SSYNC impossibility results), demonstrated.

Experiments T3.1-T3.4 — the paper's adversary constructions run against
this library's algorithms (demonstrations, not proofs; see DESIGN.md):

* Theorem 9 — NS starvation: zero moves, forever, for every algorithm;
* Theorem 10 — PT, two agents, no chirality: stranded on four nodes;
* Theorem 11 — PT explicit termination of both agents impossible: under a
  perpetual block exactly one agent ever terminates;
* Theorem 19 — ET with a bound instead of exact n: incorrect termination
  via the two-ring indistinguishability schedule.
"""

from conftest import record, report

from repro.adversary import (
    FixedMissingEdge,
    NSStarvationAdversary,
    Theorem19Adversary,
    theorem10_configuration,
)
from repro.algorithms.ssync import (
    ETExactSizeNoChirality,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkWithChirality,
)
from repro.api import build_engine, run_exploration
from repro.core import TerminationMode, TransportModel
from repro.schedulers import RandomFairScheduler

N = 10
HORIZON = 3_000


def test_t3_1_theorem9_ns_starvation(benchmark):
    algorithms = {
        "PTBoundWithChirality(2)": (lambda: PTBoundWithChirality(bound=N), 2, ()),
        "PTBoundNoChirality(3)": (lambda: PTBoundNoChirality(bound=N), 3, (1,)),
        "ETExactSize(3)": (lambda: ETExactSizeNoChirality(ring_size=N), 3, (2,)),
    }

    def workload():
        moves = {}
        for label, (factory, agents, flip) in algorithms.items():
            adversary = NSStarvationAdversary()
            engine = build_engine(
                factory(),
                ring_size=N,
                positions=[0, 4, 7][:agents],
                chirality=not flip,
                flipped=flip,
                adversary=adversary,
                scheduler=adversary,
                transport=TransportModel.NS,
            )
            result = engine.run(HORIZON)
            moves[label] = (result.total_moves, len(result.visited))
        return moves

    moves = benchmark(workload)
    rows = [(label, "0 moves ever", f"{m} moves, {v}/{N} nodes")
            for label, (m, v) in moves.items()]
    report("Table 3 row 1 (Theorem 9): NS starvation", rows,
           ("algorithm", "paper", f"measured over {HORIZON} rounds"))
    for m, _ in moves.values():
        assert m == 0
    record(benchmark, claim="exploration impossible in NS", moves=moves)


def test_t3_2_theorem10_pt_no_chirality(benchmark):
    def workload():
        cfg = theorem10_configuration(N)
        stranded = run_exploration(
            PTBoundWithChirality(bound=N), ring_size=N,
            transport=TransportModel.PT, max_rounds=HORIZON, **cfg,
        )
        # Control: identical adversary and starts, but shared orientation.
        control = run_exploration(
            PTBoundWithChirality(bound=N), ring_size=N,
            positions=cfg["positions"], adversary=cfg["adversary"],
            transport=TransportModel.PT, max_rounds=30_000,
        )
        return stranded, control

    stranded, control = benchmark(workload)
    report("Table 3 row 2 (Theorem 10): PT, 2 agents, no chirality",
           [("mirrored orientations", "stranded", f"{len(stranded.visited)}/{N} nodes"),
            ("chirality (control)", "explores", f"{len(control.visited)}/{N} nodes")],
           ("setting", "paper", "measured"))
    assert not stranded.explored and len(stranded.visited) == 4
    assert control.explored
    record(benchmark, stranded_nodes=len(stranded.visited),
           control_explored=control.explored)


def test_t3_3_theorem11_no_full_termination(benchmark):
    def workload():
        outcomes = []
        for seed in range(5):
            result = run_exploration(
                PTBoundWithChirality(bound=N), ring_size=N, positions=[3, 4],
                adversary=FixedMissingEdge(8),
                scheduler=RandomFairScheduler(seed=seed),
                transport=TransportModel.PT, max_rounds=10_000,
            )
            outcomes.append(result)
        return outcomes

    outcomes = benchmark(workload)
    modes = [r.termination_mode() for r in outcomes]
    report("Table 3 row 3 (Theorem 11): perpetual block, PT",
           [(i, "partial only", m.value) for i, m in enumerate(modes)],
           ("seed", "paper", "measured"))
    assert all(m is TerminationMode.PARTIAL for m in modes)
    for result in outcomes:
        waiter = next(a for a in result.agents if not a.terminated)
        assert waiter.waiting_on_port
    record(benchmark, claim="explicit termination of both impossible",
           modes=[m.value for m in modes])


def test_t3_4_theorem19_et_needs_exact_n(benchmark):
    n_small, n_big = 7, 11

    def workload():
        adversary = Theorem19Adversary(small_size=n_small)
        engine = build_engine(
            ETExactSizeNoChirality(ring_size=n_small), ring_size=n_big,
            positions=[0, 2, 4], chirality=False, flipped=(1,),
            adversary=adversary, scheduler=adversary,
            transport=TransportModel.ET,
        )
        big = engine.run(30_000)
        # Control: the true small ring with its single missing edge.
        from repro.schedulers import ETFairScheduler

        control_engine = build_engine(
            ETExactSizeNoChirality(ring_size=n_small), ring_size=n_small,
            positions=[0, 2, 4], chirality=False, flipped=(1,),
            adversary=FixedMissingEdge(n_small - 1),
            scheduler=ETFairScheduler(RandomFairScheduler(seed=2)),
            transport=TransportModel.ET,
        )
        control = control_engine.run(30_000)
        return big, control

    big, control = benchmark(workload)
    report("Table 3 row 4 (Theorem 19): exact n is necessary in ET",
           [(f"believes n={n_small}, ring is {n_big}", "incorrect termination",
             big.termination_mode().value),
            (f"true ring n={n_small} (control)", "correct partial",
             control.termination_mode().value)],
           ("setting", "paper", "measured"))
    assert big.termination_mode() is TerminationMode.INCORRECT
    assert control.termination_mode() in (
        TerminationMode.PARTIAL, TerminationMode.EXPLICIT
    )
    record(benchmark, big_ring=big.termination_mode().value,
           control=control.termination_mode().value)
