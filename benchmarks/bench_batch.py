"""Batched vs scalar campaign throughput; merges into ``BENCH_engine.json``.

Measures cells/second of :func:`repro.campaigns.executor.run_chunk` —
the exact code path a campaign chunk takes — with ``batch="auto"``
(one lockstep :class:`~repro.core.batch.BatchCore` run over the whole
chunk) against ``batch="off"`` (the per-cell scalar loop).  Both sides
include engine/array construction and record assembly, so the ratio is
campaign throughput, not a kernel microbenchmark.

The headline is the chunk shape the batch path was built for: 256
same-shape cells (one full vector width) at k=32 on a 64-ring under the
random adversary — a seed-axis sweep chunk.  The widened frontier adds
two more headlines: a PT transport chunk (agents riding removed edges)
and an SSYNC chunk under the random-fair activation replica.  All three
speedups gate CI via ``--min-speedup`` (``make bench-batch``).

Usage::

    python benchmarks/bench_batch.py            # full grid
    python benchmarks/bench_batch.py --smoke    # CI mode, < 60 s
    make bench-batch

Results merge into the ``batch`` section of ``BENCH_engine.json`` so the
repo's perf trajectory carries the vectorization win alongside the
hot-path history.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaigns.executor import run_chunk  # noqa: E402
from repro.campaigns.spec import CellConfig  # noqa: E402
from repro.core.batch import numpy_available  # noqa: E402

#: The acceptance chunk: one full vector width of same-shape cells over
#: the seed axis — the composition ``default_chunk_size`` builds when a
#: sweep's cells all qualify.
HEADLINE = dict(algorithm="known-bound", ring_size=64, agents=32,
                adversary="random", transport="ns", max_rounds=192)
HEADLINE_CELLS = 256

#: The widened frontier's own acceptance chunks, each guarded like the
#: NS headline: PT rides under FSYNC (transport semantics isolated from
#: scheduling) and an SSYNC chunk under the heaviest scheduler replica
#: (random-fair draws per live agent per round).
HEADLINE_PT_ET = dict(algorithm="pt-bound", ring_size=64, agents=16,
                      adversary="random", transport="pt",
                      scheduler="fsync", max_rounds=192)
HEADLINE_SSYNC = dict(algorithm="known-bound", ring_size=64, agents=16,
                      adversary="random", transport="ns",
                      scheduler="random-fair", max_rounds=192)


def chunk_cells(base: dict, count: int) -> list[CellConfig]:
    cell = CellConfig(**base)
    return [replace(cell, seed=seed) for seed in range(count)]


def measure_chunk(cells: list[CellConfig], mode: str, *, repeats: int) -> dict:
    """Cells/second of ``run_chunk`` under one routing mode (best of N)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        records, batched = run_chunk(cells, batch=mode)
        elapsed = time.perf_counter() - start
        assert len(records) == len(cells)
        assert all("error" not in r for r in records)
        if mode == "auto":
            assert batched == len(cells), "headline cells must all batch"
        if best is None or elapsed < best:
            best = elapsed
    return {"cells": len(cells), "elapsed_s": round(best, 4),
            "cells_per_s": round(len(cells) / best, 1)}


def grid(smoke: bool) -> list[tuple[str, dict, int]]:
    rows = [
        ("known-bound(n=32,k=8)x256",
         dict(algorithm="known-bound", ring_size=32, agents=8,
              adversary="random", transport="ns", max_rounds=96), 256),
        ("unconscious(n=48,k=4)x256",
         dict(algorithm="unconscious", ring_size=48, agents=4,
              adversary="random", transport="ns", max_rounds=128,
              stop_on_exploration=True), 256),
        ("known-bound(n=16,k=2)x64",
         dict(algorithm="known-bound", ring_size=16, agents=2,
              adversary="periodic", edge=5, transport="ns",
              max_rounds=64), 64),
        ("et-exact(n=32,k=8,et)x256",
         dict(algorithm="et-exact", ring_size=32, agents=8,
              adversary="random", transport="et", scheduler="fsync",
              max_rounds=96), 256),
        ("pt-landmark(n=32,k=8,pt)x256",
         dict(algorithm="pt-landmark", ring_size=32, agents=8,
              adversary="random", transport="pt", scheduler="fsync",
              max_rounds=96), 256),
        ("landmark-chirality(n=32,k=4)x128",
         dict(algorithm="landmark-chirality", ring_size=32, agents=4,
              adversary="random", transport="ns", max_rounds=96), 128),
        ("known-bound(n=32,k=8,rr)x256",
         dict(algorithm="known-bound", ring_size=32, agents=8,
              adversary="random", transport="ns",
              scheduler="round-robin", max_rounds=96), 256),
    ]
    if smoke:
        rows = rows[:1]
    return rows


def measure_headline(base: dict, count: int, *, repeats: int,
                     label: str) -> dict:
    cells = chunk_cells(base, count)
    batched = measure_chunk(cells, "auto", repeats=repeats)
    scalar = measure_chunk(cells, "off", repeats=repeats)
    headline = {
        "config": dict(base),
        "cells": count,
        "batched": batched,
        "scalar": scalar,
        "speedup": round(batched["cells_per_s"] / scalar["cells_per_s"], 2),
    }
    print(f"{label}: {batched['cells_per_s']:,.0f} vs "
          f"{scalar['cells_per_s']:,.0f} cells/s -> "
          f"{headline['speedup']}x", flush=True)
    return headline


def run(smoke: bool) -> dict:
    repeats = 1 if smoke else 3
    rows = []
    for label, base, count in grid(smoke):
        cells = chunk_cells(base, count)
        row = {
            "label": label,
            "batched": measure_chunk(cells, "auto", repeats=repeats),
            "scalar": measure_chunk(cells, "off", repeats=repeats),
        }
        row["speedup"] = round(row["batched"]["cells_per_s"]
                               / row["scalar"]["cells_per_s"], 2)
        rows.append(row)
        print(f"  {label:<28} {row['batched']['cells_per_s']:>9,.0f} vs "
              f"{row['scalar']['cells_per_s']:>8,.0f} cells/s  "
              f"({row['speedup']}x)", flush=True)

    headline = measure_headline(
        HEADLINE, HEADLINE_CELLS, repeats=repeats,
        label=f"headline ({HEADLINE_CELLS} cells, n=64, k=32, random)")
    headline_pt_et = measure_headline(
        HEADLINE_PT_ET, HEADLINE_CELLS, repeats=repeats,
        label=f"headline-pt/et ({HEADLINE_CELLS} cells, pt-bound, n=64, "
              "k=16)")
    headline_ssync = measure_headline(
        HEADLINE_SSYNC, HEADLINE_CELLS, repeats=repeats,
        label=f"headline-ssync ({HEADLINE_CELLS} cells, random-fair, n=64, "
              "k=16)")

    return {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "mode": "smoke" if smoke else "full",
        "headline": headline,
        "headline_pt_et": headline_pt_et,
        "headline_ssync": headline_ssync,
        "chunks": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: headline + one grid row, one repeat")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_engine.json"),
                        help="JSON file to merge the batch section into")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the headline chunk's batched "
                             "throughput is below this multiple of scalar "
                             "(CI guard)")
    args = parser.parse_args(argv)

    if not numpy_available():
        print("FAIL: NumPy unavailable; the batch path cannot be measured",
              file=sys.stderr)
        return 1

    section = run(args.smoke)
    out = Path(args.out)
    results = json.loads(out.read_text()) if out.exists() else {
        "benchmark": "engine-hotpath",
        "python": platform.python_version(),
    }
    results["batch"] = section
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out} (batch section merged)")
    if args.min_speedup is not None:
        failed = False
        for key in ("headline", "headline_pt_et", "headline_ssync"):
            if section[key]["speedup"] < args.min_speedup:
                print(f"FAIL: batch {key} speedup "
                      f"{section[key]['speedup']}x "
                      f"< required {args.min_speedup}x", file=sys.stderr)
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
