"""Figure 2: the schedule that stretches KnownNNoChirality to 3n - 6.

Experiment F2: the adversary pins agent ``a`` for ``n - 3`` rounds, then
pins ``b`` while ``a`` walks over, catches it at round ``2n - 5``, bounces
and closes the last node the long way round at round ``3n - 6`` — the
algorithm's exact worst case, which also shows Theorem 3's analysis tight
for ``N = n``.
"""

from conftest import record, report

from repro.adversary import Figure2Schedule
from repro.algorithms.fsync import KnownUpperBound
from repro.api import run_exploration
from repro.theory.bounds import fsync_known_bound_time, fsync_lower_bound_two_agents


def test_f2_schedule_costs_exactly_3n_minus_6(benchmark):
    sizes = (6, 8, 12, 16, 24, 32, 48)

    def workload():
        measured = {}
        for n in sizes:
            cfg = Figure2Schedule(anchor=0).configuration(n)
            result = run_exploration(
                KnownUpperBound(bound=n), ring_size=n,
                max_rounds=fsync_known_bound_time(n) + 5, **cfg,
            )
            measured[n] = (result.exploration_round, result.last_termination_round)
        return measured

    measured = benchmark(workload)
    rows = []
    for n in sizes:
        explored, terminated = measured[n]
        rows.append((n, 3 * n - 6, explored, terminated,
                     fsync_lower_bound_two_agents(n)))
        assert explored == 3 * n - 6
        assert terminated == 3 * n - 6
    report("Figure 2: worst-case schedule", rows,
           ("n", "paper 3n-6", "measured exploration", "measured termination",
            "Obs.3 lower bound 2n-3"))
    record(benchmark, claim="exploration takes exactly 3n-6 rounds",
           measured={n: measured[n][0] for n in sizes})


def test_f2_benign_runs_are_faster(benchmark):
    """Contrast: without the adversary the same algorithm is far quicker."""
    from repro.adversary import NoRemoval

    sizes = (8, 16, 32)

    def workload():
        out = {}
        for n in sizes:
            result = run_exploration(
                KnownUpperBound(bound=n), ring_size=n, positions=[0, n // 2],
                adversary=NoRemoval(), max_rounds=fsync_known_bound_time(n) + 5,
                stop_on_exploration=False,
            )
            out[n] = result.exploration_round
        return out

    explored = benchmark(workload)
    rows = [(n, 3 * n - 6, explored[n]) for n in sizes]
    report("Figure 2 contrast: static ring exploration time", rows,
           ("n", "worst case", "benign measured"))
    for n in sizes:
        assert explored[n] < 3 * n - 6
    record(benchmark, benign_exploration=explored)
