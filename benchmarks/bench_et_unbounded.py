"""Theorem 20's closing remark + empirical Figure 22.

Experiment ET-UB: "the number of moves performed by the agents before
termination is finite but possibly unbounded" — the ping-pong forcing
adversary holds the paper's two-walls-one-bouncer configuration for an
arbitrary number of rounds (the ET fairness condition is only violated
finitely), and termination follows promptly once it stands down.  The
catch events recorded along the way obey the successor rule underlying
the Catch Tree (Figure 22), measured on live executions rather than
symbolically.
"""

from conftest import record, report

from repro.adversary import ETPingPongAdversary
from repro.algorithms.ssync import ETExactSizeNoChirality
from repro.analysis.catch_log import log_catches, successor_violations
from repro.api import build_engine
from repro.core import TransportModel

N = 11


def _engine(release_round):
    adversary = ETPingPongAdversary(release_round=release_round)
    cfg = adversary.configuration(N)
    return build_engine(
        ETExactSizeNoChirality(ring_size=N),
        ring_size=N,
        positions=cfg["positions"],
        orientations=cfg["orientations"],
        adversary=adversary,
        scheduler=adversary,
        transport=TransportModel.ET,
    )


def test_et_unbounded_delay_then_prompt_termination(benchmark):
    releases = (100, 400, 1600)

    def workload():
        out = {}
        for release in releases:
            engine = _engine(release)
            result = engine.run(release + 300)
            out[release] = (result.total_moves, result.last_termination_round,
                            result.explored)
        return out

    data = benchmark(workload)
    rows = []
    for release in releases:
        moves, terminated, explored = data[release]
        rows.append((release, "unbounded, then prompt", moves, terminated))
        assert explored
        assert terminated is not None
        assert terminated <= release + 60  # prompt once released
        assert moves >= release // 2  # the forcing really extracted work
    report("Theorem 20 remark: ET cost is finite but unbounded", rows,
           ("forcing rounds", "paper", "moves", "terminated at"))
    # longer forcing => strictly more moves: no a-priori bound exists
    assert data[100][0] < data[400][0] < data[1600][0]
    record(benchmark, moves={r: data[r][0] for r in releases})


def test_f22_empirical_catch_stream(benchmark):
    def workload():
        engine = _engine(800)
        records = log_catches(engine, 1_000)
        return records, successor_violations(records)

    records, violations = benchmark(workload)
    report("Figure 22 (empirical): catch stream of a forced ET run",
           [("catch events observed", "-", len(records)),
            ("successor-rule violations", 0, len(violations)),
            ("direction alternation", "strict", "yes" if not violations else "no")],
           ("quantity", "paper", "measured"))
    assert len(records) >= 50
    assert violations == []
    record(benchmark, catches=len(records), violations=len(violations))
