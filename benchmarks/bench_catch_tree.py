"""Figure 22: the Catch Tree, verified exhaustively.

Experiment F22: Theorem 20's termination argument reduces never-ending
executions to infinite paths in the catch-event successor graph; Claims
4-5 delete six geometrically impossible edges and the remaining graph must
contain no cycles other than the bounded same-catcher loops (the dashed
2-cycles in Figure 22, excluded by ET fairness).
"""

from conftest import record, report

from repro.analysis.catch_tree import CatchTree, FORBIDDEN_SEQUENCES


def test_f22_catch_tree_has_only_bounded_loops(benchmark):
    def workload():
        tree = CatchTree()
        cycles = tree.simple_cycles()
        unbounded = tree.unbounded_cycles()
        return tree, cycles, unbounded

    tree, cycles, unbounded = benchmark(workload)
    report("Figure 22: catch-event graph structure",
           [("events", 12, len(tree.events)),
            ("successor edges after Claim 5", 24 - 6, len(tree.edges)),
            ("forbidden pairs (Claim 5)", 6, len(FORBIDDEN_SEQUENCES)),
            ("cycles", "only bounded 2-loops", len(cycles)),
            ("unbounded cycles", 0, len(unbounded))],
           ("quantity", "paper", "measured"))
    assert len(tree.events) == 12
    assert len(tree.edges) == 18
    assert unbounded == []
    assert all(tree.is_bounded_loop(c) for c in cycles)
    record(benchmark, cycles=len(cycles), unbounded=len(unbounded))


def test_f22_paths_from_roots_cannot_run_free(benchmark):
    """Every depth-6 successor path from Lab/Lac revisits an event."""

    def workload():
        tree = CatchTree()
        longest_fresh = 0
        total = 0
        for root in ("Lab", "Lac"):
            for path in tree.paths_from(root, 6):
                total += 1
                fresh = len(set(path))
                longest_fresh = max(longest_fresh, fresh)
                assert fresh < len(path)
        return total, longest_fresh

    total, longest_fresh = benchmark(workload)
    report("Figure 22: exhaustive path check",
           [("depth-6 paths from Lab/Lac", "-", total),
            ("longest repetition-free prefix", "< 7", longest_fresh)],
           ("quantity", "paper", "measured"))
    record(benchmark, paths=total, longest_fresh=longest_fresh)
