#!/usr/bin/env python3
"""The paper's feasibility map (Tables 1-4), printed and then *executed*.

For every POSSIBLE row the named algorithm is run in its stated setting
(model, agent count, knowledge) and the achieved termination mode is shown
next to the claim; for the IMPOSSIBLE rows the matching adversary
construction is demonstrated.

Usage::

    python examples/feasibility_atlas.py
"""

from repro import TransportModel, build_engine, run_exploration
from repro.adversary import (
    NSStarvationAdversary,
    RandomMissingEdge,
    theorem10_configuration,
)
from repro.algorithms import (
    ETExactSizeNoChirality,
    ETUnconscious,
    GuessAndTerminate,
    KnownUpperBound,
    LandmarkNoChirality,
    LandmarkWithChirality,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkNoChirality,
    PTLandmarkWithChirality,
    UnconsciousExploration,
)
from repro.schedulers import ETFairScheduler, FsyncScheduler, RandomFairScheduler
from repro.theory import (
    Knowledge,
    Model,
    ResultKind,
    TABLE_ROWS,
    Termination,
    no_chirality_timeout,
)

N = 8

FACTORIES = {
    "KnownUpperBound": lambda: KnownUpperBound(bound=N),
    "UnconsciousExploration": UnconsciousExploration,
    "LandmarkWithChirality": LandmarkWithChirality,
    "LandmarkNoChirality": LandmarkNoChirality,
    "PTBoundWithChirality": lambda: PTBoundWithChirality(bound=N),
    "PTLandmarkWithChirality": PTLandmarkWithChirality,
    "PTBoundNoChirality": lambda: PTBoundNoChirality(bound=N),
    "PTLandmarkNoChirality": PTLandmarkNoChirality,
    "ETUnconscious": ETUnconscious,
    "ETExactSizeNoChirality": lambda: ETExactSizeNoChirality(ring_size=N),
}


def run_possible_row(row):
    landmark = 0 if Knowledge.LANDMARK in row.assumptions else None
    chirality = Knowledge.CHIRALITY in row.assumptions
    agents = int(row.agents)
    if row.model is Model.FSYNC:
        scheduler, transport = FsyncScheduler(), TransportModel.NS
    elif row.model is Model.SSYNC_PT:
        scheduler, transport = RandomFairScheduler(seed=3), TransportModel.PT
    else:
        scheduler = ETFairScheduler(RandomFairScheduler(seed=3))
        transport = TransportModel.ET
    engine = build_engine(
        FACTORIES[row.algorithm](),
        ring_size=N,
        positions=[1, 4, 6][:agents],
        landmark=landmark,
        chirality=chirality,
        flipped=() if chirality else (1,),
        adversary=RandomMissingEdge(seed=5),
        scheduler=scheduler,
        transport=transport,
    )
    return engine.run(
        no_chirality_timeout(N) + 10,
        stop_on_exploration=row.termination is Termination.UNCONSCIOUS,
    )


def demonstrate_impossible_row(row):
    if row.theorem.startswith("Theorem 1") and row.table == 1:
        # Theorems 1/2: a terminating guess fails on a larger ring.
        result = run_exploration(
            GuessAndTerminate(budget=20), ring_size=24, positions=[0, 2],
            max_rounds=200,
        )
        return f"strawman terminated unexplored -> {result.termination_mode().value}"
    if row.model is Model.SSYNC_NS:
        adversary = NSStarvationAdversary()
        engine = build_engine(
            PTBoundNoChirality(bound=N), ring_size=N, positions=[1, 4, 6],
            chirality=False, flipped=(1,),
            adversary=adversary, scheduler=adversary, transport=TransportModel.NS,
        )
        result = engine.run(1000)
        return f"starvation adversary: {result.total_moves} moves in 1000 rounds"
    if row.theorem.startswith("Theorem 10"):
        cfg = theorem10_configuration(N)
        result = run_exploration(
            PTBoundWithChirality(bound=N), ring_size=N,
            transport=TransportModel.PT, max_rounds=1500, **cfg,
        )
        return f"two mirrored agents stranded on {len(result.visited)}/{N} nodes"
    if row.theorem.startswith("Theorem 11"):
        from repro.adversary import FixedMissingEdge

        result = run_exploration(
            PTBoundWithChirality(bound=N), ring_size=N, positions=[3, 4],
            adversary=FixedMissingEdge(6), scheduler=RandomFairScheduler(seed=1),
            transport=TransportModel.PT, max_rounds=5000,
        )
        return f"perpetual block -> {result.termination_mode().value} termination only"
    if row.theorem.startswith("Theorem 19"):
        from repro.adversary import Theorem19Adversary

        adversary = Theorem19Adversary(small_size=6)
        engine = build_engine(
            ETExactSizeNoChirality(ring_size=6), ring_size=9,
            positions=[0, 2, 4], chirality=False, flipped=(1,),
            adversary=adversary, scheduler=adversary, transport=TransportModel.ET,
        )
        result = engine.run(20_000)
        return f"bound-only belief on a bigger ring -> {result.termination_mode().value}"
    return "demonstrated elsewhere"


def main() -> None:
    print(f"Feasibility map of 'Live Exploration of Dynamic Rings', executed at n = {N}\n")
    current_table = None
    for row in TABLE_ROWS:
        if row.table != current_table:
            current_table = row.table
            print(f"--- Table {current_table} " + "-" * 50)
        print(f"  claim : {row.describe()}")
        if row.kind is ResultKind.POSSIBLE:
            result = run_possible_row(row)
            print(
                f"  run   : mode={result.termination_mode().value}, "
                f"rounds={result.rounds}, moves={result.total_moves}, "
                f"explored@{result.exploration_round}"
            )
        else:
            print(f"  demo  : {demonstrate_impossible_row(row)}")
        print()


if __name__ == "__main__":
    main()
