#!/usr/bin/env python3
"""A gallery of the paper's adversaries, each caught in the act.

Walks through the constructions behind the impossibility results and the
worst-case schedules, running each against a real algorithm and narrating
what the adversary achieves:

* Observation 1 — pin a single agent forever;
* Observation 2 — keep two agents from ever observing each other;
* Figure 2 — stretch ``KnownNNoChirality`` to exactly ``3n - 6`` rounds;
* Theorem 9 — starve every would-be mover in the NS model;
* Theorem 10 — strand two chirality-less PT agents on four nodes;
* Theorems 13/15 — extract quadratically many moves from the optimal
  PT algorithms via zig-zag forcing.

Usage::

    python examples/adversary_gallery.py
"""

from repro import TransportModel, build_engine, run_exploration
from repro.adversary import (
    BlockAgentAdversary,
    Figure2Schedule,
    MeetingPreventionAdversary,
    NSStarvationAdversary,
    ZigZagForcingAdversary,
    theorem10_configuration,
)
from repro.algorithms import (
    KnownUpperBound,
    PTBoundNoChirality,
    PTBoundWithChirality,
    UnconsciousExploration,
)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def observation_1() -> None:
    banner("Observation 1 / Corollary 1 - one agent can be pinned forever")
    result = run_exploration(
        UnconsciousExploration(), ring_size=8, positions=[3],
        adversary=BlockAgentAdversary(0), max_rounds=500,
    )
    print(f"After {result.rounds} rounds the single agent has moved "
          f"{result.total_moves} times and visited {len(result.visited)}/8 nodes.")
    print("The adversary always removes exactly the edge the agent is about to try.")


def observation_2() -> None:
    banner("Observation 2 - two agents can be kept apart forever")
    engine = build_engine(
        UnconsciousExploration(), ring_size=9, positions=[0, 4],
        adversary=MeetingPreventionAdversary(),
    )
    together = 0
    for _ in range(500):
        engine.step()
        if engine.agents[0].node == engine.agents[1].node:
            together += 1
    print(f"500 rounds: the agents shared a node {together} times "
          f"(ring explored anyway: {engine.exploration_complete}).")
    print("Meetings are surgically prevented; exploration is not (cf. Theorem 5).")


def figure_2() -> None:
    banner("Figure 2 - the worst-case schedule for KnownNNoChirality")
    for n in (6, 10, 16):
        cfg = Figure2Schedule(anchor=0).configuration(n)
        result = run_exploration(
            KnownUpperBound(bound=n), ring_size=n, max_rounds=3 * n, **cfg,
        )
        print(f"  n={n:>3}: exploration completed at round "
              f"{result.exploration_round} (paper: 3n-6 = {3 * n - 6})")


def theorem_9() -> None:
    banner("Theorem 9 - NS starvation: nobody ever moves")
    adversary = NSStarvationAdversary()
    engine = build_engine(
        PTBoundNoChirality(bound=8), ring_size=8, positions=[0, 3, 5],
        chirality=False, flipped=(1,),
        adversary=adversary, scheduler=adversary, transport=TransportModel.NS,
    )
    result = engine.run(1_000)
    print(f"1000 rounds, 3 agents, full knowledge: {result.total_moves} moves.")
    print("Each round the adversary activates the non-movers plus one mover,")
    print("whose edge it removes; the schedule is fair yet nothing ever happens.")


def theorem_10() -> None:
    banner("Theorem 10 - PT, two agents, no chirality: stranded")
    cfg = theorem10_configuration(10)
    result = run_exploration(
        PTBoundWithChirality(bound=10), ring_size=10,
        transport=TransportModel.PT, max_rounds=2_000, **cfg,
    )
    print(f"Two mirrored agents converge on the two ports of edge e_0 and wait")
    print(f"forever: {len(result.visited)}/10 nodes visited after {result.rounds} rounds.")


def zig_zag() -> None:
    banner("Theorems 13/15 - zig-zag forcing extracts quadratic cost")
    print(f"{'n':>5} {'moves':>8} {'moves/n^2':>10}")
    for n in (8, 16, 32, 64):
        adversary = ZigZagForcingAdversary(cap=max(1, n // 3))
        cfg = adversary.configuration(n)
        engine = build_engine(
            PTBoundWithChirality(bound=n), ring_size=n,
            positions=cfg["positions"],
            adversary=adversary, scheduler=adversary, transport=TransportModel.PT,
        )
        result = engine.run(300 * n * n, stop_when=lambda e: e.agents[1].terminated)
        print(f"{n:>5} {result.total_moves:>8} {result.total_moves / n / n:>10.3f}")
    print("The moves/n^2 column stabilising is the Omega(N*n) lower bound showing up.")


def main() -> None:
    observation_1()
    observation_2()
    figure_2()
    theorem_9()
    theorem_10()
    zig_zag()
    print()


if __name__ == "__main__":
    main()
