#!/usr/bin/env python3
"""The paper's open problem, measured: dynamic tori and hypercubes.

Section 5: "a challenging [open problem] is the study of live exploration
in a network of arbitrary topology ... meshes, tori, hypercubes".  This
example runs the two baseline explorers of :mod:`repro.extensions` on the
suggested topologies, static vs 1-interval-connected dynamic, and prints
the exploration times any future algorithm will have to beat.

Usage::

    python examples/open_problem_topologies.py
"""

import statistics

from repro.extensions import (
    ConnectivityPreservingAdversary,
    DynamicGraphEngine,
    RandomWalkExplorer,
    RotorRouterExplorer,
    StaticGraphAdversary,
    hypercube,
    ring_graph,
    torus,
)
from repro.extensions.explorers import attach_node_oracle

TOPOLOGIES = {
    "ring of 16": ring_graph(16),
    "4x4 torus": torus(4, 4),
    "4-hypercube": hypercube(4),
    "5x5 torus": torus(5, 5),
}


def measure(graph, *, explorer, dynamic, seeds=range(5), agents=1):
    rounds = []
    for seed in seeds:
        adversary = (
            ConnectivityPreservingAdversary(budget=1, seed=seed)
            if dynamic else StaticGraphAdversary()
        )
        if explorer == "walk":
            engine = DynamicGraphEngine(
                graph, RandomWalkExplorer(seed=seed),
                list(range(agents)), adversary=adversary,
            )
        else:
            engine = DynamicGraphEngine(
                graph, RotorRouterExplorer(),
                list(range(agents)), adversary=adversary,
            )
            attach_node_oracle(engine)
        result = engine.run(300_000)
        assert result.explored
        rounds.append(result.exploration_round)
    return statistics.fmean(rounds)


def main() -> None:
    print("Open problem (paper section 5): live exploration beyond rings")
    print("Baselines: seeded random walk; rotor-router (node-identity oracle).\n")
    header = f"{'topology':<14}{'dynamism':<10}{'random walk':>14}{'rotor-router':>14}"
    print(header)
    print("-" * len(header))
    for label, graph in TOPOLOGIES.items():
        for dynamic in (False, True):
            walk = measure(graph, explorer="walk", dynamic=dynamic)
            rotor = measure(graph, explorer="rotor", dynamic=dynamic)
            kind = "dynamic" if dynamic else "static"
            print(f"{label:<14}{kind:<10}{walk:>14.0f}{rotor:>14.0f}")
    print()
    print("Teams help: 4 random walkers on the dynamic 5x5 torus explore in")
    team = measure(torus(5, 5), explorer="walk", dynamic=True, agents=4)
    solo = measure(torus(5, 5), explorer="walk", dynamic=True, agents=1)
    print(f"{team:.0f} rounds on average, vs {solo:.0f} for a single walker.")


if __name__ == "__main__":
    main()
