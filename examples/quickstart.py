#!/usr/bin/env python3
"""Quickstart: explore a dynamic ring and watch it happen.

Runs the simplest setting from the paper — two anonymous agents with a
known upper bound on the ring size (Figure 1 / Theorem 3) — against an
adversary that keeps deleting edges, prints the event timeline, and checks
the Theorem 3 guarantee: explicit termination at round ``3N - 6``.

Usage::

    python examples/quickstart.py [ring_size]
"""

import sys

from repro import Trace, run_exploration
from repro.adversary import RandomMissingEdge
from repro.algorithms.fsync import KnownUpperBound
from repro.theory.bounds import fsync_known_bound_time


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    deadline = fsync_known_bound_time(n)

    print(f"Exploring a dynamic ring of {n} nodes with 2 agents")
    print(f"(known upper bound N = {n}; Theorem 3 promises termination at round {deadline})\n")

    trace = Trace()
    result = run_exploration(
        KnownUpperBound(bound=n),
        ring_size=n,
        positions=[0, n // 2],
        adversary=RandomMissingEdge(seed=42),
        max_rounds=deadline + 5,
        trace=trace,
    )

    print("Event timeline (last 30 events):")
    print(trace.render(last=30))
    print()
    print("Outcome:", result.summary())
    print()
    assert result.explored, "the ring must be explored"
    assert result.all_terminated, "both agents must explicitly terminate"
    assert result.last_termination_round == deadline
    print(f"Theorem 3 verified: both agents terminated at round {deadline} = 3N - 6,")
    print(f"exploration completed at round {result.exploration_round}.")


if __name__ == "__main__":
    main()
