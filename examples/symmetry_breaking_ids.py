#!/usr/bin/env python3
"""Symmetry breaking without chirality (Section 3.2.3, Figures 9-11).

Recomputes the paper's two worked ID examples, prints the direction
schedule of Figure 11, empirically confirms Lemma 3's common-direction
window for a batch of ID pairs, and finally runs the full
``LandmarkNoChirality`` algorithm to show the machinery end to end.

Usage::

    python examples/symmetry_breaking_ids.py
"""

from repro import run_exploration
from repro.adversary import RandomMissingEdge
from repro.algorithms.fsync import LandmarkNoChirality
from repro.algorithms.fsync.ids import (
    DirectionSchedule,
    common_direction_window,
    id_bit_length,
    interleave_id,
    lemma3_bound,
)
from repro.core.directions import RIGHT


def show_figure_9_and_10() -> None:
    print("Figure 9  : k=(2,2,0) -> ID", interleave_id(2, 2, 0), "(paper: 48)")
    print("            k=(3,4,0) -> ID", interleave_id(3, 4, 0), "(paper: 164)")
    print("Figure 10 : k=(2,1,2) -> ID", interleave_id(2, 1, 2), "(paper: 42)")
    print("            k=(6,2,0) -> ID", interleave_id(6, 2, 0), "(paper: 304)")
    print()


def show_figure_11() -> None:
    schedule = DirectionSchedule(1)
    print(f"Figure 11 : ID=1, S(ID)={schedule.pattern}, jbar={schedule.jbar}")
    bits = "".join(
        "1" if schedule.direction(r) is RIGHT else "0" for r in range(1, 16)
    )
    print(f"            rounds 1..15 -> {bits}  (paper: 000 1010 11001100)")
    print()


def show_lemma_3() -> None:
    print("Lemma 3   : distinct IDs share a direction for c*n rounds in bound")
    c, n = 1, 8
    pairs = [(48, 164), (42, 304), (0, 1), (5, 6), (100, 200)]
    for id_a, id_b in pairs:
        horizon = lemma3_bound(max(id_bit_length(id_a), id_bit_length(id_b)), c, n)
        start, length = common_direction_window(
            DirectionSchedule(id_a), DirectionSchedule(id_b), horizon
        )
        print(f"  IDs {id_a:>4} vs {id_b:>4}: window of {length:>5} rounds "
              f"starting at round {start:>5} (need >= {c * n}, bound {horizon})")
    print()


def run_the_algorithm() -> None:
    n = 8
    print(f"End to end: LandmarkNoChirality on a dynamic {n}-ring,")
    print("mirrored orientations, random adversary.")
    result = run_exploration(
        LandmarkNoChirality(),
        ring_size=n,
        positions=[1, 5],
        landmark=0,
        chirality=False,
        flipped=(1,),
        adversary=RandomMissingEdge(seed=11),
        max_rounds=200_000,
    )
    print("  ->", result.summary())


def main() -> None:
    show_figure_9_and_10()
    show_figure_11()
    show_lemma_3()
    run_the_algorithm()


if __name__ == "__main__":
    main()
