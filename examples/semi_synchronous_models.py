#!/usr/bin/env python3
"""The three SSYNC transport models side by side (Section 4).

Runs the same three-agent exploration task under NS, PT and ET semantics
and shows why the model hierarchy in the paper looks the way it does:

* **NS** — the starvation adversary freezes any algorithm (Theorem 9);
* **PT** — passive transport defeats that adversary: sleeping on a port
  is itself a way to move (Theorems 12/16);
* **ET** — no free rides, but the fairness condition guarantees a blocked
  agent eventually crosses (Theorems 18/20), provided the exact ring size
  is known (Theorem 19 shows a bound is not enough).

Usage::

    python examples/semi_synchronous_models.py
"""

from repro import TransportModel, build_engine
from repro.adversary import NSStarvationAdversary, RandomMissingEdge, Theorem19Adversary
from repro.algorithms.ssync import ETExactSizeNoChirality, PTBoundNoChirality
from repro.schedulers import ETFairScheduler, RandomFairScheduler

N = 9
POSITIONS = [0, 3, 6]


def banner(title: str) -> None:
    print()
    print("-" * 68)
    print(title)
    print("-" * 68)


def ns_model() -> None:
    banner("NS: No Simultaneity - exploration is impossible (Theorem 9)")
    adversary = NSStarvationAdversary()
    engine = build_engine(
        PTBoundNoChirality(bound=N), ring_size=N, positions=POSITIONS,
        chirality=False, flipped=(1,),
        adversary=adversary, scheduler=adversary, transport=TransportModel.NS,
    )
    result = engine.run(2_000)
    print(f"starvation adversary, 2000 rounds: moves={result.total_moves}, "
          f"visited={len(result.visited)}/{N}")


def pt_model() -> None:
    banner("PT: Passive Transport - three agents, no chirality (Theorem 16)")
    engine = build_engine(
        PTBoundNoChirality(bound=N), ring_size=N, positions=POSITIONS,
        chirality=False, flipped=(1,),
        adversary=RandomMissingEdge(seed=2),
        scheduler=RandomFairScheduler(seed=3),
        transport=TransportModel.PT,
    )
    result = engine.run(50_000)
    print(result.summary())
    waiting = [a.index for a in result.agents if not a.terminated and a.waiting_on_port]
    print(f"terminated: {result.terminated_count}/3; perpetual waiters: {waiting}")


def et_model() -> None:
    banner("ET: Eventual Transport - exact n suffices (Theorem 20)")
    engine = build_engine(
        ETExactSizeNoChirality(ring_size=N), ring_size=N, positions=POSITIONS,
        chirality=False, flipped=(1,),
        adversary=RandomMissingEdge(seed=4),
        scheduler=ETFairScheduler(RandomFairScheduler(seed=5)),
        transport=TransportModel.ET,
    )
    result = engine.run(80_000)
    print(result.summary())

    banner("ET with only a bound - incorrect termination (Theorem 19)")
    adversary = Theorem19Adversary(small_size=N - 3)
    engine = build_engine(
        ETExactSizeNoChirality(ring_size=N - 3),  # believes the ring is smaller
        ring_size=N, positions=[0, 2, 4],
        chirality=False, flipped=(1,),
        adversary=adversary, scheduler=adversary, transport=TransportModel.ET,
    )
    result = engine.run(20_000)
    print(result.summary())
    print("The agents cannot distinguish the big ring from the small one the")
    print("adversary simulates; a termination decision is necessarily wrong.")


def main() -> None:
    ns_model()
    pt_model()
    et_model()
    print()


if __name__ == "__main__":
    main()
