"""Two-agent PT algorithms with chirality (paper, Figures 14 and 17).

``PTBoundWithChirality`` (Theorem 12): two agents, Passive Transport,
common chirality, known upper bound ``N`` — exploration in O(N²) edge
traversals, with one agent guaranteed to terminate explicitly and the
other either terminating or waiting forever on a port (the strongest
termination the model admits: Theorem 11 rules out both terminating).

``PTLandmarkWithChirality`` (Theorem 14): same skeleton with the bound
test replaced by "``n`` is known" — the agent terminates after closing a
full loop around the landmark — for O(n²) traversals.

Skeleton (Section 4.2.2): move left; bounce right on catching the other
agent; while bouncing, reverse back to left at the first missing edge.
``leftSteps``/``rightSteps`` record the lengths of the last left/right
runs; a catch whose left run is no longer than the previous right run
(``rightSteps >= leftSteps``) means the agents crossed — the ring is
explored and the catcher terminates.

``Tnodes`` is the perceived covered span in edges (see DESIGN.md):
``Tnodes >= N`` certifies exploration for any upper bound ``N >= n``.
"""

from __future__ import annotations

from ...core.actions import TERMINATE
from ...core.errors import ConfigurationError
from ..base import Ctx, LEFT, RIGHT, StateMachineAlgorithm, StateSpec, TERMINAL, rules


class PTBoundWithChirality(StateMachineAlgorithm):
    """Figure 14: PT, two agents, chirality, known upper bound ``N``."""

    def __init__(self, bound: int) -> None:
        if bound < 3:
            raise ConfigurationError("the bound N must be at least 3")
        self.bound = bound
        self.name = f"PTBoundWithChirality(N={bound})"
        super().__init__()

    def init_vars(self, memory) -> None:
        memory.vars["leftSteps"] = None
        memory.vars["rightSteps"] = None

    # -- predicates -------------------------------------------------------------

    def _done(self, ctx: Ctx) -> bool:
        """The algorithm-specific exploration certificate (``Tnodes >= N``)."""
        return ctx.Tnodes >= self.bound

    # -- preambles ----------------------------------------------------------------

    def _enter_bounce(self, ctx: Ctx):
        ctx.vars["leftSteps"] = ctx.Esteps  # steps of the left run that just ended
        right_steps = ctx.vars["rightSteps"]
        if right_steps is not None and right_steps >= ctx.vars["leftSteps"]:
            return TERMINATE  # the agents crossed: the ring is explored
        return None

    @staticmethod
    def _enter_reverse(ctx: Ctx) -> None:
        ctx.vars["rightSteps"] = ctx.Esteps  # steps of the right run that just ended

    # -- states ----------------------------------------------------------------------

    def build_states(self) -> list[StateSpec]:
        return [
            StateSpec(
                name="Init",
                direction=LEFT,
                rules=rules(
                    (self._done, TERMINAL),
                    (lambda ctx: ctx.catches, "Bounce"),
                ),
            ),
            StateSpec(
                name="Bounce",
                direction=RIGHT,
                on_enter=self._enter_bounce,
                rules=rules(
                    (self._done, TERMINAL),
                    (lambda ctx: ctx.Btime > 0, "Reverse"),
                ),
            ),
            StateSpec(
                name="Reverse",
                direction=LEFT,
                on_enter=self._enter_reverse,
                rules=rules(
                    (self._done, TERMINAL),
                    (lambda ctx: ctx.catches, "Bounce"),
                ),
            ),
        ]


class PTLandmarkWithChirality(PTBoundWithChirality):
    """Figure 17: PT, two agents, chirality, landmark instead of a bound.

    Identical to :class:`PTBoundWithChirality` except the termination
    certificate: "``n`` is known", i.e. the agent completed a loop around
    the landmark (the engine's ``LExplore`` bookkeeping sets ``size``).
    """

    def __init__(self) -> None:
        StateMachineAlgorithm.__init__(self)
        self.name = "PTLandmarkWithChirality"

    # only used for repr-ish purposes; the landmark test replaces the bound
    bound = None  # type: ignore[assignment]

    def _done(self, ctx: Ctx) -> bool:
        return ctx.size_known
