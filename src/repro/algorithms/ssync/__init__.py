"""SSYNC exploration algorithms (paper, Section 4)."""

from .pt_chirality import PTBoundWithChirality, PTLandmarkWithChirality
from .pt_no_chirality import PTBoundNoChirality, PTLandmarkNoChirality
from .et import ETExactSizeNoChirality, ETUnconscious

__all__ = [
    "ETExactSizeNoChirality",
    "ETUnconscious",
    "PTBoundNoChirality",
    "PTBoundWithChirality",
    "PTLandmarkNoChirality",
    "PTLandmarkWithChirality",
]
