"""Eventual Transport algorithms (paper, Section 4.3).

``ETUnconscious`` (Theorem 18): with chirality, two agents that simply
bounce off each other ("a trivial algorithm in which an agent changes
direction only when it catches someone") explore the ring unconsciously.

``ETExactSizeNoChirality`` (Theorem 20): three anonymous agents knowing
the ring size *exactly* (Theorem 19 shows an upper bound cannot suffice)
explore with at least one agent explicitly terminating.  It is Figure 18's
``PTBoundNoChirality`` with the bound set to ``n - 1`` (an agent whose
perceived span reaches ``n - 1`` edges has seen all ``n`` nodes) and the
``CheckD`` comparison made strict — in ET an equal-length leg no longer
certifies a crossing, because there is no passive transport to force the
blocked agent forward (see the proof of Theorem 20).
"""

from __future__ import annotations

from ...core.errors import ConfigurationError
from ..base import LEFT, StateMachineAlgorithm, StateSpec, rules
from .pt_no_chirality import PTBoundNoChirality


class ETUnconscious(StateMachineAlgorithm):
    """Theorem 18: bounce-on-catch unconscious exploration (ET, chirality)."""

    name = "ETUnconscious"

    def init_vars(self, memory) -> None:
        memory.vars["dir"] = LEFT

    @staticmethod
    def _flip(ctx) -> str:
        ctx.vars["dir"] = ctx.vars["dir"].opposite
        return "Cruise"

    def build_states(self) -> list[StateSpec]:
        return [
            StateSpec(
                name="Init",
                direction=self.var_dir,
                rules=rules((lambda ctx: ctx.catches, "Flip")),
            ),
            StateSpec(name="Flip", custom=self._flip),
            StateSpec(
                name="Cruise",
                direction=self.var_dir,
                rules=rules((lambda ctx: ctx.catches, "Flip")),
            ),
        ]

    initial_state = "Init"


class ETExactSizeNoChirality(PTBoundNoChirality):
    """Section 4.3.2: ET, three agents, exact ring size, no chirality."""

    strict_check = True

    def __init__(self, ring_size: int) -> None:
        if ring_size < 3:
            raise ConfigurationError("rings have n >= 3")
        self.ring_size = ring_size
        # "N is set to n - 1": a span of n-1 edges covers all n nodes.
        super().__init__(bound=ring_size - 1)
        self.name = f"ETExactSizeNoChirality(n={ring_size})"
