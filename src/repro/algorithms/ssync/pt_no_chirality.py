"""Three-agent PT algorithms without chirality (paper, Figure 18 / §4.2.3).

Without chirality two agents cannot explore in PT (Theorem 10); three can.
``PTBoundNoChirality`` (Theorem 16) knows an upper bound ``N``;
``PTLandmarkNoChirality`` (Theorem 17) replaces the bound test with the
landmark-loop certificate.  Both explore with O(N²)/O(n²) traversals; one
agent terminates explicitly, the others terminate or wait forever.

Skeleton: each agent zig-zags, changing direction *only* when it catches
another agent waiting on a missing edge ahead of it.  The distance ``d``
travelled between direction changes must strictly grow; the moment a leg
is no longer than the previous one (``CheckD``), or the agent walks into
another agent within ``d`` steps (``MeetingB``/``MeetingR``), the agents
must have crossed and the ring is explored (Lemma 4).  The meeting states
continue the sweep without resetting ``Esteps`` (the paper's
``ExploreNoResetEsteps``).

Deviation noted in DESIGN.md: the paper's ``Esteps <= d`` check in
``MeetingR``/``MeetingB`` is guarded by ``d > 0`` here, mirroring
``CheckD``'s own guard — an unset ``d`` (no completed leg yet) certifies
nothing.

The ET variant of Section 4.3.2 reuses this class with a *strict* CheckD
(``<`` instead of ``<=``); see :mod:`.et`.
"""

from __future__ import annotations

from ...core.actions import TERMINATE
from ...core.errors import ConfigurationError
from ..base import Ctx, LEFT, RIGHT, StateMachineAlgorithm, StateSpec, TERMINAL, rules


class PTBoundNoChirality(StateMachineAlgorithm):
    """Figure 18: PT, three agents, no chirality, known upper bound ``N``."""

    #: ET mode uses the strict comparison in CheckD (Section 4.3.2).
    strict_check = False

    def __init__(self, bound: int) -> None:
        if bound < 2:
            raise ConfigurationError("the bound must be at least 2")
        self.bound = bound
        self.name = f"PTBoundNoChirality(N={bound})"
        super().__init__()

    def init_vars(self, memory) -> None:
        memory.vars["d"] = 0

    # -- predicates ---------------------------------------------------------------

    def _done(self, ctx: Ctx) -> bool:
        """Exploration certificate: perceived span reached the bound."""
        return ctx.Tnodes >= self.bound

    # -- CheckD (paper, Figure 18) ---------------------------------------------------

    def _check_d(self, ctx: Ctx, steps: int):
        """Terminate when a leg stopped growing, else remember its length."""
        d = ctx.vars["d"]
        if d > 0:
            stopped_growing = steps < d if self.strict_check else steps <= d
            if stopped_growing:
                return TERMINATE
            ctx.vars["d"] = steps
        return None

    def _meeting_check(self, ctx: Ctx):
        d = ctx.vars["d"]
        if d > 0:
            crossed = ctx.Esteps < d if self.strict_check else ctx.Esteps <= d
            if crossed:
                return TERMINATE
        return None

    # -- preambles ----------------------------------------------------------------------

    def _enter_bounce(self, ctx: Ctx):
        return self._check_d(ctx, ctx.Esteps)

    def _enter_reverse(self, ctx: Ctx):
        if ctx.vars["d"] == 0:
            ctx.vars["d"] = ctx.Esteps  # first change from Bounce to Reverse
            return None
        return self._check_d(ctx, ctx.Esteps)

    # -- states ------------------------------------------------------------------------------

    def build_states(self) -> list[StateSpec]:
        return [
            StateSpec(
                name="Init",
                direction=LEFT,
                rules=rules(
                    (self._done, TERMINAL),
                    (lambda ctx: ctx.catches, "Bounce"),
                ),
            ),
            StateSpec(
                name="Bounce",
                direction=RIGHT,
                on_enter=self._enter_bounce,
                rules=rules(
                    (self._done, TERMINAL),
                    (lambda ctx: ctx.meeting, "MeetingB"),
                    (lambda ctx: ctx.catches, "Reverse"),
                ),
            ),
            StateSpec(
                name="Reverse",
                direction=LEFT,
                on_enter=self._enter_reverse,
                rules=rules(
                    (self._done, TERMINAL),
                    (lambda ctx: ctx.meeting, "MeetingR"),
                    (lambda ctx: ctx.catches, "Bounce"),
                ),
            ),
            StateSpec(
                name="MeetingR",
                direction=LEFT,
                on_enter=self._meeting_check,
                keep_esteps=True,  # ExploreNoResetEsteps
                rules=rules(
                    (self._done, TERMINAL),
                    (lambda ctx: ctx.catches, "Bounce"),
                ),
            ),
            StateSpec(
                name="MeetingB",
                direction=RIGHT,
                on_enter=self._meeting_check,
                keep_esteps=True,  # ExploreNoResetEsteps
                rules=rules(
                    (self._done, TERMINAL),
                    (lambda ctx: ctx.catches, "Reverse"),
                ),
            ),
        ]


class PTLandmarkNoChirality(PTBoundNoChirality):
    """Section 4.2.3-B: PT, three agents, no chirality, landmark.

    ``Tnodes >= N`` is replaced by "``n`` is known" — the agent has
    completed a loop around the landmark (Theorem 17).
    """

    bound = None  # type: ignore[assignment]

    def __init__(self) -> None:
        StateMachineAlgorithm.__init__(self)
        self.name = "PTLandmarkNoChirality"

    def _done(self, ctx: Ctx) -> bool:
        return ctx.size_known
