"""Deliberately broken baselines used by the impossibility demonstrations.

The impossibility theorems (1, 2, 19) say *no* algorithm can achieve
(partial) termination in their settings.  A simulator demonstrates this by
exhibiting the paper's adversary breaking representative attempts; this
module provides the canonical broken attempt — terminate after a fixed
time budget, the only thing an algorithm without size knowledge can do —
which the constructions defeat on cue.
"""

from __future__ import annotations

from ..core.errors import ConfigurationError
from .base import Ctx, LEFT, StateMachineAlgorithm, StateSpec, TERMINAL, rules


class GuessAndTerminate(StateMachineAlgorithm):
    """Walk left, bounce right when blocked, stop after ``budget`` rounds.

    A strawman: on a ring with at most ``budget / 2``-ish nodes (and a
    cooperative adversary) it happens to work; Theorems 1/2 say any such
    guess must fail — on a larger ring the agents terminate with nodes
    unexplored, which :meth:`repro.core.results.RunResult.termination_mode`
    reports as ``INCORRECT``.
    """

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise ConfigurationError("budget must be positive")
        self.budget = budget
        self.name = f"GuessAndTerminate(budget={budget})"
        super().__init__()

    def init_vars(self, memory) -> None:
        memory.vars["dir"] = LEFT

    def _expired(self, ctx: Ctx) -> bool:
        return ctx.Ttime >= self.budget

    @staticmethod
    def _blocked(ctx: Ctx) -> bool:
        return ctx.Btime > 0 or ctx.failed

    @staticmethod
    def _enter_turn(ctx: Ctx) -> str:
        ctx.vars["dir"] = ctx.vars["dir"].opposite
        return "Walk"

    def build_states(self) -> list[StateSpec]:
        return [
            StateSpec(
                name="Init",
                direction=self.var_dir,
                rules=rules(
                    (self._expired, TERMINAL),
                    (self._blocked, "Turn"),
                ),
            ),
            StateSpec(name="Turn", direction=self.var_dir, on_enter=self._enter_turn),
            StateSpec(
                name="Walk",
                direction=self.var_dir,
                rules=rules(
                    (self._expired, TERMINAL),
                    (self._blocked, "Turn"),
                ),
            ),
        ]
