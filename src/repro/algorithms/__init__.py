"""Every exploration algorithm from the paper, plus demo strawmen."""

from .base import StateMachineAlgorithm, StateSpec, Ctx, rules, TERMINAL
from .fsync import (
    KnownUpperBound,
    LandmarkNoChirality,
    LandmarkWithChirality,
    StartFromLandmarkNoChirality,
    UnconsciousExploration,
)
from .ssync import (
    ETExactSizeNoChirality,
    ETUnconscious,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkNoChirality,
    PTLandmarkWithChirality,
)
from .strawman import GuessAndTerminate

__all__ = [
    "Ctx",
    "ETExactSizeNoChirality",
    "ETUnconscious",
    "GuessAndTerminate",
    "KnownUpperBound",
    "LandmarkNoChirality",
    "LandmarkWithChirality",
    "PTBoundNoChirality",
    "PTBoundWithChirality",
    "PTLandmarkNoChirality",
    "PTLandmarkWithChirality",
    "StartFromLandmarkNoChirality",
    "StateMachineAlgorithm",
    "StateSpec",
    "TERMINAL",
    "UnconsciousExploration",
    "rules",
]
