"""Algorithms ``StartFromLandmarkNoChirality`` and ``LandmarkNoChirality``
(paper, Figures 8 and 13 / Theorems 7 and 8).

Two anonymous agents, fully synchronous, landmark, **no chirality**:
exploration with explicit termination in O(n log n) rounds.

The difficulty is the symmetric case where the agents move in opposite
directions and never interact.  The initial phase turns the timing of each
agent's first two blocks into an ID (:mod:`.ids`), and from then on the
agent follows the ID-derived direction schedule (state ``Reverse``).
Lemma 3 guarantees two distinct IDs eventually share a direction for
``5n`` consecutive rounds — enough for one agent to lap the ring, learn
``n`` at the landmark, and finish through the ``LandmarkWithChirality``
machinery, whose states (``Bounce``/``Return``/``Forward``/``BComm``/
``FComm``) are reused verbatim whenever the agents *do* catch each other.

Figure 8 assumes both agents start at the landmark; Figure 13 lifts that:
agents meeting at the landmark during the ID phase *restart* Figure 8 from
state ``InitL`` instead of terminating (the meeting no longer certifies
exploration when the walk did not start there).

Implementation notes (details in DESIGN.md):

* ``AtLandmark*``'s "both agents are at the landmark" check means *in the
  node interior* — an agent on a port is trying to leave, which is exactly
  the situation the synchronization step of Theorem 7's proof must reject.
* The paper's single ``AtLandmarkL`` state is split into the entry dance
  plus an internal ``...Cruise`` state holding the follow-up ``LExplore``;
  the split is behaviour-preserving and keeps ``k2``'s definition
  (``r2 - max(r1, r3)``) intact on the normal path.
* ``Reverse``'s ``switch(Ttime)`` self-transition relies on the driver's
  entered-this-round rule (guards of a freshly entered state wait for the
  next Look), otherwise it would re-fire within the same round forever.
"""

from __future__ import annotations

import math

from ...core.actions import Action, STAY, TERMINATE
from ..base import Ctx, LEFT, RIGHT, StateMachineAlgorithm, StateSpec, TERMINAL, rules
from .ids import DirectionSchedule, interleave_id, lemma3_bound
from .landmark_chirality import LandmarkWithChirality


def no_chirality_timeout(ring_size: int) -> int:
    """Figure 8's termination horizon ``32 * ((3*ceil(log n) + 3) * 5n)``."""
    log_n = max(1, math.ceil(math.log2(ring_size)))
    return lemma3_bound(3 * log_n, 5, ring_size) - 1  # the paper adds +1 in Happy


class StartFromLandmarkNoChirality(LandmarkWithChirality):
    """Figure 8: both agents start at the landmark, no chirality."""

    name = "StartFromLandmarkNoChirality"
    initial_state = "InitL"

    #: Ablation switch (see benchmarks/bench_ablations.py): when True, the
    #: ID-phase states use the *figures'* literal rule order (``Btime``/
    #: ``isLandmark`` before ``catches``/``caught``) instead of the text's
    #: catch-first priority.  The literal order allows a role
    #: desynchronisation that ends in premature termination.
    #: Production value: False.
    literal_rule_order = False

    def init_vars(self, memory) -> None:
        super().init_vars(memory)
        memory.vars["k1"] = 0
        memory.vars["k2"] = 0
        memory.vars["k3"] = 0

    # -- predicates ------------------------------------------------------------

    def _happy_timeout(self, ctx: Ctx) -> bool:
        return ctx.size_known and ctx.Ttime >= no_chirality_timeout(int(ctx.size)) + 1

    def _reverse_timeout(self, ctx: Ctx) -> bool:
        return ctx.size_known and ctx.Ttime >= no_chirality_timeout(int(ctx.size))

    @staticmethod
    def _switches(ctx: Ctx) -> bool:
        return ctx.vars["schedule"].switches(ctx.Ttime)

    # -- preambles ----------------------------------------------------------------

    @staticmethod
    def _enter_init_l(ctx: Ctx) -> None:
        ctx.vars["dir"] = LEFT
        ctx.vars["k1"] = 0
        ctx.vars["k2"] = 0
        ctx.vars["k3"] = 0

    @staticmethod
    def _enter_first_block(ctx: Ctx) -> None:
        ctx.vars["dir"] = RIGHT
        ctx.vars["k1"] = max(0, ctx.Ttime - 1)  # Figure 8: k1 <- Ttime - 1

    @staticmethod
    def _enter_at_landmark(ctx: Ctx) -> None:
        ctx.vars["k3"] = ctx.Etime
        ctx.vars["dance_step"] = 0

    @staticmethod
    def _enter_ready(ctx: Ctx) -> str:
        ctx.vars["k2"] = ctx.Etime
        agent_id = interleave_id(ctx.vars["k1"], ctx.vars["k2"], ctx.vars["k3"])
        ctx.vars["id"] = agent_id
        ctx.vars["schedule"] = DirectionSchedule(agent_id)
        return "Reverse"  # "Change to state Reverse and process it"

    def _enter_reverse(self, ctx: Ctx) -> str | None:
        ctx.vars["dir"] = ctx.vars["schedule"].direction(ctx.Ttime)
        if ctx.size_known:
            return "ReverseTimeout"
        return None

    # -- the landmark synchronization dance -------------------------------------------

    @staticmethod
    def _dance(cruise_state: str, success: str | Action):
        """The "both agents at the landmark" synchronization of Figure 8/13.

        On entry: if the other agent is visible in the node interior, wait
        one round; if it is *still* there, the success outcome applies
        (Terminate for Figure 8, restart at ``InitL`` for Figure 13's
        pre-restart phase).  Any other observation falls through to the
        state's ``LExplore`` (the internal cruise state).
        """

        def handler(ctx: Ctx) -> str | Action:
            step = ctx.vars.get("dance_step", 0)
            ctx.vars["dance_step"] = step + 1
            if step == 0:
                if ctx.others_in_node > 0:
                    return STAY  # wait one round
                return cruise_state
            if ctx.others_in_node > 0:
                return success
            return cruise_state

        return handler

    # -- states -----------------------------------------------------------------------

    def _id_phase_states(
        self,
        *,
        init_name: str,
        first_block_name: str,
        at_landmark_name: str,
        cruise_name: str,
        enter_first_block,
        dance_success: str | Action,
    ) -> list[StateSpec]:
        """The Init/FirstBlock/AtLandmark/Cruise quartet (Figures 8 and 13).

        Rule priority deviates from the figures' literal order in one way,
        following the paper's text instead ("if at any point the agents
        catch each other, they enter states Forward and Bounce and proceed
        with Algorithm LandmarkWithChirality", Section 3.2.3): ``catches``/
        ``caught`` outrank the ID-phase triggers (``Btime``, ``isLandmark``).
        Under the figures' order an agent that is blocked *and* caught in
        the same round would continue the ID phase while its peer starts
        the Bounce machinery; the desynchronised peer later misreads an
        ordinary departure as a BComm termination signal and stops early.
        The regression test ``test_random_adversary_safe_and_terminating``
        covers the exact interleaving.
        """
        if self.literal_rule_order:
            init_rules = rules(
                (lambda ctx: ctx.size_known, "Happy"),
                (lambda ctx: ctx.Btime > 0, first_block_name),
                (lambda ctx: ctx.catches, "Bounce"),
                (lambda ctx: ctx.caught, "Forward"),
            )
            first_block_rules = rules(
                (lambda ctx: ctx.size_known, "Happy"),
                (lambda ctx: ctx.is_landmark, at_landmark_name),
                (lambda ctx: ctx.Btime > 0, "Ready"),
                (lambda ctx: ctx.catches, "Bounce"),
                (lambda ctx: ctx.caught, "Forward"),
            )
            cruise_rules = rules(
                (lambda ctx: ctx.size_known, "Happy"),
                (lambda ctx: ctx.Btime > 0, "Ready"),
                (lambda ctx: ctx.catches, "Bounce"),
                (lambda ctx: ctx.caught, "Forward"),
            )
        else:
            init_rules = rules(
                (lambda ctx: ctx.size_known, "Happy"),
                (lambda ctx: ctx.catches, "Bounce"),
                (lambda ctx: ctx.caught, "Forward"),
                (lambda ctx: ctx.Btime > 0, first_block_name),
            )
            first_block_rules = rules(
                (lambda ctx: ctx.size_known, "Happy"),
                (lambda ctx: ctx.catches, "Bounce"),
                (lambda ctx: ctx.caught, "Forward"),
                (lambda ctx: ctx.is_landmark, at_landmark_name),
                (lambda ctx: ctx.Btime > 0, "Ready"),
            )
            cruise_rules = rules(
                (lambda ctx: ctx.size_known, "Happy"),
                (lambda ctx: ctx.catches, "Bounce"),
                (lambda ctx: ctx.caught, "Forward"),
                (lambda ctx: ctx.Btime > 0, "Ready"),
            )
        dance = self._dance(cruise_name, dance_success)
        return [
            StateSpec(
                name=init_name,
                direction=self.var_dir,
                on_enter=self._enter_init_l,
                rules=init_rules,
            ),
            StateSpec(
                name=first_block_name,
                direction=self.var_dir,
                on_enter=enter_first_block,
                rules=first_block_rules,
            ),
            StateSpec(
                name=at_landmark_name,
                custom=dance,
                on_enter=self._enter_at_landmark,
            ),
            StateSpec(
                name=cruise_name,
                direction=self.var_dir,
                rules=cruise_rules,
            ),
        ]

    def build_states(self) -> list[StateSpec]:
        states = self._id_phase_states(
            init_name="InitL",
            first_block_name="FirstBlockL",
            at_landmark_name="AtLandmarkL",
            cruise_name="AtLandmarkCruiseL",
            enter_first_block=self._enter_first_block,
            dance_success=TERMINATE,
        )
        states += [
            StateSpec(
                name="Happy",
                direction=self.var_dir,
                rules=rules(
                    (self._happy_timeout, TERMINAL),
                    (lambda ctx: ctx.catches, "Bounce"),
                    (lambda ctx: ctx.caught, "Forward"),
                ),
            ),
            StateSpec(
                name="Ready",
                direction=self.var_dir,  # never moves: on_enter redirects
                on_enter=self._enter_ready,
            ),
            StateSpec(
                name="Reverse",
                direction=self.var_dir,
                on_enter=self._enter_reverse,
                rules=rules(
                    (lambda ctx: ctx.catches, "Bounce"),
                    (lambda ctx: ctx.caught, "Forward"),
                    (self._switches, "Reverse"),
                ),
            ),
            StateSpec(
                name="ReverseTimeout",
                direction=self.var_dir,
                rules=rules(
                    (self._reverse_timeout, TERMINAL),
                    (lambda ctx: ctx.catches, "Bounce"),
                    (lambda ctx: ctx.caught, "Forward"),
                ),
            ),
        ]
        states += self._shared_states()
        return states


class LandmarkNoChirality(StartFromLandmarkNoChirality):
    """Figure 13: arbitrary starting positions, no chirality (Theorem 8)."""

    name = "LandmarkNoChirality"
    initial_state = "Init"

    @staticmethod
    def _enter_first_block_arbitrary(ctx: Ctx) -> None:
        ctx.vars["dir"] = RIGHT
        ctx.vars["k1"] = ctx.Ttime  # Figure 13: k1 <- Ttime

    def build_states(self) -> list[StateSpec]:
        states = super().build_states()
        states += self._id_phase_states(
            init_name="Init",
            first_block_name="FirstBlock",
            at_landmark_name="AtLandmark",
            cruise_name="AtLandmarkCruise",
            enter_first_block=self._enter_first_block_arbitrary,
            dance_success="InitL",
        )
        return states
