"""Algorithm ``LandmarkWithChirality`` (paper, Figure 4 / Theorem 6).

Two anonymous agents, fully synchronous, no knowledge of the ring size,
but a landmark node and common chirality.  Both agents explore and
explicitly terminate in O(n) rounds.

Sketch (Section 3.2.2): both agents head left.  If they never interact,
each eventually loops the ring, learns ``n`` from the landmark, and times
out (Lemma 1).  At the first catch they take roles — ``F`` (caught; keeps
pushing its direction) and ``B`` (catcher; bounces away, later returns) —
and from then on coordinate through two signalling states:

* ``BComm``: ``B`` has caught up with ``F`` again.  If ``B`` can conclude
  the ring is explored (``returnSteps <= 2 * bounceSteps`` — both waited
  on the same edge — or it knows ``n``) it moves away as a termination
  signal and stops next round; otherwise it stays one round and watches
  what ``F`` does.
* ``FComm``: ``F`` (on its port) either keeps pushing/leaves — its own
  termination signal, when it knows ``n`` — or steps back into the node
  interior to say "keep going".

Directions are implemented relative to the first catch (``fwd`` = the
direction the agent was moving when roles were assigned): ``Forward`` and
``Return`` move along ``fwd``, ``Bounce`` and the ``BComm`` signal move
against it.  Under chirality, with both agents initially moving left,
this is literally the paper's left/right; see DESIGN.md for why the
relative reading is the coherent one when these states are reused by the
no-chirality algorithms of Figures 8 and 13.

The landmark bookkeeping (``LExplore``) — distance from the landmark,
learning ``n`` after a full loop, the ``Ntime`` clock — is maintained by
the engine runtime (:mod:`repro.core.memory`).
"""

from __future__ import annotations

from ...core.actions import Action
from ..base import (
    Ctx,
    ENTER_NODE,
    LEFT,
    STAY,
    StateMachineAlgorithm,
    StateSpec,
    TERMINAL,
    TERMINATE,
    move,
    rules,
)


class LandmarkWithChirality(StateMachineAlgorithm):
    """Figure 4: explore with a landmark and chirality, terminate in O(n)."""

    name = "LandmarkWithChirality"

    def init_vars(self, memory) -> None:
        memory.vars["dir"] = LEFT
        memory.vars["bounceSteps"] = None
        memory.vars["returnSteps"] = None

    # -- predicates -----------------------------------------------------------
    #
    # ``meeting`` only fires on *converging* meetings (Lemma 2, case 2):
    # after a keep-going handshake both agents briefly share a node, but
    # the driver skips a freshly entered state's rules for that round
    # (see :mod:`repro.algorithms.base`), and by the next Look the agents
    # have separated.

    @staticmethod
    def _init_timeout(ctx: Ctx) -> bool:
        return ctx.Ntime > 2 * ctx.size

    @staticmethod
    def _bounce_over(ctx: Ctx) -> bool:
        return ctx.Etime > 2 * ctx.Esteps or ctx.Ntime > 0

    @staticmethod
    def _return_timeout_or_caught(ctx: Ctx) -> bool:
        return ctx.Ntime > 3 * ctx.size or ctx.caught

    @staticmethod
    def _forward_done(ctx: Ctx) -> bool:
        return ctx.Ntime >= 7 * ctx.size or ctx.meeting or ctx.catches

    # -- preambles -------------------------------------------------------------

    @classmethod
    def _enter_bounce(cls, ctx: Ctx) -> None:
        cls.remember_forward(ctx)

    @classmethod
    def _enter_forward(cls, ctx: Ctx) -> None:
        cls.remember_forward(ctx)

    @staticmethod
    def _enter_return(ctx: Ctx) -> None:
        ctx.vars["bounceSteps"] = ctx.Esteps

    def _enter_bcomm(self, ctx: Ctx) -> None:
        # Esteps still belongs to the previous state (Bounce or Return).
        ctx.vars["returnSteps"] = ctx.Esteps
        bounce_steps = ctx.vars["bounceSteps"]
        if bounce_steps is not None and ctx.vars["returnSteps"] <= 2 * bounce_steps:
            # Both agents waited on the same edge: the ring is explored.
            ctx.vars["comm"] = "signal"
        elif ctx.size_known:
            ctx.vars["comm"] = "signal"
        else:
            ctx.vars["comm"] = "wait"
        ctx.vars["comm_step"] = 0

    def _enter_fcomm(self, ctx: Ctx) -> None:
        ctx.vars["comm"] = "signal" if ctx.size_known else "wait"
        ctx.vars["comm_step"] = 0

    # -- the communication scripts -----------------------------------------------

    def _bcomm(self, ctx: Ctx) -> Action | str:
        step = ctx.vars["comm_step"]
        ctx.vars["comm_step"] = step + 1
        if ctx.vars["comm"] == "signal":
            if step == 0:
                return move(ctx.vars["fwd"].opposite)  # paper: Move(right)
            return TERMINATE  # "Terminate in the next round"
        # wait: stay one round, then read F's answer.
        if step == 0:
            return STAY
        if ctx.others_in_node > 0:
            return "Bounce"  # F stepped into the node: keep exploring
        return TERMINATE  # F left or is on the port: termination signal

    def _fcomm(self, ctx: Ctx) -> Action | str:
        step = ctx.vars["comm_step"]
        ctx.vars["comm_step"] = step + 1
        if ctx.vars["comm"] == "signal":
            if step == 0:
                return move(ctx.vars["fwd"])  # paper: Move(left) — stays on/leaves via the port
            return TERMINATE
        # wait: step from the port into the node, then read B's answer.
        if step == 0:
            return ENTER_NODE
        if ctx.others_in_node > 0:
            return "Forward"  # B stayed: keep exploring
        return TERMINATE  # B left or is on a port: termination signal

    # -- states ---------------------------------------------------------------------

    def build_states(self) -> list[StateSpec]:
        return [
            StateSpec(
                name="Init",
                direction=self.var_dir,
                rules=rules(
                    (self._init_timeout, TERMINAL),
                    (lambda ctx: ctx.catches, "Bounce"),
                    (lambda ctx: ctx.caught, "Forward"),
                ),
            ),
        ] + self._shared_states()

    def _shared_states(self) -> list[StateSpec]:
        """Bounce/Return/Forward/BComm/FComm — reused by Figures 8 and 13."""
        return [
            StateSpec(
                name="Bounce",
                direction=self.against_forward_dir,
                on_enter=self._enter_bounce,
                rules=rules(
                    (lambda ctx: ctx.meeting, TERMINAL),
                    (self._bounce_over, "Return"),
                    (lambda ctx: ctx.catches, "BComm"),
                ),
            ),
            StateSpec(
                name="Return",
                direction=self.forward_dir,
                on_enter=self._enter_return,
                rules=rules(
                    (self._return_timeout_or_caught, TERMINAL),
                    (lambda ctx: ctx.catches, "BComm"),
                ),
            ),
            StateSpec(
                name="Forward",
                direction=self.forward_dir,
                on_enter=self._enter_forward,
                rules=rules(
                    (self._forward_done, TERMINAL),
                    (lambda ctx: ctx.caught, "FComm"),
                ),
            ),
            StateSpec(name="BComm", custom=self._bcomm, on_enter=self._enter_bcomm),
            StateSpec(name="FComm", custom=self._fcomm, on_enter=self._enter_fcomm),
        ]
