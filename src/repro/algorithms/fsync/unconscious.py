"""Algorithm ``Unconscious Exploration`` (paper, Figure 3 / Theorem 5).

Two anonymous agents, fully synchronous, *no* knowledge of the ring size,
no chirality, no landmark.  Exploration completes in O(n) rounds but the
agents never know it: they run forever (Theorems 1 and 2 make termination
impossible in this setting).

Each agent maintains a ring-size guess ``G`` (starting at 2) and moves in
its current direction for ``2G`` rounds per phase:

* if during a phase it spent more than ``G`` consecutive rounds blocked,
  it *reverses* direction for the next phase (same guess);
* otherwise it *keeps* direction and doubles the guess;
* if it ever catches the other agent it bounces and keeps the new
  direction forever; if it is caught it keeps its direction forever.

The pseudocode's ``F <- 2 * G`` assignment in state ``Reverse`` is dead
(``F`` is never read) and is omitted here.
"""

from __future__ import annotations

from ..base import Ctx, LEFT, StateMachineAlgorithm, StateSpec, rules


class UnconsciousExploration(StateMachineAlgorithm):
    """Figure 3: guess-doubling unconscious exploration."""

    name = "UnconsciousExploration"

    def init_vars(self, memory) -> None:
        memory.vars["G"] = 2
        memory.vars["dir"] = LEFT

    # Predicates -------------------------------------------------------------

    @staticmethod
    def _phase_over_blocked(ctx: Ctx) -> bool:
        g = ctx.vars["G"]
        return ctx.Etime >= 2 * g and ctx.Btime > g

    @staticmethod
    def _phase_over(ctx: Ctx) -> bool:
        return ctx.Etime >= 2 * ctx.vars["G"]

    # Preambles ----------------------------------------------------------------

    @staticmethod
    def _enter_reverse(ctx: Ctx) -> None:
        ctx.vars["dir"] = ctx.vars["dir"].opposite

    @staticmethod
    def _enter_keep(ctx: Ctx) -> None:
        ctx.vars["G"] *= 2

    @classmethod
    def _enter_bounce(cls, ctx: Ctx) -> None:
        cls.remember_forward(ctx)

    @classmethod
    def _enter_forward(cls, ctx: Ctx) -> None:
        cls.remember_forward(ctx)

    # States ---------------------------------------------------------------------

    def build_states(self) -> list[StateSpec]:
        phase_rules = rules(
            (self._phase_over_blocked, "Reverse"),
            (self._phase_over, "Keep"),
            (lambda ctx: ctx.catches, "Bounce"),
            (lambda ctx: ctx.caught, "Forward"),
        )
        return [
            StateSpec(name="Init", direction=self.var_dir, rules=phase_rules),
            StateSpec(
                name="Reverse",
                direction=self.var_dir,
                rules=phase_rules,
                on_enter=self._enter_reverse,
            ),
            StateSpec(
                name="Keep",
                direction=self.var_dir,
                rules=phase_rules,
                on_enter=self._enter_keep,
            ),
            # After a catch the agents hold their (new) directions forever.
            StateSpec(
                name="Bounce",
                direction=self.against_forward_dir,
                on_enter=self._enter_bounce,
            ),
            StateSpec(
                name="Forward",
                direction=self.forward_dir,
                on_enter=self._enter_forward,
            ),
        ]
