"""Symmetry-breaking IDs and direction schedules (paper, Section 3.2.3).

Without chirality, two agents starting from the landmark may move in
opposite directions and never interact.  The paper breaks the symmetry by
letting each agent *derive an identifier from the timing of its first two
blocks*:

* ``k1`` — the round of the first block (``r1``);
* ``k2`` — rounds between the second block and the later of the first
  block / the first landmark visit in between (``r2 - max(r1, r3)``);
* ``k3`` — rounds from the first block to that landmark visit, or 0 if
  the landmark was not crossed in between (``max(0, r3 - r1)``);

the ID is the integer whose binary expansion *interleaves the bits* of
``k1, k2, k3`` (each zero-padded to the longest of the three).  Figures 9
and 10 give worked examples, reproduced verbatim in the test suite.

From the ID each agent derives an infinite left/right *direction schedule*
(one bit per round, organised into exponentially growing phases) such that
two agents with different IDs eventually move in the same direction for
``c * n`` consecutive rounds (Lemma 3), long enough for the
``LandmarkWithChirality`` machinery to finish the job:

* ``S(ID) = "10" + bin(ID) + "0"``, left-padded with zeros to the next
  power of two; ``jbar`` is the exponent of that length;
* phase ``j`` covers rounds ``2^j .. 2^(j+1) - 1``; for ``j >= jbar`` the
  phase pattern is ``Dup(S, 2^(j - jbar))`` (every bit repeated), for
  ``j < jbar`` the direction is fixed to left;
* bit 0 = left, bit 1 = right (Figure 11).
"""

from __future__ import annotations

from ...core.directions import LEFT, RIGHT, LocalDirection
from ...core.errors import ConfigurationError


def interleave_id(k1: int, k2: int, k3: int) -> int:
    """The agent identifier: bit-interleaving of ``k1, k2, k3``.

    Each value is written in minimal binary, zero-padded on the left to
    the longest of the three, and the bits are interleaved position by
    position (``k1`` bit, ``k2`` bit, ``k3`` bit, next position, ...).
    Matches Figures 9 and 10 of the paper exactly.
    """
    if min(k1, k2, k3) < 0:
        raise ConfigurationError("k1, k2, k3 must be non-negative")
    parts = [format(k, "b") for k in (k1, k2, k3)]
    width = max(len(p) for p in parts)
    padded = [p.zfill(width) for p in parts]
    bits = "".join(
        padded[which][position] for position in range(width) for which in range(3)
    )
    return int(bits, 2)


def duplicate_bits(pattern: str, repeat: int) -> str:
    """``Dup(S, k)``: repeat each character ``k`` times (``Dup("1010", 2) == "11001100"``)."""
    if repeat < 1:
        raise ConfigurationError("repeat must be >= 1")
    return "".join(ch * repeat for ch in pattern)


def phase_of_round(round_no: int) -> int:
    """Phase ``j`` with ``2^j <= round < 2^(j+1)`` (rounds start at 1)."""
    if round_no < 1:
        raise ConfigurationError("the phase subdivision starts at round 1")
    return round_no.bit_length() - 1


class DirectionSchedule:
    """The per-round direction sequence derived from an agent ID."""

    def __init__(self, agent_id: int) -> None:
        if agent_id < 0:
            raise ConfigurationError("IDs are non-negative")
        self.agent_id = agent_id
        base = "10" + format(agent_id, "b") + "0"
        jbar = max(2, (len(base) - 1).bit_length())  # min j with 2^j >= len(base)
        while (1 << jbar) < len(base):  # pragma: no cover - bit_length covers this
            jbar += 1
        self.jbar = jbar
        self.pattern = base.zfill(1 << jbar)

    def phase_pattern(self, phase: int) -> str:
        """``d(ID, j)`` for ``j >= jbar``: the phase's bit string."""
        if phase < self.jbar:
            raise ConfigurationError(f"phase {phase} precedes jbar={self.jbar}")
        return duplicate_bits(self.pattern, 1 << (phase - self.jbar))

    def direction(self, round_no: int) -> LocalDirection:
        """Direction for ``round_no`` (0 = left, 1 = right; Figure 11)."""
        if round_no < 1:
            return LEFT
        phase = phase_of_round(round_no)
        if phase < self.jbar:
            return LEFT
        offset = round_no - (1 << phase)
        repeat = 1 << (phase - self.jbar)
        bit = self.pattern[offset // repeat]
        return RIGHT if bit == "1" else LEFT

    def switches(self, round_no: int) -> bool:
        """True iff the scheduled direction changes at ``round_no``."""
        if round_no < 2:
            return False
        return self.direction(round_no) is not self.direction(round_no - 1)

    def __repr__(self) -> str:
        return f"DirectionSchedule(id={self.agent_id}, jbar={self.jbar}, S={self.pattern!r})"


def common_direction_window(
    first: DirectionSchedule, second: DirectionSchedule, horizon: int
) -> tuple[int, int]:
    """Longest run of rounds ``<= horizon`` where both schedules agree.

    Returns ``(start_round, length)`` of the longest common-direction
    window; used to check Lemma 3 empirically.
    """
    best_start, best_len = 1, 0
    run_start, run_len = 1, 0
    for r in range(1, horizon + 1):
        if first.direction(r) is second.direction(r):
            if run_len == 0:
                run_start = r
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_len = 0
    return best_start, best_len


def lemma3_bound(id_length: int, c: int, n: int) -> int:
    """Lemma 3's round bound ``32 * ((len(ID) + 3) * c * n) + 1``."""
    return 32 * ((id_length + 3) * c * n) + 1


def id_bit_length(agent_id: int) -> int:
    """``len(ID)`` as used by Lemma 3 and the termination timeouts."""
    return max(1, agent_id.bit_length())
