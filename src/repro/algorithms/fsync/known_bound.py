"""Algorithm ``KnownNNoChirality`` (paper, Figure 1 / Theorem 3).

Two anonymous agents, fully synchronous rounds, a known upper bound
``N >= n`` on the ring size, no chirality required.  Both agents explore
and explicitly terminate by round ``3N - 6``.

Behaviour (Section 3.1): each agent heads (its own) left and keeps going
unless one of three things happens in the first ``2N - 4`` rounds —

* it *catches* the other agent (sees it blocked on the port ahead), or
* ``2N - 4`` rounds have passed and it has been blocked ``N - 1``
  consecutive rounds, or
* it *fails* to enter a port (the two agents started together and pushed
  the same port) —

in which case it bounces right for the rest of the run.  An agent that is
*caught* keeps going left.  Everyone stops at round ``3N - 6``.

One deviation from the literal pseudocode, recorded in DESIGN.md: the
pseudocode guard ``Btime = N-1`` is implemented as ``Btime >= N-1``.  The
blocked streak can straddle the ``Ttime >= 2N-4`` threshold and be longer
than ``N-1`` the first time both conjuncts hold; ``>=`` matches the prose
("has been blocked for N-1 rounds") and the proof, while ``=`` could skip
the bounce entirely.
"""

from __future__ import annotations

from ...core.errors import ConfigurationError
from ..base import (
    Ctx,
    LEFT,
    RIGHT,
    StateMachineAlgorithm,
    StateSpec,
    TERMINAL,
    rules,
)


class KnownUpperBound(StateMachineAlgorithm):
    """Figure 1: explore with a known upper bound ``N``, no chirality."""

    def __init__(self, bound: int) -> None:
        if bound < 3:
            raise ConfigurationError("the bound N must be at least 3 (rings have n >= 3)")
        self.bound = bound
        self.name = f"KnownNNoChirality(N={bound})"
        super().__init__()

    #: Ablation switch (see benchmarks/bench_ablations.py): when True, the
    #: long-block guard uses the figure's literal ``Btime = N-1`` instead
    #: of ``>=``.  A blocked streak straddling the ``2N-4`` threshold then
    #: never satisfies the guard and the agent is stuck pushing a missing
    #: edge forever.  Production value: False.
    literal_btime_equality = False

    # Rule predicates -------------------------------------------------------

    def _long_block(self, ctx: Ctx) -> bool:
        if self.literal_btime_equality:
            return ctx.Btime == self.bound - 1
        return ctx.Btime >= self.bound - 1

    def _bounce_now(self, ctx: Ctx) -> bool:
        return (ctx.Ttime >= 2 * self.bound - 4 and self._long_block(ctx)) or ctx.failed

    def _warmup_over(self, ctx: Ctx) -> bool:
        return ctx.Ttime >= 2 * self.bound - 4

    def _deadline(self, ctx: Ctx) -> bool:
        return ctx.Ttime >= 3 * self.bound - 6

    # States ---------------------------------------------------------------

    def build_states(self) -> list[StateSpec]:
        return [
            StateSpec(
                name="Init",
                direction=LEFT,
                rules=rules(
                    (self._bounce_now, "Bounce"),
                    (lambda ctx: ctx.catches, "Bounce"),
                    (lambda ctx: ctx.caught, "Forward"),
                    (self._warmup_over, "Forward"),
                ),
            ),
            StateSpec(
                name="Bounce",
                direction=RIGHT,
                rules=rules((self._deadline, TERMINAL)),
            ),
            StateSpec(
                name="Forward",
                direction=LEFT,
                rules=rules((self._deadline, TERMINAL)),
            ),
        ]
