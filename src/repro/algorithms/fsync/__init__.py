"""FSYNC exploration algorithms (paper, Section 3)."""

from .known_bound import KnownUpperBound
from .unconscious import UnconsciousExploration
from .landmark_chirality import LandmarkWithChirality
from .landmark_no_chirality import LandmarkNoChirality, StartFromLandmarkNoChirality

__all__ = [
    "KnownUpperBound",
    "LandmarkNoChirality",
    "LandmarkWithChirality",
    "StartFromLandmarkNoChirality",
    "UnconsciousExploration",
]
