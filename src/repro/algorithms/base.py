"""The ``Explore``/``LExplore`` building block (paper, Section 3).

Every algorithm in the paper is specified as a small state machine whose
states each run::

    Explore (dir | p1 : s1; p2 : s2; ... ; pk : sk)

"the agent performs Look, then evaluates the predicates p1..pk in order;
as soon as a predicate is satisfied, say pi, the procedure exits and the
agent does a transition to the specified state si.  If no predicate is
satisfied, the agent tries to Move in the specified direction dir and the
procedure is executed again in the next round."

This module turns that prose into an executable framework:

* :class:`StateSpec` — one state: an optional *preamble* (the assignments
  the pseudocode writes above the ``Explore`` call, run once on entry,
  *before* the per-Explore counters reset so it can still read the previous
  state's ``Esteps``), an ordered rule list ``(predicate, target-state)``,
  and a direction (a constant or a function of the context).  States such
  as ``BComm``/``FComm`` of Figure 4, which are imperative multi-round
  scripts rather than guarded Explore calls, provide a ``custom`` handler
  instead of rules.
* :class:`Ctx` — what predicates can see: the snapshot, the runtime
  counters, and the state's moving direction (needed by ``catches``).
* :class:`StateMachineAlgorithm` — the driver.  State transitions are
  processed *in the same round* (the pseudocode's "change state ... and
  process it"), chaining until some state produces an action; a chain
  longer than :data:`MAX_CHAIN` raises, catching accidental transition
  loops.

  One crucial timing rule: in the round a state is entered *via a
  transition*, the agent acts per the new state (its preamble runs, it
  moves in its direction, a custom script executes) but the new state's
  **guard rules are not evaluated until the next Look**.  Without this,
  the very snapshot that fired ``caught: Forward`` in ``Init`` would
  instantly re-fire ``Forward``'s own ``caught: FComm`` — one catch event
  observed twice.  Same-round rule evaluation would also let ``Reverse``'s
  ``switch(Ttime): Reverse`` self-transition loop forever.  The paper's
  worst-case accounting (the exact ``3N-6`` of Theorem 3 under Figure 2's
  schedule) pins the "move in the new direction immediately" half of this
  rule; the regression tests pin both halves.

Two deliberate semantic choices, both documented in DESIGN.md:

* ``Btime`` as seen by predicates is ``min(Btime, Etime)`` — the blocked
  streak *within the current Explore call*.  On the round a state is
  entered ``Etime == 0``, so a stale streak from the previous state can
  never satisfy a fresh ``Btime > 0`` guard (e.g. Figure 8's
  ``FirstBlockL``, which must wait for a *second* block).
* ``size`` behaves like the paper's "initialized to infinity": every
  arithmetic test involving it fails while the ring size is unknown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Union

from ..core.actions import Action, ActionKind, ENTER_NODE, STAY, TERMINATE, move
from ..core.directions import LocalDirection, LEFT, RIGHT
from ..core.errors import ProtocolViolation
from ..core.memory import AgentMemory
from ..core.snapshot import Snapshot

#: Maximum same-round state transitions before the driver assumes a loop.
MAX_CHAIN = 32

#: Name of the terminal state every algorithm shares.
TERMINAL = "Terminate"


class Ctx:
    """Everything a predicate or preamble may consult.

    Thin, read-mostly wrapper over the snapshot and the agent memory;
    ``direction`` is filled in by the driver with the current state's
    moving direction before rules are evaluated (``catches`` needs it).
    """

    __slots__ = ("snapshot", "memory", "direction")

    def __init__(self, snapshot: Snapshot, memory: AgentMemory) -> None:
        self.snapshot = snapshot
        self.memory = memory
        self.direction: LocalDirection | None = None

    # -- variables ---------------------------------------------------------

    @property
    def vars(self) -> dict:
        return self.memory.vars

    # -- counters (Section 3 names) -----------------------------------------

    @property
    def Ttime(self) -> int:
        return self.memory.Ttime

    @property
    def Tsteps(self) -> int:
        return self.memory.Tsteps

    @property
    def Etime(self) -> int:
        return self.memory.Etime

    @property
    def Esteps(self) -> int:
        return self.memory.Esteps

    @property
    def Btime(self) -> int:
        """Blocked streak within the current Explore call (see module doc)."""
        return min(self.memory.Btime, self.memory.Etime)

    @property
    def Ntime(self) -> int:
        return self.memory.Ntime

    @property
    def Tnodes(self) -> int:
        return self.memory.Tnodes

    @property
    def size(self) -> float:
        """Ring size if known, else ``inf`` (all tests on it then fail)."""
        return self.memory.size if self.memory.size is not None else math.inf

    @property
    def size_known(self) -> bool:
        return self.memory.size_known

    # -- predicates ----------------------------------------------------------

    @property
    def failed(self) -> bool:
        return self.snapshot.failed

    @property
    def meeting(self) -> bool:
        return self.snapshot.meeting()

    @property
    def catches(self) -> bool:
        if self.direction is None:
            return False
        return self.snapshot.catches(self.direction)

    @property
    def caught(self) -> bool:
        return self.snapshot.caught()

    @property
    def is_landmark(self) -> bool:
        return self.snapshot.is_landmark

    @property
    def others_in_node(self) -> int:
        return self.snapshot.others_in_node

    @property
    def on_port(self) -> LocalDirection | None:
        return self.snapshot.on_port


Predicate = Callable[[Ctx], bool]
DirectionSpec = Union[LocalDirection, Callable[[Ctx], LocalDirection]]
#: What a preamble/custom handler may produce: nothing, a same-round state
#: transition (by name), or a final action for this round.
StepOutcome = Union[None, str, Action]


@dataclass(frozen=True)
class Rule:
    predicate: Predicate
    target: str


@dataclass(frozen=True)
class StateSpec:
    """One state of an algorithm (one ``Explore``/``LExplore`` call)."""

    name: str
    direction: DirectionSpec | None = None
    rules: tuple[Rule, ...] = ()
    on_enter: Callable[[Ctx], StepOutcome] | None = None
    custom: Callable[[Ctx], Union[str, Action]] | None = None
    keep_esteps: bool = False  # ExploreNoResetEsteps (Figure 18)

    def __post_init__(self) -> None:
        if self.custom is None and self.direction is None:
            raise ValueError(f"state {self.name!r} needs a direction or a custom handler")
        if self.custom is not None and self.rules:
            raise ValueError(f"state {self.name!r} cannot mix custom handler and rules")


def rules(*pairs: tuple[Predicate, str]) -> tuple[Rule, ...]:
    """Ordered rule list: ``rules((pred, "State"), ...)``."""
    return tuple(Rule(predicate, target) for predicate, target in pairs)


def _compile_state(spec: StateSpec) -> tuple:
    """Flatten one state into the driver's dispatch tuple.

    ``(on_enter, custom, keep_esteps, direction_value, direction_fn,
    rule_pairs)`` — everything :meth:`StateMachineAlgorithm.compute`
    consults per round, pre-resolved: the constant-vs-callable direction
    decision is made here (not per Compute), and the rule list becomes a
    flat tuple of ``(predicate, target)`` pairs so the guard loop touches
    no dataclass attributes.
    """
    direction_fn = spec.direction if callable(spec.direction) else None
    direction_value = spec.direction if direction_fn is None else None
    return (
        spec.on_enter,
        spec.custom,
        spec.keep_esteps,
        direction_value,
        direction_fn,
        tuple((rule.predicate, rule.target) for rule in spec.rules),
    )


class StateMachineAlgorithm:
    """Base driver for the paper's Explore-style algorithms.

    Subclasses define :meth:`build_states`, the initial state name and
    optionally :meth:`init_vars`.  All per-agent data lives in
    ``memory.vars``; instances themselves are immutable and shared between
    agents (which is what makes adversarial look-ahead possible).
    """

    name = "state-machine"
    initial_state = "Init"

    #: Ablation switch (see benchmarks/bench_ablations.py): when True, a
    #: state entered by a transition has its guard rules evaluated against
    #: the *same* snapshot that caused the transition — the naive reading
    #: that lets one catch event fire twice.  Production value: False.
    eager_entry_rules = False

    #: Perf switch (ROADMAP "Compute-bound regimes"): rule dispatch is
    #: memoised per state — each state's handlers, direction kind and
    #: guard list are flattened once at construction
    #: (:func:`_compile_state`) instead of being re-derived from the
    #: ``StateSpec`` dataclass on every Compute.  ``False`` restores the
    #: re-derive-per-Compute behaviour as the measured baseline of the
    #: ``rule_dispatch`` entry in ``benchmarks/bench_engine_hotpath.py``;
    #: both paths are behaviourally identical (the golden trace suite
    #: covers the memoised one).
    memoize_dispatch = True

    def __init__(self) -> None:
        self._states: dict[str, StateSpec] = {}
        for spec in self.build_states():
            if spec.name in self._states:
                raise ValueError(f"duplicate state {spec.name!r}")
            self._states[spec.name] = spec
        for spec in self._states.values():
            for rule in spec.rules:
                if rule.target != TERMINAL and rule.target not in self._states:
                    raise ValueError(
                        f"state {spec.name!r} targets unknown state {rule.target!r}"
                    )
        if self.initial_state not in self._states:
            raise ValueError(f"unknown initial state {self.initial_state!r}")
        self._dispatch: dict[str, tuple] = {
            name: _compile_state(spec) for name, spec in self._states.items()
        }

    # -- subclass interface ---------------------------------------------------

    def build_states(self) -> list[StateSpec]:
        raise NotImplementedError

    def init_vars(self, memory: AgentMemory) -> None:
        """Populate algorithm-private variables before round 0."""

    # -- Algorithm protocol ----------------------------------------------------

    def setup(self, memory: AgentMemory) -> None:
        memory.vars["state"] = self.initial_state
        memory.vars["_entered"] = False
        self.init_vars(memory)

    def compute(self, snapshot: Snapshot, memory: AgentMemory) -> Action:
        ctx = Ctx(snapshot, memory)
        vars = memory.vars
        entered_this_round = False
        dispatch = self._dispatch if self.memoize_dispatch else None
        for _ in range(MAX_CHAIN):
            state_name = vars["state"]
            if state_name == TERMINAL:
                return TERMINATE
            if dispatch is not None:
                entry = dispatch[state_name]
            else:
                entry = _compile_state(self._states[state_name])
            on_enter, custom, keep_esteps, direction, direction_fn, rule_pairs = entry

            if not vars["_entered"]:
                if on_enter is not None:
                    outcome = on_enter(ctx)
                    if isinstance(outcome, str):
                        self._transition(memory, outcome)
                        entered_this_round = True
                        continue
                    if isinstance(outcome, Action):
                        if outcome.kind is ActionKind.TERMINATE:
                            vars["state"] = TERMINAL
                        return outcome
                memory.reset_explore(keep_esteps=keep_esteps)
                vars["_entered"] = True

            if custom is not None:
                result = custom(ctx)
                if isinstance(result, str):
                    self._transition(memory, result)
                    entered_this_round = True
                    continue
                if result.kind is ActionKind.TERMINATE:
                    vars["state"] = TERMINAL
                return result

            if direction_fn is not None:
                direction = direction_fn(ctx)
            ctx.direction = direction
            vars["last_dir"] = direction
            # Guards of a state entered this round wait for the next Look
            # (see the module docstring); the agent still moves per the
            # new state's direction immediately.
            if entered_this_round and not self.eager_entry_rules:
                return move(direction)
            for predicate, target in rule_pairs:
                if predicate(ctx):
                    self._transition(memory, target)
                    entered_this_round = True
                    break
            else:
                return move(direction)
        raise ProtocolViolation(
            f"{self.name}: more than {MAX_CHAIN} same-round state transitions"
        )

    # -- internals ---------------------------------------------------------------

    def _transition(self, memory: AgentMemory, target: str) -> None:
        if target != TERMINAL and target not in self._states:
            raise ProtocolViolation(f"{self.name}: transition to unknown state {target!r}")
        memory.vars["state"] = target
        memory.vars["_entered"] = False

    # -- conveniences shared by concrete algorithms --------------------------------

    @staticmethod
    def var_dir(ctx: Ctx) -> LocalDirection:
        """Direction stored in ``vars['dir']`` (set by preambles)."""
        return ctx.vars["dir"]

    @staticmethod
    def forward_dir(ctx: Ctx) -> LocalDirection:
        """The direction fixed at the first catch (see DESIGN.md).

        ``Forward``/``Return`` move in it, ``Bounce`` moves opposite to it;
        under chirality this is exactly the paper's literal left/right.
        """
        return ctx.vars["fwd"]

    @staticmethod
    def against_forward_dir(ctx: Ctx) -> LocalDirection:
        return ctx.vars["fwd"].opposite

    @staticmethod
    def remember_forward(ctx: Ctx) -> None:
        """Fix ``fwd`` to the direction the agent had when roles were named."""
        ctx.vars.setdefault("fwd", ctx.vars.get("last_dir", LEFT))


__all__ = [
    "Ctx",
    "MAX_CHAIN",
    "Rule",
    "StateMachineAlgorithm",
    "StateSpec",
    "TERMINAL",
    "rules",
    "LEFT",
    "RIGHT",
    "ENTER_NODE",
    "STAY",
    "TERMINATE",
    "move",
]
