"""Run-level safety checks shared by tests, benches and examples.

The single safety property every algorithm in the paper must satisfy: *the
terminal state is entered only after the exploration of the ring*
(Section 2.1).  Liveness varies by setting (explicit / partial /
unconscious) and is asserted per-experiment; safety is universal.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ..core.results import RunResult, TerminationMode


def check_safety(result: RunResult) -> list[str]:
    """Return a list of safety violations (empty = clean run).

    Violations:
    * an agent terminated although the ring was never explored;
    * an agent terminated in a round before exploration completed.
    """
    problems: list[str] = []
    for agent in result.agents:
        if not agent.terminated:
            continue
        if result.exploration_round is None:
            problems.append(
                f"agent {agent.index} terminated at round {agent.termination_round} "
                "but the ring was never explored"
            )
        elif (
            agent.termination_round is not None
            and agent.termination_round < result.exploration_round
        ):
            problems.append(
                f"agent {agent.index} terminated at round {agent.termination_round}, "
                f"before exploration completed at round {result.exploration_round}"
            )
    return problems


def classify_runs(results: Iterable[RunResult]) -> Counter:
    """Histogram of :class:`TerminationMode` over a batch of runs."""
    counter: Counter = Counter()
    for result in results:
        counter[result.termination_mode()] += 1
    return counter


def assert_safe(result: RunResult) -> RunResult:
    """Raise ``AssertionError`` on a safety violation; returns the result."""
    problems = check_safety(result)
    if problems:
        raise AssertionError("; ".join(problems))
    return result
