"""Catch-event extraction from live executions (empirical Figure 22).

:mod:`.catch_tree` verifies Theorem 20's case analysis *symbolically*;
this module closes the loop by recording the catch events of an actual
three-agent ET (or PT) execution and checking they obey the successor
rule the proof relies on: a catch flips the catcher's direction, only
same-direction agents catch each other, and consecutive events involve
the previous catcher or the third agent, never a same-direction repeat.

Detection piggybacks on the zig-zag algorithms' defining property
(Section 4.2.3: "an agent changes direction if and only if it reaches
another agent that is waiting on a missing edge in the same direction"):
a transition into ``Bounce`` or ``Reverse`` *is* a catch.  The caught
agent is the unique other agent waiting on a port of the catcher's
pre-round node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.directions import GlobalDirection, LocalDirection

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine

#: States in which the zig-zag algorithms move locally-left / locally-right.
_LEFT_MOVING = {"Init", "Reverse", "MeetingR"}
_RIGHT_MOVING = {"Bounce", "MeetingB"}
#: Transitions into these states are direction changes, i.e. catches.
_CATCH_TARGETS = {"Bounce", "Reverse"}


@dataclass(frozen=True)
class CatchRecord:
    """One observed catch: ``catcher`` (moving ``direction``) caught ``caught``."""

    round: int
    catcher: int
    caught: int
    direction: GlobalDirection  # the catcher's global direction *before* flipping


def _moving_direction(state: str, agent) -> GlobalDirection | None:
    if state in _LEFT_MOVING:
        return agent.orientation.to_global(LocalDirection.LEFT)
    if state in _RIGHT_MOVING:
        return agent.orientation.to_global(LocalDirection.RIGHT)
    return None


def log_catches(engine: "Engine", rounds: int) -> list[CatchRecord]:
    """Run ``rounds`` rounds, recording every catch event.

    Only meaningful for the Figure 18 family (``PTBoundNoChirality``,
    ``PTLandmarkNoChirality``, ``ETExactSizeNoChirality``), whose only
    direction changes are catches.
    """
    records: list[CatchRecord] = []
    for _ in range(rounds):
        if engine.all_terminated:
            break
        before = {
            a.index: (a.memory.vars.get("state"), a.node, a.port)
            for a in engine.agents
            if not a.terminated
        }
        ported = {
            a.index: a.node for a in engine.agents if a.port is not None
        }
        engine.step()
        for agent in engine.agents:
            if agent.index not in before:
                continue
            old_state, old_node, old_port = before[agent.index]
            new_state = agent.memory.vars.get("state")
            if new_state == old_state or new_state not in _CATCH_TARGETS:
                continue
            if old_port is not None:
                continue  # a blocked agent cannot be the catcher
            caught = [
                i for i, node in ported.items()
                if node == old_node and i != agent.index
            ]
            if len(caught) != 1:
                continue  # not a clean catch configuration (e.g. meeting)
            direction = _moving_direction(old_state, agent)
            if direction is None:
                continue
            records.append(
                CatchRecord(
                    round=engine.round_no - 1,
                    catcher=agent.index,
                    caught=caught[0],
                    direction=direction,
                )
            )
    return records


def successor_violations(records: list[CatchRecord]) -> list[str]:
    """Check the proof's successor rule over an observed catch sequence.

    After event ``Dxy`` the next catch must (a) be in the opposite global
    direction and (b) have ``x`` as catcher or caught participant or
    involve the third agent as catcher — concretely, the paper's rule:
    ``Dxy`` is followed by ``D'xz`` or ``D'zx`` where ``z`` is the third
    agent.  Returns human-readable violations (empty list = clean run).
    """
    problems: list[str] = []
    for prev, curr in zip(records, records[1:]):
        if curr.direction is prev.direction:
            problems.append(
                f"round {curr.round}: direction did not alternate after "
                f"round {prev.round}"
            )
        expected_pair = {prev.catcher, 3 - prev.catcher - prev.caught}
        if {curr.catcher, curr.caught} != expected_pair:
            problems.append(
                f"round {curr.round}: participants {curr.catcher, curr.caught} "
                f"are not the previous catcher with the third agent "
                f"(expected {tuple(sorted(expected_pair))})"
            )
    return problems
