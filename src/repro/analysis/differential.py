"""Differential-testing harness: BatchCore vs the scalar simulation cores.

The vectorized batch engine (:mod:`repro.core.batch`) re-implements the
round loop — FSYNC and the mask-replayable SSYNC schedulers, all three
transports, every registry algorithm — as whole-array operations, so
its correctness argument is *empirical by construction*: every claim of equivalence is backed by
executing the same cells through :class:`~repro.core.batch.BatchCore`,
``SimulationCore(optimized=True)`` and the reference path
(``optimized=False``) and comparing everything observable.  This module
is that harness, packaged once so the equivalence suite, the golden-
trace replay and ad-hoc sweeps all share one definition of "agrees":

* :func:`result_payload` — the canonical comparable essence of a
  :class:`~repro.core.results.RunResult` (exactly the ``result`` block
  the golden ring-trace digests pin, so "payload-equal" here means
  "digest-equal" there);
* :func:`differential_cells` — run a batch composition through all
  paths and collect :class:`Divergence` records (empty list = proven
  equivalent for those cells);
* :func:`lockstep_divergence` — step one cell round-by-round through
  both cores comparing full per-agent state (position, port, every
  memory counter), catching divergences that cancel out by run end.

Run ad hoc::

    PYTHONPATH=src python -m repro.analysis.differential
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..campaigns.registry import build_cell_engine
from ..campaigns.spec import CellConfig
from ..core.batch import BatchCore, batch_ineligible_reason, run_batch_cells
from ..core.errors import ConfigurationError
from ..core.results import RunResult

#: The two scalar paths every batch result is compared against.
SCALAR_PATHS = ("optimized", "reference")


def result_payload(result: RunResult) -> dict[str, Any]:
    """The comparable essence of one run outcome.

    Deliberately the same shape as the ``result`` block of
    :func:`tests.core.golden_traces.run_digest`'s payload: rounds, the
    exploration outcome, the visited set, the halt reason and the full
    per-agent record.  Two runs with equal payloads are
    indistinguishable to every consumer of :class:`RunResult` that the
    campaign layer has (metrics, aggregation, reports).
    """
    return {
        "ring_size": result.ring_size,
        "rounds": result.rounds,
        "explored": result.explored,
        "exploration_round": result.exploration_round,
        "visited": sorted(result.visited),
        "halted_reason": result.halted_reason,
        "agents": [[a.index, a.moves, a.terminated, a.termination_round,
                    a.final_node, a.waiting_on_port]
                   for a in result.agents],
    }


def scalar_result(cell: CellConfig, *, optimized: bool = True) -> RunResult:
    """One cell through the scalar core (the campaign executor's path)."""
    engine = build_cell_engine(cell, optimized=optimized)
    return engine.run(
        cell.max_rounds, stop_on_exploration=cell.stop_on_exploration)


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between the batch and a scalar path."""

    cell: CellConfig
    path: str        # "optimized" or "reference"
    field: str       # payload key that differed
    batch_value: Any
    scalar_value: Any

    def __str__(self) -> str:  # readable pytest failure output
        return (f"[{self.cell.algorithm}/{self.cell.adversary} "
                f"n={self.cell.ring_size} k={self.cell.agents} "
                f"seed={self.cell.seed}] vs {self.path}: {self.field} "
                f"batch={self.batch_value!r} scalar={self.scalar_value!r}")


def differential_cells(
    cells: Iterable[CellConfig],
    *,
    paths: Sequence[str] = SCALAR_PATHS,
) -> list[Divergence]:
    """Run a batch composition through every path; collect divergences.

    The cells are executed *as one batch* (mixed sizes/seeds/adversaries,
    including cells that terminate at different rounds — exactly the
    composition a campaign chunk hands :func:`run_batch_cells`), then
    each cell is re-run scalar per requested path and the payloads
    compared field by field.  An empty return is the equivalence proof
    for this composition.
    """
    cells = list(cells)
    for cell in cells:
        reason = batch_ineligible_reason(cell)
        if reason is not None:
            raise ConfigurationError(
                f"differential harness got a batch-ineligible cell: {reason}")
    batch_results = run_batch_cells(cells)
    divergences: list[Divergence] = []
    for cell, batch_result in zip(cells, batch_results):
        batch_payload = result_payload(batch_result)
        for path in paths:
            scalar_payload = result_payload(
                scalar_result(cell, optimized=(path == "optimized")))
            for key, expected in scalar_payload.items():
                if batch_payload.get(key) != expected:
                    divergences.append(Divergence(
                        cell=cell, path=path, field=key,
                        batch_value=batch_payload.get(key),
                        scalar_value=expected))
    return divergences


def _agent_mismatch(state: dict, engine) -> str | None:
    """Compare one BatchCore debug snapshot against scalar agent state."""
    for agent, snap in zip(engine.agents, state["agents"]):
        mem = agent.memory
        expected = {
            "node": agent.node,
            "port": None if agent.port is None else int(agent.port),
            "terminated": agent.terminated,
            "Ttime": mem.Ttime, "Tsteps": mem.Tsteps,
            "Etime": mem.Etime, "Esteps": mem.Esteps,
            "Btime": mem.Btime,
            "moved": mem.moved, "failed": mem.failed,
            "net": mem.net, "min_net": mem.min_net, "max_net": mem.max_net,
            "size": mem.size, "Ntime": mem.Ntime,
        }
        for key, value in expected.items():
            if snap[key] != value:
                return (f"agent {agent.index} {key}: "
                        f"batch={snap[key]!r} scalar={value!r}")
    if state["visited_count"] != len(engine.visited):
        return (f"visited_count: batch={state['visited_count']} "
                f"scalar={len(engine.visited)}")
    return None


def lockstep_divergence(cell: CellConfig) -> str | None:
    """Step one cell through both cores in lockstep; ``None`` = identical.

    Stronger than :func:`differential_cells`: the comparison happens
    after *every* round, over the agents' full observable state, so two
    bugs that cancel out by run end still show up.  The scalar side is
    stepped exactly as :meth:`BatchCore.advance` halts — the halt-check
    mirroring is itself under test here.
    """
    core = BatchCore([cell])
    engine = build_cell_engine(cell, optimized=True)
    mismatch = _agent_mismatch(core.debug_state(0), engine)
    if mismatch is not None:
        return f"round 0 (initial): {mismatch}"
    rounds = 0
    while core.advance():
        engine.step()
        rounds += 1
        mismatch = _agent_mismatch(core.debug_state(0), engine)
        if mismatch is not None:
            return f"round {rounds}: {mismatch}"
    batch_payload = result_payload(core.results()[0])
    scalar_payload = result_payload(
        scalar_result(cell, optimized=True))
    for key, expected in scalar_payload.items():
        if batch_payload.get(key) != expected:
            return (f"final result {key}: batch={batch_payload.get(key)!r} "
                    f"scalar={expected!r}")
    return None


def _demo_cells() -> list[CellConfig]:
    """A small mixed composition for the module's __main__ smoke run."""
    cells = []
    for seed in range(4):
        cells.append(CellConfig(
            algorithm="known-bound", ring_size=8 + seed, agents=2,
            max_rounds=80, seed=seed, adversary="random", transport="ns"))
        cells.append(CellConfig(
            algorithm="unconscious", ring_size=9, agents=3, max_rounds=60,
            seed=seed, adversary="random", transport="ns",
            stop_on_exploration=True, placement="offset-spread"))
    return cells


if __name__ == "__main__":  # pragma: no cover - manual smoke entry
    found = differential_cells(_demo_cells())
    for div in found:
        print(div)
    print(f"{len(_demo_cells())} cells x {len(SCALAR_PATHS)} paths: "
          f"{len(found)} divergences")
    raise SystemExit(1 if found else 0)
