"""ASCII rendering of ring configurations and run timelines.

Offline-friendly visualisation: a one-line picture of the ring per round,
showing node occupancy, port waiting, the landmark and the missing edge.
Used by the CLI (``python -m repro watch``) and the examples.

Legend::

    [2]   two agents in the node interior
    [1*]  one agent in the node interior, node is the landmark
    <     an agent waiting on the node's minus port (toward lower index)
    >     an agent waiting on the node's plus port
    / /   the edge to the right of the node is missing this round
    ---   the edge is present
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.directions import GlobalDirection

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


def render_configuration(engine: "Engine") -> str:
    """One-line snapshot of the current configuration."""
    ring = engine.ring
    cells: list[str] = []
    for node in range(ring.size):
        interior = sum(
            1 for a in engine.agents if a.node == node and a.port is None
        )
        on_minus = any(
            a.node == node and a.port is GlobalDirection.MINUS for a in engine.agents
        )
        on_plus = any(
            a.node == node and a.port is GlobalDirection.PLUS for a in engine.agents
        )
        mark = "*" if ring.is_landmark(node) else ""
        body = f"{interior if interior else '.'}{mark}"
        cell = f"{'<' if on_minus else ' '}[{body}]{'>' if on_plus else ' '}"
        edge = " / " if engine.missing_edge == node else "---"
        cells.append(cell + edge)
    return "".join(cells)


def render_header(engine: "Engine") -> str:
    """Column header naming the nodes, aligned with the cells."""
    parts = [f"  v{node:<3}   " for node in range(engine.ring.size)]
    header = "".join(p[: 9] for p in parts)
    return header


def watch(engine: "Engine", rounds: int, *, printer=print) -> None:
    """Step the engine, printing one configuration line per round."""
    printer(render_header(engine))
    printer(f"r={engine.round_no:>4}  " + render_configuration(engine))
    for _ in range(rounds):
        if engine.all_terminated:
            break
        engine.step()
        printer(f"r={engine.round_no:>4}  " + render_configuration(engine))
    terminated = [a.index for a in engine.agents if a.terminated]
    printer(
        f"explored={engine.exploration_complete} "
        f"visited={len(engine.visited)}/{engine.ring.size} "
        f"terminated={terminated}"
    )
