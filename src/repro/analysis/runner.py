"""In-process parameter sweeps over live engine factories.

The benches regenerate each table/figure by sweeping the ring size (and
seeds) and summarising cost; this module holds the shared machinery so a
bench is a declarative description, not a loop nest.

This is the *closure-based* sweep path: factories are arbitrary Python
callables, so sweeps run in-process and cannot be parallelised or
resumed.  For declarative, multiprocessing-backed, resumable sweeps use
:mod:`repro.campaigns`; both paths reduce through the same statistics
(:func:`repro.campaigns.aggregate.summarize_results`), so a mean here
means exactly what a campaign table row reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..campaigns.aggregate import summarize_results
from ..core.engine import Engine
from ..core.results import RunResult

#: Builds a ready-to-run engine for one ring size and seed.
EngineFactory = Callable[[int, int], Engine]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated measurements for one swept ring size."""

    n: int
    runs: int
    mean_rounds: float
    max_rounds: int
    mean_moves: float
    max_moves: int
    mean_exploration_round: float | None
    all_explored: bool
    results: tuple[RunResult, ...]

    def __str__(self) -> str:
        explored = (
            f"explored@~{self.mean_exploration_round:.1f}"
            if self.mean_exploration_round is not None
            else "NOT always explored"
        )
        return (
            f"n={self.n:>4} runs={self.runs} rounds~{self.mean_rounds:.1f} "
            f"(max {self.max_rounds}) moves~{self.mean_moves:.1f} "
            f"(max {self.max_moves}) {explored}"
        )


def average_case(
    factory: EngineFactory,
    n: int,
    *,
    seeds: Sequence[int],
    max_rounds: int,
    stop_on_exploration: bool = False,
    stop_when: Callable[[Engine], bool] | None = None,
) -> SweepPoint:
    """Run one ring size across seeds and aggregate."""
    results: list[RunResult] = []
    for seed in seeds:
        engine = factory(n, seed)
        results.append(
            engine.run(
                max_rounds,
                stop_on_exploration=stop_on_exploration,
                stop_when=stop_when,
            )
        )
    stats = summarize_results(results)
    return SweepPoint(
        n=n,
        runs=stats.runs,
        mean_rounds=stats.mean_rounds,
        max_rounds=stats.max_rounds,
        mean_moves=stats.mean_moves,
        max_moves=stats.max_moves,
        mean_exploration_round=stats.mean_exploration_round,
        all_explored=stats.all_explored,
        results=tuple(results),
    )


def sweep(
    factory: EngineFactory,
    sizes: Sequence[int],
    *,
    seeds: Sequence[int] = (0,),
    max_rounds_for: Callable[[int], int],
    stop_on_exploration: bool = False,
    stop_when: Callable[[Engine], bool] | None = None,
) -> list[SweepPoint]:
    """Sweep ring sizes; one :class:`SweepPoint` per size."""
    return [
        average_case(
            factory,
            n,
            seeds=seeds,
            max_rounds=max_rounds_for(n),
            stop_on_exploration=stop_on_exploration,
            stop_when=stop_when,
        )
        for n in sizes
    ]
