"""Parameter sweeps and averaged experiments.

The benches regenerate each table/figure by sweeping the ring size (and
seeds) and summarising cost; this module holds the shared machinery so a
bench is a declarative description, not a loop nest.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.engine import Engine
from ..core.results import RunResult

#: Builds a ready-to-run engine for one ring size and seed.
EngineFactory = Callable[[int, int], Engine]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated measurements for one swept ring size."""

    n: int
    runs: int
    mean_rounds: float
    max_rounds: int
    mean_moves: float
    max_moves: int
    mean_exploration_round: float | None
    all_explored: bool
    results: tuple[RunResult, ...]

    def __str__(self) -> str:
        explored = (
            f"explored@~{self.mean_exploration_round:.1f}"
            if self.mean_exploration_round is not None
            else "NOT always explored"
        )
        return (
            f"n={self.n:>4} runs={self.runs} rounds~{self.mean_rounds:.1f} "
            f"(max {self.max_rounds}) moves~{self.mean_moves:.1f} "
            f"(max {self.max_moves}) {explored}"
        )


def average_case(
    factory: EngineFactory,
    n: int,
    *,
    seeds: Sequence[int],
    max_rounds: int,
    stop_on_exploration: bool = False,
    stop_when: Callable[[Engine], bool] | None = None,
) -> SweepPoint:
    """Run one ring size across seeds and aggregate."""
    results: list[RunResult] = []
    for seed in seeds:
        engine = factory(n, seed)
        results.append(
            engine.run(
                max_rounds,
                stop_on_exploration=stop_on_exploration,
                stop_when=stop_when,
            )
        )
    exploration_rounds = [
        r.exploration_round for r in results if r.exploration_round is not None
    ]
    return SweepPoint(
        n=n,
        runs=len(results),
        mean_rounds=statistics.fmean(r.rounds for r in results),
        max_rounds=max(r.rounds for r in results),
        mean_moves=statistics.fmean(r.total_moves for r in results),
        max_moves=max(r.total_moves for r in results),
        mean_exploration_round=(
            statistics.fmean(exploration_rounds)
            if len(exploration_rounds) == len(results)
            else None
        ),
        all_explored=all(r.explored for r in results),
        results=tuple(results),
    )


def sweep(
    factory: EngineFactory,
    sizes: Sequence[int],
    *,
    seeds: Sequence[int] = (0,),
    max_rounds_for: Callable[[int], int],
    stop_on_exploration: bool = False,
    stop_when: Callable[[Engine], bool] | None = None,
) -> list[SweepPoint]:
    """Sweep ring sizes; one :class:`SweepPoint` per size."""
    return [
        average_case(
            factory,
            n,
            seeds=seeds,
            max_rounds=max_rounds_for(n),
            stop_on_exploration=stop_on_exploration,
            stop_when=stop_when,
        )
        for n in sizes
    ]
