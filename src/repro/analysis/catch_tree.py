"""The Catch Tree of Theorem 20 (paper, Figure 22 and Claims 4-5).

The termination proof of ``ETBoundNoChirality`` analyses the sequence of
*catch events* in a hypothetical never-terminating execution.  An event
``Dxy`` means "agent x, moving in direction D, catches agent y" (and
reverses).  The proof establishes:

* **successor rule** — ``Dxy`` can only be followed by ``D'xz`` or
  ``D'zx``, where ``D'`` is the opposite direction and ``z`` the third
  agent (only same-direction agents can catch each other);
* **bounded loops** (the dashed edges of Figure 22) — the 2-cycle
  ``Dxy : D'xz : Dxy`` (x bouncing between two stationary agents) cannot
  repeat forever under the ET fairness condition;
* **forbidden pairs** (Claim 5, the red edges of Figure 22) —
  ``Lac:Rba``, ``Lba:Rcb``, ``Lcb:Rac``, ``Rbc:Lab``, ``Rca:Lbc``,
  ``Rab:Lca`` are geometrically impossible once the agents' ranges are
  pairwise-disjoint-complement (Claims 3-4).

This module makes that case analysis executable: build the successor
graph, delete the forbidden edges, and check that *every remaining cycle
is a same-catcher 2-cycle* — i.e. the only way to avoid termination is a
bounded loop, which ET forbids.  That is exactly the shape of Figure 22,
verified exhaustively instead of by inspecting the drawn trees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

from ..core.directions import LEFT, RIGHT, LocalDirection

AGENTS = ("a", "b", "c")


@dataclass(frozen=True)
class CatchEvent:
    """``Dxy``: ``catcher`` moving ``direction`` catches ``caught``."""

    direction: LocalDirection
    catcher: str
    caught: str

    def __post_init__(self) -> None:
        if self.catcher not in AGENTS or self.caught not in AGENTS:
            raise ValueError("agents are named a, b, c")
        if self.catcher == self.caught:
            raise ValueError("an agent cannot catch itself")

    @property
    def third(self) -> str:
        """The agent not involved in this event."""
        return next(x for x in AGENTS if x not in (self.catcher, self.caught))

    def successors(self) -> tuple["CatchEvent", "CatchEvent"]:
        """The two events that may follow (the proof's successor rule)."""
        flipped = self.direction.opposite
        z = self.third
        return (
            CatchEvent(flipped, self.catcher, z),
            CatchEvent(flipped, z, self.catcher),
        )

    def label(self) -> str:
        d = "L" if self.direction is LEFT else "R"
        return f"{d}{self.catcher}{self.caught}"

    def __str__(self) -> str:
        return self.label()


def _event(label: str) -> CatchEvent:
    direction = LEFT if label[0] == "L" else RIGHT
    return CatchEvent(direction, label[1], label[2])


#: Claim 5: the six forbidden consecutive pairs (red edges of Figure 22).
FORBIDDEN_SEQUENCES: frozenset[tuple[CatchEvent, CatchEvent]] = frozenset(
    (_event(first), _event(second))
    for first, second in (
        ("Lac", "Rba"),
        ("Lba", "Rcb"),
        ("Lcb", "Rac"),
        ("Rbc", "Lab"),
        ("Rca", "Lbc"),
        ("Rab", "Lca"),
    )
)


def all_events() -> list[CatchEvent]:
    """All 12 possible catch events."""
    return [
        CatchEvent(direction, x, y)
        for direction in (LEFT, RIGHT)
        for x, y in itertools.permutations(AGENTS, 2)
    ]


class CatchTree:
    """The successor graph with Claim 5's edges removed."""

    def __init__(self) -> None:
        self.events = all_events()
        self.edges: list[tuple[CatchEvent, CatchEvent]] = [
            (event, succ)
            for event in self.events
            for succ in event.successors()
            if (event, succ) not in FORBIDDEN_SEQUENCES
        ]

    def to_networkx(self):
        """The graph as a ``networkx.DiGraph`` over event labels."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(e.label() for e in self.events)
        graph.add_edges_from((u.label(), v.label()) for u, v in self.edges)
        return graph

    def simple_cycles(self) -> list[list[str]]:
        import networkx as nx

        return list(nx.simple_cycles(self.to_networkx()))

    def is_bounded_loop(self, cycle: Iterable[str]) -> bool:
        """A same-catcher 2-cycle — the bounded ``Dxy : D'xz : Dxy`` loop."""
        labels = list(cycle)
        if len(labels) != 2:
            return False
        first, second = labels
        return (
            first[1] == second[1]  # same catcher
            and first[0] != second[0]  # opposite directions
        )

    def unbounded_cycles(self) -> list[list[str]]:
        """Cycles that are not bounded loops — the theorem needs none."""
        return [c for c in self.simple_cycles() if not self.is_bounded_loop(c)]

    def paths_from(self, root: str, depth: int) -> list[list[str]]:
        """All successor paths of a given length from a root (Figure 22)."""
        graph = {u.label(): [] for u in self.events}
        for u, v in self.edges:
            graph[u.label()].append(v.label())
        paths = [[root]]
        for _ in range(depth):
            paths = [p + [succ] for p in paths for succ in graph[p[-1]]]
        return paths

    def render(self, root: str, depth: int = 3) -> str:
        """Text rendering of the catch tree rooted at ``root`` (Figure 22)."""
        graph = {u.label(): [] for u in self.events}
        for u, v in self.edges:
            graph[u.label()].append(v.label())
        lines: list[str] = []

        def walk(label: str, prefix: str, remaining: int, seen: tuple[str, ...]) -> None:
            marker = " (loop)" if label in seen else ""
            lines.append(f"{prefix}{label}{marker}")
            if remaining == 0 or marker:
                return
            for succ in graph[label]:
                walk(succ, prefix + "  ", remaining - 1, seen + (label,))

        walk(root, "", depth, ())
        return "\n".join(lines)
