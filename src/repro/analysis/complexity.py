"""Empirical complexity fitting for the paper's asymptotic claims.

The evaluation of a theory paper is its complexity map; reproducing it
means checking measured cost curves have the claimed *shape*.  We fit each
measured series against the candidate growth models that appear in the
paper — ``n``, ``n log n``, ``n^2`` (plus a constant term) — by
least-squares and report which model explains the data best.

A model "wins" when it has the lowest residual; the benches additionally
report the R² of the paper's claimed model so a reader can see how clean
the fit is.  numpy is an optional dependency used only here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

#: Candidate growth models: name -> basis function of n.
MODELS: dict[str, Callable[[float], float]] = {
    "constant": lambda n: 1.0,
    "linear": lambda n: n,
    "nlogn": lambda n: n * math.log2(max(n, 2.0)),
    "quadratic": lambda n: n * n,
}


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of ``y ~ a * model(n) + b``."""

    model: str
    coefficient: float
    intercept: float
    r_squared: float

    def predict(self, n: float) -> float:
        return self.coefficient * MODELS[self.model](n) + self.intercept

    def __str__(self) -> str:
        return (
            f"{self.model}: y = {self.coefficient:.4g} * f(n) + {self.intercept:.4g}"
            f"  (R^2 = {self.r_squared:.4f})"
        )


def fit_model(xs: Sequence[float], ys: Sequence[float], model: str) -> FitResult:
    """Least-squares fit of one named model (requires >= 2 points)."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; choose from {sorted(MODELS)}")
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length series with at least 2 points")
    import numpy as np

    basis = np.array([MODELS[model](x) for x in xs], dtype=float)
    design = np.column_stack([basis, np.ones_like(basis)])
    target = np.array(ys, dtype=float)
    (coef, intercept), residuals, _, _ = np.linalg.lstsq(design, target, rcond=None)
    predictions = design @ np.array([coef, intercept])
    ss_res = float(np.sum((target - predictions) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(model=model, coefficient=float(coef), intercept=float(intercept), r_squared=r2)


#: The growth shapes the paper's claims are checked against.
DEFAULT_SHAPE_MODELS = ("linear", "nlogn", "quadratic")


@dataclass(frozen=True)
class ShapeProfile:
    """Every candidate fit for one measured series, plus the winner.

    The unit of a ``campaign report --fit`` verdict: which growth model
    best explains a series, and how decisively (the runner-up R² is part
    of the story — a linear win at R²=0.999 over quadratic at R²=0.998
    on three points is not a strong claim).
    """

    fits: tuple[FitResult, ...]

    def __post_init__(self) -> None:
        if not self.fits:
            raise ValueError("a shape profile needs at least one fit")

    @property
    def best(self) -> FitResult:
        return max(self.fits, key=lambda fit: fit.r_squared)

    def r_squared(self, model: str) -> float:
        for fit in self.fits:
            if fit.model == model:
                return fit.r_squared
        raise ValueError(f"model {model!r} was not fitted "
                         f"(have {[f.model for f in self.fits]})")

    def verdict(self) -> str:
        """One-line summary: winner first, every candidate's R² after."""
        scores = ", ".join(
            f"{fit.model}={fit.r_squared:.4f}"
            for fit in sorted(self.fits, key=lambda f: -f.r_squared)
        )
        return f"{self.best.model} (R^2: {scores})"

    def __str__(self) -> str:
        return self.verdict()


def fit_profile(
    xs: Sequence[float],
    ys: Sequence[float],
    models: Sequence[str] = DEFAULT_SHAPE_MODELS,
) -> ShapeProfile:
    """Fit every candidate model to one series (see :func:`fit_model`)."""
    return ShapeProfile(fits=tuple(fit_model(xs, ys, m) for m in models))


def best_fit(
    xs: Sequence[float],
    ys: Sequence[float],
    models: Sequence[str] = DEFAULT_SHAPE_MODELS,
) -> FitResult:
    """The candidate model with the highest R² on the series.

    Note the usual caveat: richer models always fit at least as well on
    *interpolation*; the candidates here grow differently enough (and the
    sweeps span a 4-8x range of ``n``) that the distinction is meaningful.
    Benches also print the claimed model's R² explicitly.
    """
    return fit_profile(xs, ys, models).best


def doubling_ratios(xs: Sequence[float], ys: Sequence[float]) -> list[float]:
    """``y(2n)/y(n)`` for consecutive doublings present in the sweep.

    A scale-free signal: ~2 for linear growth, ~4 for quadratic, ~2·(1+o(1))
    for n log n.  Used by the benches to report shape without curve fitting.
    """
    by_x = dict(zip(xs, ys))
    ratios = []
    for x in xs:
        if 2 * x in by_x and by_x[x] > 0:
            ratios.append(by_x[2 * x] / by_x[x])
    return ratios
