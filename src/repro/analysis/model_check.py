"""Exhaustive adversary search on small rings (mini model checking).

The paper's conclusion calls for machine-checked analyses of dynamic-graph
algorithms, "since ... there is the additional non trivial component of
considering all possible dynamic graphs".  For small rings this library can
do exactly that: enumerate *every* 1-interval-connected edge-removal
schedule against a deterministic algorithm and take the worst case.

The search space stays finite thanks to a soundness observation: under
FSYNC (no passive transport), removing an edge that no agent attempts to
cross this round produces exactly the same configuration as removing
nothing.  Hence per round the adversary has at most
``1 + #(distinct edges being attempted)`` *effective* choices — at most
three with two agents — and branches that complete exploration are pruned
immediately.  Within those rules the enumeration is exhaustive: the
returned worst case is the true worst case over all adversaries (for the
engine's fixed port tie-break policy; co-located same-orientation starts
add a tie-break choice the search does not branch on).

``verify_theorem3`` uses this to machine-check Theorem 3 on concrete
sizes: against *every* adversary, ``KnownNNoChirality`` has explored the
ring by round ``3n - 6``, and some adversary (Figure 2's) forces exactly
``3n - 6``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


class ForcedEdgeAdversary:
    """The search injects the missing edge for each explored branch."""

    def __init__(self) -> None:
        self.edge: int | None = None

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002
        self.edge = None

    def choose_missing_edge(self, engine: "Engine") -> int | None:  # noqa: ARG002
        return self.edge


def effective_edge_choices(engine: "Engine") -> list[int | None]:
    """The adversary's non-equivalent options for the coming round.

    ``None`` plus every distinct edge some live agent would attempt to
    cross if activated now (any other removal is behaviourally identical
    to ``None`` under FSYNC).
    """
    choices: list[int | None] = [None]
    seen: set[int] = set()
    for agent in engine.agents:
        if agent.terminated:
            continue
        edge = engine.peek_intended_edge(agent.index)
        if edge is not None and edge not in seen:
            seen.add(edge)
            choices.append(edge)
    return choices


@dataclass
class SearchResult:
    """Outcome of an exhaustive adversary search."""

    worst_value: int
    witness: tuple[int | None, ...]  # edge schedule achieving the worst case
    branches_explored: int
    all_succeeded: bool


def exhaustive_worst_case(
    engine_factory: Callable[[], "Engine"],
    *,
    depth: int,
    done: Callable[["Engine"], bool],
    value: Callable[["Engine"], int],
) -> SearchResult:
    """DFS over all effective adversary schedules up to ``depth`` rounds.

    ``done(engine)`` prunes a branch (its ``value(engine)`` is recorded);
    a branch still not done at ``depth`` marks ``all_succeeded = False``
    and contributes ``depth + 1`` as a pessimistic value.

    The ``engine_factory`` must build the engine with a
    :class:`ForcedEdgeAdversary` (``verify_theorem3`` shows the pattern).
    """
    probe = engine_factory()
    if not isinstance(probe.adversary, ForcedEdgeAdversary):
        raise ConfigurationError(
            "exhaustive search requires the engine to use ForcedEdgeAdversary"
        )

    stats = {"branches": 0, "worst": -1, "witness": (), "ok": True}

    def dfs(engine: "Engine", schedule: tuple[int | None, ...]) -> None:
        if done(engine):
            stats["branches"] += 1
            v = value(engine)
            if v > stats["worst"]:
                stats["worst"] = v
                stats["witness"] = schedule
            return
        if len(schedule) >= depth:
            stats["branches"] += 1
            stats["ok"] = False
            v = depth + 1
            if v > stats["worst"]:
                stats["worst"] = v
                stats["witness"] = schedule
            return
        for choice in effective_edge_choices(engine):
            branch = copy.deepcopy(engine)
            branch.adversary.edge = choice
            branch.step()
            dfs(branch, schedule + (choice,))

    dfs(probe, ())
    return SearchResult(
        worst_value=stats["worst"],
        witness=stats["witness"],
        branches_explored=stats["branches"],
        all_succeeded=stats["ok"],
    )


def verify_theorem3(
    n: int, positions: tuple[int, int] | None = None
) -> SearchResult:
    """Machine-check Theorem 3's exploration bound on a concrete size.

    Explores every effective adversary schedule against
    ``KnownNNoChirality`` with ``N = n`` and returns the worst exploration
    time.  ``all_succeeded`` asserts that *every* adversary is defeated by
    round ``3n - 6``; the paper predicts ``worst_value == 3n - 6`` exactly
    when the starts allow the Figure 2 squeeze.
    """
    from ..algorithms.fsync import KnownUpperBound
    from ..api import build_engine

    if positions is None:
        positions = (0, 1)

    def factory() -> "Engine":
        return build_engine(
            KnownUpperBound(bound=n),
            ring_size=n,
            positions=list(positions),
            adversary=ForcedEdgeAdversary(),
        )

    return exhaustive_worst_case(
        factory,
        depth=3 * n - 6,
        done=lambda e: e.exploration_complete,
        value=lambda e: e.exploration_round if e.exploration_round is not None else 0,
    )


def verify_theorem5(
    n: int, positions: tuple[int, int] | None = None, depth: int | None = None
) -> SearchResult:
    """Machine-check Theorem 5's O(n) exploration on a concrete size.

    Explores every effective adversary schedule against ``Unconscious
    Exploration`` and returns the worst exploration time.  The paper only
    claims O(n); the exhaustive worst cases measured here (e.g. 14 for
    ``n = 6``, 17 for ``n = 7``) put the small-``n`` constant just under 3.
    """
    from ..algorithms.fsync import UnconsciousExploration
    from ..api import build_engine

    if positions is None:
        positions = (0, 1)
    if depth is None:
        depth = 12 * n  # far above the observed ~3n worst cases

    def factory() -> "Engine":
        return build_engine(
            UnconsciousExploration(),
            ring_size=n,
            positions=list(positions),
            adversary=ForcedEdgeAdversary(),
        )

    return exhaustive_worst_case(
        factory,
        depth=depth,
        done=lambda e: e.exploration_complete,
        value=lambda e: e.exploration_round if e.exploration_round is not None else 0,
    )
