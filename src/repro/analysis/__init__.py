"""Analysis tooling: safety checks, sweeps, complexity fits, Catch Tree."""

from .checker import check_safety, classify_runs
from .complexity import FitResult, best_fit, fit_model, MODELS
from .catch_log import CatchRecord, log_catches, successor_violations
from .catch_tree import CatchEvent, CatchTree, FORBIDDEN_SEQUENCES
from .model_check import (
    ForcedEdgeAdversary,
    SearchResult,
    effective_edge_choices,
    exhaustive_worst_case,
    verify_theorem3,
    verify_theorem5,
)
from .runner import average_case, sweep, SweepPoint

__all__ = [
    "CatchEvent",
    "CatchRecord",
    "CatchTree",
    "FORBIDDEN_SEQUENCES",
    "FitResult",
    "ForcedEdgeAdversary",
    "MODELS",
    "SearchResult",
    "SweepPoint",
    "average_case",
    "best_fit",
    "check_safety",
    "classify_runs",
    "effective_edge_choices",
    "exhaustive_worst_case",
    "fit_model",
    "log_catches",
    "successor_violations",
    "sweep",
    "verify_theorem3",
    "verify_theorem5",
]
