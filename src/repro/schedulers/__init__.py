"""Activation schedulers: FSYNC and the SSYNC adversarial variants."""

from .fsync import FsyncScheduler
from .ssync import (
    ETFairScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)

__all__ = [
    "FsyncScheduler",
    "ETFairScheduler",
    "RandomFairScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
]
