"""Semi-synchronous activation schedulers (Section 4).

In SSYNC an adversary picks which non-empty subset of agents is active in
each round, constrained only by fairness: every agent is activated
infinitely often.  The schedulers here are the concrete instantiations the
reproduction uses:

* :class:`RoundRobinScheduler` — activates a sliding window of agents; the
  most adversarial *fair* scheduler we use for liveness experiments.
* :class:`RandomFairScheduler` — each agent flips a coin per round, with a
  starvation cap that force-includes an agent left inactive too long (this
  makes fairness a hard guarantee rather than a probability-1 event).
* :class:`ETFairScheduler` — a wrapper enforcing the Eventual Transport
  simultaneity condition: an agent sleeping on a port whose edge keeps
  being present is eventually activated in a round where the edge is
  present.
* :class:`ScriptedScheduler` — plays back an explicit activation function;
  used by the impossibility constructions.

All randomness comes from a scheduler-owned :class:`random.Random` seeded
at construction, so every simulation is reproducible.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


def _live(engine: "Engine") -> list[int]:
    return sorted(engine.live_indexes)


class RoundRobinScheduler:
    """Activate ``window`` consecutive agents, rotating one step per round.

    With ``window=1`` exactly one agent acts per round — the slowest fair
    schedule possible, and the one that exposes most SSYNC corner cases.
    """

    def __init__(self, window: int = 1) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self._window = window
        self._offset = 0

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002
        self._offset = 0

    def select(self, engine: "Engine") -> set[int]:
        live = _live(engine)
        if not live:
            return set()
        size = min(self._window, len(live))
        start = self._offset % len(live)
        chosen = {live[(start + k) % len(live)] for k in range(size)}
        self._offset += 1
        return chosen

    def __repr__(self) -> str:
        return f"RoundRobinScheduler(window={self._window})"


class RandomFairScheduler:
    """Independent coin flips with a hard starvation cap.

    Every live agent is activated with probability ``p`` each round; if the
    draw comes up empty one agent is picked uniformly (activation sets must
    be non-empty); and any agent inactive for ``starvation_cap`` consecutive
    rounds is force-included, turning fairness into a guarantee.
    """

    def __init__(self, p: float = 0.5, seed: int = 0, starvation_cap: int = 64) -> None:
        if not 0.0 < p <= 1.0:
            raise ConfigurationError("activation probability must be in (0, 1]")
        if starvation_cap < 1:
            raise ConfigurationError("starvation_cap must be >= 1")
        self._p = p
        self._seed = seed
        self._cap = starvation_cap
        self._rng = random.Random(seed)

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002
        self._rng = random.Random(self._seed)

    def select(self, engine: "Engine") -> set[int]:
        live = _live(engine)
        if not live:
            return set()
        chosen = {i for i in live if self._rng.random() < self._p}
        for agent in engine.agents:
            if not agent.terminated and agent.rounds_since_active >= self._cap:
                chosen.add(agent.index)
        if not chosen:
            chosen = {self._rng.choice(live)}
        return chosen

    def __repr__(self) -> str:
        return f"RandomFairScheduler(p={self._p}, seed={self._seed}, cap={self._cap})"


class ETFairScheduler:
    """Enforce the ET simultaneity condition on top of a base scheduler.

    Section 2.1 (ET): "If an agent is sleeping on a port at round ``t`` and
    the corresponding edge is present infinitely many times, then the agent
    will eventually become active at a round ``t' > t`` when the edge is
    present."  The wrapper counts, per agent, rounds it slept on a port
    while its edge was present; once the count reaches ``patience`` and the
    edge is present again, the agent is force-activated that round.

    The engine consults the adversary *before* the scheduler, so the edge
    choice for the current round is already visible here.
    """

    def __init__(self, base, patience: int = 8) -> None:
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self._base = base
        self._patience = patience
        self._debt: dict[int, int] = {}

    def reset(self, engine: "Engine") -> None:
        self._base.reset(engine)
        self._debt = {agent.index: 0 for agent in engine.agents}

    def select(self, engine: "Engine") -> set[int]:
        chosen = set(self._base.select(engine))
        for agent in engine.agents:
            if agent.terminated or agent.port is None:
                self._debt[agent.index] = 0
                continue
            edge = engine.port_edge(agent)
            # edge_present consults the full missing *set*, so the wrapper
            # also enforces ET fairness on multi-edge-removal topologies.
            present = engine.edge_present(edge)
            if agent.index in chosen:
                if present:
                    self._debt[agent.index] = 0
                continue
            if present:
                debt = self._debt.get(agent.index, 0) + 1
                if debt >= self._patience:
                    chosen.add(agent.index)
                    debt = 0
                self._debt[agent.index] = debt
        return chosen

    def __repr__(self) -> str:
        return f"ETFairScheduler({self._base!r}, patience={self._patience})"


class ScriptedScheduler:
    """Play back an explicit activation policy.

    ``script`` is either a sequence of activation sets (cycled when
    exhausted) or a callable ``engine -> iterable of agent indices``.
    Used by the impossibility constructions, which choreograph activations
    round by round.
    """

    def __init__(
        self,
        script: Sequence[Iterable[int]] | Callable[["Engine"], Iterable[int]],
    ) -> None:
        self._script = script
        self._cursor = 0

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002
        self._cursor = 0

    def select(self, engine: "Engine") -> set[int]:
        if callable(self._script):
            return set(self._script(engine))
        if not self._script:
            raise ConfigurationError("empty activation script")
        chosen = set(self._script[self._cursor % len(self._script)])
        self._cursor += 1
        return chosen

    def __repr__(self) -> str:
        return "ScriptedScheduler(...)"
