"""The fully synchronous scheduler: everyone is active every round."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


class FsyncScheduler:
    """FSYNC (Section 2.1): ``A(t) = A`` for every round ``t``.

    Terminated agents are excluded — they no longer take steps, and the
    engine requires activation sets to contain live agents only.
    """

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002 - uniform interface
        return None

    def select(self, engine: "Engine") -> set[int]:
        # Copy the engine-maintained live set: callers (e.g. wrapping
        # schedulers) own the returned set and may mutate it.
        return set(engine.live_indexes)

    def __repr__(self) -> str:
        return "FsyncScheduler()"
