"""A 1-interval-connected dynamic graph substrate (open-problem support).

Generalises the ring model of the paper to arbitrary port-labelled graphs:

* nodes are anonymous; each node's incident edges appear as locally
  numbered ports ``0 .. deg-1`` (the standard port-labelled model);
* per round the adversary removes any edge set that leaves the footprint
  *connected* (1-interval connectivity, Class 9 of [13]);
* agents are Look-Compute-Move: they see their node's degree, which port
  they occupy (if blocked), how many other agents share the node, and the
  per-port agent occupancy; they request a port, win it in mutual
  exclusion, and cross iff the edge is present.

The round loop mirrors :mod:`repro.core.engine` but drops everything
ring-specific (orientations, the left/right algebra, landmark distance
accounting).  networkx is required.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence

from ..core.errors import AdversaryViolation, ConfigurationError


def ring_graph(n: int):
    """The paper's topology, for cross-checking against the ring engine."""
    import networkx as nx

    return nx.cycle_graph(n)


def path_graph(n: int):
    """The path on ``n`` nodes — the ring minus one edge, permanently.

    The harshest 1-interval-connected relative of the ring: removing any
    further edge disconnects it, so a connectivity-preserving adversary
    is forced to keep every edge alive.
    """
    import networkx as nx

    return nx.path_graph(n)


def cactus_graph(n: int):
    """A cactus on ``n`` nodes: a chain of triangles joined at cut vertices.

    Every edge lies on at most one cycle (the defining cactus property),
    which gives an adversary exactly one removable edge per cycle — the
    natural interpolation between the ring (one cycle) and a tree (none).
    A leftover node (even ``n``) becomes a pendant tail.
    """
    import networkx as nx

    if n < 3:
        raise ConfigurationError("a cactus needs at least 3 nodes")
    graph = nx.Graph()
    graph.add_node(0)
    last, next_id = 0, 1
    while n - graph.number_of_nodes() >= 2:
        a, b = next_id, next_id + 1
        next_id += 2
        graph.add_edges_from([(last, a), (a, b), (b, last)])
        last = b
    if graph.number_of_nodes() < n:
        graph.add_edge(last, next_id)  # pendant tail absorbs the odd node out
    return graph


def torus(rows: int, cols: int):
    """A rows x cols torus (the paper's suggested 'special topology')."""
    import networkx as nx

    graph = nx.grid_2d_graph(rows, cols, periodic=True)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def hypercube(dimension: int):
    """The d-dimensional hypercube."""
    import networkx as nx

    graph = nx.hypercube_graph(dimension)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


@dataclass(frozen=True)
class GraphSnapshot:
    """What a graph agent sees during Look (local frame, anonymous)."""

    degree: int
    on_port: int | None          # port the agent occupies after a failed move
    others_in_node: int
    occupied_ports: frozenset[int]  # ports of this node held by other agents
    moved: bool


#: Interning pool for Look snapshots (same rationale as
#: :func:`repro.core.snapshot.intern_snapshot`: the value space is tiny and
#: snapshots are immutable, so the Look phase reuses frozen instances).
_INTERNED_SNAPSHOTS: dict[tuple, GraphSnapshot] = {}

_EMPTY_PORTS: frozenset[int] = frozenset()


def _intern_graph_snapshot(
    degree: int,
    on_port: int | None,
    others_in_node: int,
    occupied_ports: frozenset[int],
    moved: bool,
) -> GraphSnapshot:
    key = (degree, on_port, others_in_node, occupied_ports, moved)
    snap = _INTERNED_SNAPSHOTS.get(key)
    if snap is None:
        snap = GraphSnapshot(*key)
        _INTERNED_SNAPSHOTS[key] = snap
    return snap


class GraphExplorer(Protocol):
    """Deterministic-or-seeded per-agent exploration strategy."""

    name: str

    def setup(self, memory: dict) -> None: ...

    def choose_port(self, snapshot: GraphSnapshot, memory: dict) -> int | None: ...


class StaticGraphAdversary:
    """No edge is ever removed."""

    def reset(self, engine: "DynamicGraphEngine") -> None:  # noqa: ARG002
        return None

    def missing_edges(self, engine: "DynamicGraphEngine") -> set:
        return set()


class ConnectivityPreservingAdversary:
    """Remove up to ``budget`` random edges, keeping the footprint connected.

    The straightforward generalisation of the ring's one-missing-edge
    adversary: each round it samples removal candidates and drops an edge
    only if the remaining footprint stays connected (checked with
    networkx), up to the per-round budget.
    """

    def __init__(self, budget: int = 1, seed: int = 0) -> None:
        if budget < 0:
            raise ConfigurationError("budget must be >= 0")
        self._budget = budget
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self, engine: "DynamicGraphEngine") -> None:  # noqa: ARG002
        self._rng = random.Random(self._seed)

    def missing_edges(self, engine: "DynamicGraphEngine") -> set:
        import networkx as nx

        graph = engine.graph
        removed: set = set()
        candidates = list(graph.edges())
        self._rng.shuffle(candidates)
        footprint = graph.copy()
        for edge in candidates:
            if len(removed) >= self._budget:
                break
            footprint.remove_edge(*edge)
            if nx.is_connected(footprint):
                removed.add(frozenset(edge))
            else:
                footprint.add_edge(*edge)
        return removed


@dataclass
class GraphAgent:
    index: int
    node: Any
    port: int | None = None
    moved: bool = False
    moves: int = 0
    memory: dict = field(default_factory=dict)


@dataclass
class GraphRunResult:
    nodes: int
    rounds: int
    explored: bool
    exploration_round: int | None
    total_moves: int
    visited: set = field(default_factory=set)


class DynamicGraphEngine:
    """Synchronous Look-Compute-Move on a dynamic port-labelled graph.

    Like the ring engine, the round loop maintains an incremental
    occupancy index (``node -> interior count`` plus ``node -> {port:
    holder}``), so a Look snapshot reads the observer's node in O(degree)
    instead of scanning the whole team; ``optimized=False`` keeps the
    original scan as the executable reference for the equivalence tests.
    """

    def __init__(
        self,
        graph,
        explorer: GraphExplorer,
        positions: Sequence[Any],
        *,
        adversary=None,
        optimized: bool = True,
    ) -> None:
        import networkx as nx

        if not positions:
            raise ConfigurationError("at least one agent is required")
        if not nx.is_connected(graph):
            raise ConfigurationError("the underlying graph must be connected")
        self.graph = graph
        self.explorer = explorer
        self.adversary = adversary if adversary is not None else StaticGraphAdversary()
        self._optimized = bool(optimized)
        # Port labelling: node -> sorted neighbour list; port i = i-th neighbour.
        self.ports = {node: sorted(graph.neighbors(node)) for node in graph.nodes}
        # Occupancy index: interior head-count and per-node held ports.
        self._interior: dict[Any, int] = {}
        self._node_ports: dict[Any, dict[int, int]] = {}
        self.agents = [
            GraphAgent(index=i, node=node) for i, node in enumerate(positions)
        ]
        for agent in self.agents:
            if agent.node not in graph:
                raise ConfigurationError(f"start node {agent.node!r} not in the graph")
            self.explorer.setup(agent.memory)
            self._interior[agent.node] = self._interior.get(agent.node, 0) + 1
        self.round_no = 0
        self.visited = {agent.node for agent in self.agents}
        self.exploration_round = 0 if self.exploration_complete else None
        self.missing: set = set()
        self.adversary.reset(self)

    @property
    def exploration_complete(self) -> bool:
        return len(self.visited) == self.graph.number_of_nodes()

    def degree(self, node) -> int:
        return len(self.ports[node])

    def snapshot_for(self, agent: GraphAgent) -> GraphSnapshot:
        if not self._optimized:
            return self._snapshot_for_scan(agent)
        node = agent.node
        others = self._interior.get(node, 0)
        ports = self._node_ports.get(node)
        own_port = agent.port
        if own_port is None:
            others -= 1  # don't count the observer itself
            occupied = frozenset(ports) if ports else _EMPTY_PORTS
        elif ports and len(ports) > 1:
            occupied = frozenset(p for p in ports if p != own_port)
        else:
            occupied = _EMPTY_PORTS
        return _intern_graph_snapshot(
            len(self.ports[node]), own_port, others, occupied, agent.moved
        )

    def _snapshot_for_scan(self, agent: GraphAgent) -> GraphSnapshot:
        """Reference implementation: O(k) scan over the team (pre-index)."""
        others = 0
        occupied: set[int] = set()
        for other in self.agents:
            if other.index == agent.index or other.node != agent.node:
                continue
            if other.port is None:
                others += 1
            else:
                occupied.add(other.port)
        return GraphSnapshot(
            degree=self.degree(agent.node),
            on_port=agent.port,
            others_in_node=others,
            occupied_ports=frozenset(occupied),
            moved=agent.moved,
        )

    # -- occupancy-index maintenance ------------------------------------

    def _occ_release(self, agent: GraphAgent) -> None:
        """Port -> interior of the same node."""
        node = agent.node
        ports = self._node_ports[node]
        del ports[agent.port]
        if not ports:
            del self._node_ports[node]
        self._interior[node] = self._interior.get(node, 0) + 1

    def _occ_acquire(self, agent: GraphAgent, port: int) -> None:
        """Interior (or another port) -> ``port`` of the same node."""
        node = agent.node
        if agent.port is None:
            count = self._interior[node] - 1
            if count:
                self._interior[node] = count
            else:
                del self._interior[node]
        else:
            ports = self._node_ports[node]
            del ports[agent.port]
        self._node_ports.setdefault(node, {})[port] = agent.index

    def _occ_traverse(self, agent: GraphAgent, target) -> None:
        """Port of ``agent.node`` -> interior of ``target``."""
        node = agent.node
        ports = self._node_ports[node]
        del ports[agent.port]
        if not ports:
            del self._node_ports[node]
        self._interior[target] = self._interior.get(target, 0) + 1

    def _edge_of_port(self, node, port: int):
        neighbors = self.ports[node]
        if not 0 <= port < len(neighbors):
            raise AdversaryViolation(
                f"explorer requested port {port} at a degree-{len(neighbors)} node"
            )
        return frozenset((node, neighbors[port]))

    def step(self) -> None:
        self.missing = {frozenset(e) for e in self.adversary.missing_edges(self)}
        self._check_connectivity()

        # Look + Compute (simultaneous).
        requests: dict[int, int | None] = {}
        for agent in self.agents:
            requests[agent.index] = self.explorer.choose_port(
                self.snapshot_for(agent), agent.memory
            )

        # Port acquisition in mutual exclusion (as in the ring engine:
        # ports occupied at round start stay denied, lowest index wins).
        if self._optimized:
            held = {
                (node, port)
                for node, ports in self._node_ports.items()
                for port in ports
            }
        else:
            held = {
                (agent.node, agent.port)
                for agent in self.agents
                if agent.port is not None
            }
        movers: list[GraphAgent] = []
        claims: dict[tuple, int] = {}
        for agent in self.agents:
            port = requests[agent.index]
            agent.moved = False
            if port is None:
                if agent.port is not None:
                    self._occ_release(agent)
                agent.port = None  # a resting agent steps back into the node
                continue
            key = (agent.node, port)
            if agent.port == port:
                movers.append(agent)
            elif key in held or claims.get(key, agent.index) != agent.index:
                continue  # denied
            else:
                claims[key] = agent.index
                self._occ_acquire(agent, port)
                agent.port = port
                movers.append(agent)

        # Move.
        for agent in movers:
            assert agent.port is not None
            edge = self._edge_of_port(agent.node, agent.port)
            if edge in self.missing:
                continue  # blocked: stays on the port
            target = self.ports[agent.node][agent.port]
            self._occ_traverse(agent, target)
            agent.node = target
            agent.port = None
            agent.moved = True
            agent.moves += 1
            if target not in self.visited:
                self.visited.add(target)
                if self.exploration_complete and self.exploration_round is None:
                    self.exploration_round = self.round_no + 1
        self.round_no += 1

    def run(self, max_rounds: int, *, stop_on_exploration: bool = True) -> GraphRunResult:
        for _ in range(max_rounds):
            if stop_on_exploration and self.exploration_complete:
                break
            self.step()
        return GraphRunResult(
            nodes=self.graph.number_of_nodes(),
            rounds=self.round_no,
            explored=self.exploration_complete,
            exploration_round=self.exploration_round,
            total_moves=sum(agent.moves for agent in self.agents),
            visited=set(self.visited),
        )

    def _check_connectivity(self) -> None:
        import networkx as nx

        if not self.missing:
            return
        footprint = self.graph.copy()
        for edge in self.missing:
            footprint.remove_edge(*tuple(edge))
        if not nx.is_connected(footprint):
            raise AdversaryViolation(
                "adversary disconnected the footprint (1-interval connectivity)"
            )
