"""1-interval-connected dynamic graphs on the unified simulation core.

Generalises the ring model of the paper to arbitrary port-labelled graphs:

* nodes are anonymous; each node's incident edges appear as locally
  numbered ports ``0 .. deg-1`` (the standard port-labelled model);
* per round the adversary removes any edge set that leaves the footprint
  *connected* (1-interval connectivity, Class 9 of [13]);
* agents are Look-Compute-Move: they see their node's degree, which port
  they occupy (if blocked), how many other agents share the node, and the
  per-port agent occupancy; they request a port, win it in mutual
  exclusion, and cross iff the edge is present.

There is no graph-specific round loop: :class:`DynamicGraphEngine` is a
thin facade over :class:`repro.core.sim.SimulationCore` (the same core
the ring engine runs on), wired through :class:`GraphTopology` (structure
+ Look semantics) and :class:`ExplorerAlgorithm` (adapts the explorer
protocol to the core's Algorithm protocol).  That buys every topology the
full ring machinery for free: FSYNC/SSYNC schedulers, the NS/PT/ET
transport models, explicit termination, tracing, the occupancy index, the
peek cache (so look-ahead adversaries like
:class:`~repro.adversary.blocking.BlockAgentAdversary` work here too) and
the ``optimized=False`` reference Look path.  networkx is required.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Protocol, Sequence

from ..core.actions import Action, ENTER_NODE, move_to_port
from ..core.errors import AdversaryViolation, ConfigurationError
from ..core.memory import AgentMemory
from ..core.sim import SimulationCore, TransportModel


def ring_graph(n: int):
    """The paper's topology, for cross-checking against the ring engine."""
    import networkx as nx

    return nx.cycle_graph(n)


def path_graph(n: int):
    """The path on ``n`` nodes — the ring minus one edge, permanently.

    The harshest 1-interval-connected relative of the ring: removing any
    further edge disconnects it, so a connectivity-preserving adversary
    is forced to keep every edge alive.
    """
    import networkx as nx

    return nx.path_graph(n)


def cactus_graph(n: int):
    """A cactus on ``n`` nodes: a chain of triangles joined at cut vertices.

    Every edge lies on at most one cycle (the defining cactus property),
    which gives an adversary exactly one removable edge per cycle — the
    natural interpolation between the ring (one cycle) and a tree (none).
    A leftover node (even ``n``) becomes a pendant tail.
    """
    import networkx as nx

    if n < 3:
        raise ConfigurationError("a cactus needs at least 3 nodes")
    graph = nx.Graph()
    graph.add_node(0)
    last, next_id = 0, 1
    while n - graph.number_of_nodes() >= 2:
        a, b = next_id, next_id + 1
        next_id += 2
        graph.add_edges_from([(last, a), (a, b), (b, last)])
        last = b
    if graph.number_of_nodes() < n:
        graph.add_edge(last, next_id)  # pendant tail absorbs the odd node out
    return graph


def torus(rows: int, cols: int):
    """A rows x cols torus (the paper's suggested 'special topology')."""
    import networkx as nx

    graph = nx.grid_2d_graph(rows, cols, periodic=True)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def hypercube(dimension: int):
    """The d-dimensional hypercube."""
    import networkx as nx

    graph = nx.hypercube_graph(dimension)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


@dataclass(frozen=True)
class GraphSnapshot:
    """What a graph agent sees during Look (local frame, anonymous).

    ``failed`` and ``is_landmark`` mirror the ring snapshot's predicates
    (a denied port acquisition last round; standing at the topology's
    optional landmark node) — both came along when the graph engine moved
    onto the unified core.  ``moved`` also adopted the ring semantics
    then: it reports whether the agent's *last traversal attempt*
    succeeded (sticky through rest/STAY rounds, cleared by a block or a
    denial), not the pre-unification "traversed in the immediately
    preceding round".
    """

    degree: int
    on_port: int | None          # port the agent occupies after a failed move
    others_in_node: int
    occupied_ports: frozenset[int]  # ports of this node held by other agents
    moved: bool
    failed: bool = False
    is_landmark: bool = False


#: Interning pool for Look snapshots (same rationale as
#: :func:`repro.core.snapshot.intern_snapshot`: the value space is tiny and
#: snapshots are immutable, so the Look phase reuses frozen instances).
_INTERNED_SNAPSHOTS: dict[tuple, GraphSnapshot] = {}

_EMPTY_PORTS: frozenset[int] = frozenset()


def _intern_graph_snapshot(
    degree: int,
    on_port: int | None,
    others_in_node: int,
    occupied_ports: frozenset[int],
    moved: bool,
    failed: bool,
    is_landmark: bool,
) -> GraphSnapshot:
    key = (degree, on_port, others_in_node, occupied_ports, moved, failed,
           is_landmark)
    snap = _INTERNED_SNAPSHOTS.get(key)
    if snap is None:
        snap = GraphSnapshot(*key)
        _INTERNED_SNAPSHOTS[key] = snap
    return snap


class GraphExplorer(Protocol):
    """Deterministic-or-seeded per-agent exploration strategy.

    ``choose_port`` returns the port to push (``0..degree-1``), ``None``
    to rest inside the node (releasing any held port), or a core
    :class:`~repro.core.actions.Action` for the richer verbs — in
    particular ``TERMINATE`` for explicitly terminating explorers.
    """

    name: str

    def setup(self, memory: dict) -> None: ...

    def choose_port(
        self, snapshot: GraphSnapshot, memory: dict
    ) -> int | None | Action: ...


class StaticGraphAdversary:
    """No edge is ever removed."""

    def reset(self, engine: "DynamicGraphEngine") -> None:  # noqa: ARG002
        return None

    def missing_edges(self, engine: "DynamicGraphEngine") -> set:
        return set()


class ConnectivityPreservingAdversary:
    """Remove up to ``budget`` random edges, keeping the footprint connected.

    The straightforward generalisation of the ring's one-missing-edge
    adversary: each round it samples removal candidates and drops an edge
    only if the remaining footprint stays connected (checked with
    networkx), up to the per-round budget.
    """

    def __init__(self, budget: int = 1, seed: int = 0) -> None:
        if budget < 0:
            raise ConfigurationError("budget must be >= 0")
        self._budget = budget
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self, engine: "DynamicGraphEngine") -> None:  # noqa: ARG002
        self._rng = random.Random(self._seed)

    def missing_edges(self, engine: "DynamicGraphEngine") -> set:
        import networkx as nx

        graph = engine.graph
        removed: set = set()
        candidates = list(graph.edges())
        self._rng.shuffle(candidates)
        footprint = graph.copy()
        for edge in candidates:
            if len(removed) >= self._budget:
                break
            footprint.remove_edge(*edge)
            if nx.is_connected(footprint):
                removed.add(frozenset(edge))
            else:
                footprint.add_edge(*edge)
        return removed


class ConnectivitySafeAdversary:
    """Constrain a single-edge (ring-style) adversary to legal removals.

    The paper's adversary *chooses within* the 1-interval-connectivity
    constraint; a look-ahead construction written for the ring (where any
    single removal is legal) may pick a bridge on a general graph.  This
    wrapper turns such a choice into "remove nothing" instead of letting
    the core's model audit reject the round — which is exactly what a
    constrained adversary would do.
    """

    def __init__(self, inner) -> None:
        self._inner = inner

    def reset(self, engine: "SimulationCore") -> None:
        self._inner.reset(engine)

    def choose_missing_edge(self, engine: "SimulationCore"):
        edge = self._inner.choose_missing_edge(engine)
        if edge is None:
            return None
        topology = engine.topology
        edge = topology.canonical_edge(edge)
        return edge if topology.removable(edge) else None

    def select(self, engine: "SimulationCore") -> set[int]:
        """Delegate activation to combined adversary/scheduler constructions.

        The Tables 1/3 adversaries that also control the schedule (e.g.
        NS starvation) keep both roles on graph topologies: the wrapper
        constrains only the edge *removal*, never the activation set.
        """
        return self._inner.select(engine)

    def __repr__(self) -> str:
        return f"ConnectivitySafeAdversary({self._inner!r})"


class GraphTopology:
    """Port-labelled graph structure + Look semantics for the unified core.

    Port labelling: ``port i`` of a node is its ``i``-th neighbour in
    sorted order.  Edges are ``frozenset({u, v})``.  Bridges are
    precomputed so the common single-edge-per-round adversaries validate
    in O(1) instead of a per-round connectivity check.
    """

    oriented = False

    def __init__(self, graph, *, landmark=None) -> None:
        import networkx as nx

        if not nx.is_connected(graph):
            raise ConfigurationError("the underlying graph must be connected")
        self.graph = graph
        self.size = graph.number_of_nodes()
        if landmark is not None and landmark not in graph:
            raise ConfigurationError(f"landmark {landmark!r} not in the graph")
        self.landmark = landmark
        # Port labelling: node -> sorted neighbour list; port i = i-th neighbour.
        self.ports = {node: sorted(graph.neighbors(node)) for node in graph.nodes}
        self._edges = {frozenset(e) for e in graph.edges()}
        self._bridges = {frozenset(e) for e in nx.bridges(graph)}

    # -- structure -----------------------------------------------------

    def normalize(self, node):
        if node not in self.ports:
            raise ConfigurationError(f"start node {node!r} not in the graph")
        return node

    def degree(self, node) -> int:
        return len(self.ports[node])

    def edge_from(self, node, port: int):
        neighbors = self.ports[node]
        if not 0 <= port < len(neighbors):
            raise AdversaryViolation(
                f"explorer requested port {port} at a degree-{len(neighbors)} node"
            )
        return frozenset((node, neighbors[port]))

    def neighbor(self, node, port: int):
        return self.ports[node][port]

    # -- adversary validation -------------------------------------------

    def canonical_edge(self, edge):
        return edge if isinstance(edge, frozenset) else frozenset(edge)

    def validate_edge(self, edge) -> None:
        if edge not in self._edges:
            raise AdversaryViolation(
                f"adversary removed non-edge {sorted(edge, key=repr)!r}")
        if edge in self._bridges:
            raise AdversaryViolation(
                "adversary disconnected the footprint (1-interval connectivity)"
            )

    def validate_missing(self, missing: set) -> None:
        import networkx as nx

        if len(missing) == 1:
            (edge,) = missing
            self.validate_edge(edge)
            return
        footprint = self.graph.copy()
        for edge in missing:
            footprint.remove_edge(*tuple(edge))
        if not nx.is_connected(footprint):
            raise AdversaryViolation(
                "adversary disconnected the footprint (1-interval connectivity)"
            )

    def removable(self, edge) -> bool:
        return edge in self._edges and edge not in self._bridges

    def edge_label(self, edge) -> str:
        return "-".join(str(v) for v in sorted(edge, key=repr))

    # -- Look semantics -------------------------------------------------

    def snapshot(self, agent, interior: int, holders: dict) -> GraphSnapshot:
        """O(degree) Look from the occupancy-index entry of the agent's node."""
        node = agent.node
        own_port = agent.port
        if own_port is None:
            interior -= 1  # don't count the observer itself
            occupied = frozenset(holders) if holders else _EMPTY_PORTS
        elif len(holders) > 1:
            occupied = frozenset(p for p in holders if p != own_port)
        else:
            occupied = _EMPTY_PORTS
        memory = agent.memory
        return _intern_graph_snapshot(
            len(self.ports[node]), own_port, interior, occupied,
            memory.moved, memory.failed, node == self.landmark,
        )

    def snapshot_scan(self, agent, agents: Sequence) -> GraphSnapshot:
        """Reference Look: the original O(k) scan over the team."""
        others = 0
        occupied: set[int] = set()
        for other in agents:
            if other.index == agent.index or other.node != agent.node:
                continue
            if other.port is None:
                others += 1
            else:
                occupied.add(other.port)
        return GraphSnapshot(
            degree=self.degree(agent.node),
            on_port=agent.port,
            others_in_node=others,
            occupied_ports=frozenset(occupied),
            moved=agent.memory.moved,
            failed=agent.memory.failed,
            is_landmark=agent.node == self.landmark,
        )

    def __repr__(self) -> str:
        return f"GraphTopology(n={self.size})"


class ExplorerAlgorithm:
    """Adapt a :class:`GraphExplorer` to the core's Algorithm protocol.

    Explorer state lives in ``memory.vars`` (the dict the explorer always
    saw), so the core's peek machinery — :meth:`AgentMemory.clone` hands a
    speculative copy to look-ahead adversaries — works unchanged.  Note
    the omniscience caveat: peeks are only faithful for *deterministic*
    explorers (rotor-router); a seeded random walk advances its RNG when
    peeked, exactly as the paper's adversary model (deterministic
    protocols) assumes away.
    """

    def __init__(self, explorer: GraphExplorer) -> None:
        self.explorer = explorer
        self.name = getattr(explorer, "name", type(explorer).__name__)

    def setup(self, memory: AgentMemory) -> None:
        self.explorer.setup(memory.vars)

    def compute(self, snapshot: GraphSnapshot, memory: AgentMemory) -> Action:
        choice = self.explorer.choose_port(snapshot, memory.vars)
        if choice is None:
            return ENTER_NODE  # rest inside the node, releasing any held port
        if isinstance(choice, Action):
            return choice
        return move_to_port(choice)


class DynamicGraphEngine(SimulationCore):
    """Look-Compute-Move on a dynamic port-labelled graph (unified core).

    A constructor-level facade: builds the :class:`GraphTopology` and the
    explorer adapter, defaults to the fully synchronous scheduler and a
    static adversary, and keeps the legacy attribute surface (``graph``,
    ``ports``, ``degree``, ``missing``).  Everything else — schedulers,
    transports, termination, tracing, both Look paths — is inherited.
    """

    def __init__(
        self,
        graph,
        explorer: GraphExplorer,
        positions: Sequence[Any],
        *,
        adversary=None,
        scheduler=None,
        transport: TransportModel = TransportModel.NS,
        trace=None,
        landmark=None,
        debug_invariants: bool | None = None,
        optimized: bool = True,
    ) -> None:
        from ..schedulers.fsync import FsyncScheduler

        topology = GraphTopology(graph, landmark=landmark)
        super().__init__(
            topology,
            ExplorerAlgorithm(explorer),
            positions,
            scheduler=scheduler if scheduler is not None else FsyncScheduler(),
            adversary=adversary if adversary is not None else StaticGraphAdversary(),
            transport=transport,
            trace=trace,
            debug_invariants=debug_invariants,
            optimized=optimized,
        )
        self.graph = topology.graph
        self.ports = topology.ports
        self.explorer = explorer

    def degree(self, node) -> int:
        return len(self.ports[node])

    def _edge_of_port(self, node, port: int):
        return self.topology.edge_from(node, port)

    @property
    def missing(self) -> set:
        """This round's missing edge set (legacy name for ``missing_edges``)."""
        return self.missing_edges

    def run(self, max_rounds: int, *, stop_on_exploration: bool = True,
            stop_when=None):
        """Run to the horizon; graph runs historically stop on exploration."""
        return super().run(
            max_rounds,
            stop_on_exploration=stop_on_exploration,
            stop_when=stop_when,
        )
