"""Baseline explorers for dynamic port-labelled graphs.

Neither is from the paper (the open problem is exactly that no non-trivial
live algorithm is known for arbitrary dynamic topologies); they are the
standard baselines any future algorithm must beat:

* :class:`RotorRouterExplorer` — the deterministic rotor-router (a.k.a.
  Propp machine / Eulerian walker): each node's memory cycles through its
  ports; explores any *static* graph in O(m·D) and degrades gracefully
  under dynamism.  Here the rotor state lives in the agent (the model has
  no whiteboards), so it is a per-agent rotor over the node it stands on,
  keyed by an anonymous node signature the agent can actually compute —
  we allow it a node-indexed map as an explicit *strengthening* of the
  model, documented loudly.
* :class:`RandomWalkExplorer` — the seeded uniform random walk, the
  classical answer for dynamic graphs (Avin-Koucky-Lotker [4], cited by
  the paper): expected cover time is polynomial on every connected
  dynamic graph.
"""

from __future__ import annotations

import random

from ..core.actions import Action, TERMINATE
from ..core.errors import ConfigurationError
from .dynamic_graph import GraphSnapshot


class RandomWalkExplorer:
    """Uniform random walk; blocked attempts re-roll next round."""

    name = "random-walk"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._assigned = 0

    def setup(self, memory: dict) -> None:
        # distinct, reproducible stream per agent (setup runs in agent order)
        memory["rng"] = random.Random(self._seed * 1_000_003 + self._assigned)
        self._assigned += 1

    def choose_port(self, snapshot: GraphSnapshot, memory: dict) -> int | None:
        if snapshot.degree == 0:
            return None
        return memory["rng"].randrange(snapshot.degree)


class RotorRouterExplorer:
    """Per-agent rotor-router over node-indexed rotors.

    **Model strengthening (explicit):** the agent keys its rotors by a
    node identifier supplied through ``memory['node_of']`` — a callback
    the engine harness installs (see :func:`attach_node_oracle`).  In the
    paper's anonymous model an agent cannot do this; the rotor-router is
    included as a *baseline upper bound* on what identity information
    buys, not as a solution to the open problem.
    """

    name = "rotor-router"

    def setup(self, memory: dict) -> None:
        memory["rotors"] = {}

    def choose_port(self, snapshot: GraphSnapshot, memory: dict) -> int | None:
        if snapshot.degree == 0:
            return None
        oracle = memory.get("node_of")
        if oracle is None:
            raise ConfigurationError(
                "RotorRouterExplorer needs attach_node_oracle(engine) "
                "(it uses node identities, a documented model strengthening)"
            )
        node = oracle()
        rotors = memory["rotors"]
        port = rotors.get(node, 0) % snapshot.degree
        if snapshot.on_port is None:
            # advance the rotor only when starting a fresh attempt
            rotors[node] = (port + 1) % snapshot.degree
            return port
        return snapshot.on_port  # keep pushing the blocked port


class TerminatingRotorRouter(RotorRouterExplorer):
    """Rotor-router with *explicit termination* given the node count.

    The graph analogue of the ring's known-bound protocols: the agent is
    told ``size`` (the number of nodes) up front, counts the distinct
    nodes it has personally stood at (via the same node oracle the plain
    rotor-router needs), and enters the terminal state once it has seen
    them all — necessarily *after* full exploration, so a finished run
    classifies as the paper's explicit/partial termination modes.  An
    agent that completes its census while waiting on a port first steps
    back into the node and terminates from the interior.

    Unlike the base rotor (which pushes a blocked port forever, the
    behaviour an *eventually present* edge rewards), this variant gives
    up after ``patience`` consecutive blocked rounds and re-routes
    through the rotor — liveness against adversaries that can hold one
    edge missing indefinitely (e.g. the peeking
    :class:`~repro.adversary.blocking.BlockAgentAdversary`, whose pinned
    target consequently never completes its census: Observation 1,
    off the ring).
    """

    name = "rotor-router-terminating"

    def __init__(self, size: int, patience: int = 3) -> None:
        if size < 1:
            raise ConfigurationError("size must be >= 1")
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self._size = size
        self._patience = patience

    def setup(self, memory: dict) -> None:
        super().setup(memory)
        memory["seen"] = set()
        memory["blocked"] = 0

    def choose_port(self, snapshot: GraphSnapshot, memory: dict) -> int | None | Action:
        oracle = memory.get("node_of")
        if oracle is None:
            raise ConfigurationError(
                "TerminatingRotorRouter needs attach_node_oracle(engine) "
                "(it uses node identities, a documented model strengthening)"
            )
        seen = memory["seen"]
        seen.add(oracle())
        if len(seen) >= self._size:
            if snapshot.on_port is not None:
                return None  # step off the port; terminate from the interior
            return TERMINATE
        if snapshot.on_port is not None:
            streak = memory["blocked"] + 1
            if streak >= self._patience:
                memory["blocked"] = 0
                return None  # abandon the held port; re-route next round
            memory["blocked"] = streak
            return snapshot.on_port
        memory["blocked"] = 0
        return super().choose_port(snapshot, memory)


def attach_node_oracle(engine) -> None:
    """Give every agent a callback reporting its current node.

    Installs ``node_of`` in each agent's algorithm-variable store (the
    dict explorers receive as ``memory``) on a
    :class:`~repro.extensions.dynamic_graph.DynamicGraphEngine`.  This is
    the explicit strengthening the rotor-router baselines require.
    """
    for agent in engine.agents:
        agent.memory.vars["node_of"] = (lambda a=agent: a.node)
