"""Beyond rings: the paper's open problems, prototyped.

Section 5 of the paper: "a challenging [open problem] is the study of live
exploration in a network of arbitrary topology ... meshes, tori,
hypercubes".  This subpackage provides a faithful generalisation of the
model to arbitrary port-labelled dynamic graphs (1-interval connectivity
enforced per round) plus baseline explorers, so that the open problem can
at least be *measured* while the theory is open.

Since the engine unification, graph topologies run on the same
:class:`~repro.core.sim.SimulationCore` as the paper's ring:
:class:`DynamicGraphEngine` is a thin facade, and every scheduler,
transport model, termination mode and look-ahead adversary of the ring
reproduction applies to these topologies too.  No *claims* from the paper
transfer — only the machinery.
"""

from .dynamic_graph import (
    ConnectivityPreservingAdversary,
    ConnectivitySafeAdversary,
    DynamicGraphEngine,
    GraphSnapshot,
    GraphTopology,
    StaticGraphAdversary,
    cactus_graph,
    hypercube,
    path_graph,
    ring_graph,
    torus,
)
from .explorers import (
    RandomWalkExplorer,
    RotorRouterExplorer,
    TerminatingRotorRouter,
    attach_node_oracle,
)

__all__ = [
    "ConnectivityPreservingAdversary",
    "ConnectivitySafeAdversary",
    "DynamicGraphEngine",
    "GraphSnapshot",
    "GraphTopology",
    "RandomWalkExplorer",
    "RotorRouterExplorer",
    "StaticGraphAdversary",
    "TerminatingRotorRouter",
    "attach_node_oracle",
    "cactus_graph",
    "hypercube",
    "path_graph",
    "ring_graph",
    "torus",
]
