"""Beyond rings: the paper's open problems, prototyped.

Section 5 of the paper: "a challenging [open problem] is the study of live
exploration in a network of arbitrary topology ... meshes, tori,
hypercubes".  This subpackage provides a faithful generalisation of the
model to arbitrary port-labelled dynamic graphs (1-interval connectivity
enforced per round) plus two baseline explorers, so that the open problem
can at least be *measured* while the theory is open.

Everything here is an extension, not a reproduction: no claims from the
paper apply, and the interfaces are deliberately independent of the ring
engine (whose direction algebra has no analogue on general graphs).
"""

from .dynamic_graph import (
    ConnectivityPreservingAdversary,
    DynamicGraphEngine,
    GraphRunResult,
    StaticGraphAdversary,
    hypercube,
    ring_graph,
    torus,
)
from .explorers import RandomWalkExplorer, RotorRouterExplorer

__all__ = [
    "ConnectivityPreservingAdversary",
    "DynamicGraphEngine",
    "GraphRunResult",
    "RandomWalkExplorer",
    "RotorRouterExplorer",
    "StaticGraphAdversary",
    "hypercube",
    "ring_graph",
    "torus",
]
