"""Closed-form bounds stated by the paper, as plain functions.

Every bench compares a measured quantity against one of these; keeping
them here (with the theorem references) makes EXPERIMENTS.md mechanical.
"""

from __future__ import annotations

import math


def fsync_known_bound_time(bound: int) -> int:
    """Theorem 3: ``KnownNNoChirality`` explicitly terminates in ``3N - 6``."""
    return 3 * bound - 6


def fsync_lower_bound_two_agents(ring_size: int) -> int:
    """Observation 3 (from [26]): two FSYNC agents need ``>= 2n - 3`` time."""
    return 2 * ring_size - 3


def partial_termination_lower_bound(bound: int) -> int:
    """Theorem 4: with an upper bound ``N``, partial termination needs ``>= N - 1`` time."""
    return bound - 1


def no_chirality_timeout(ring_size: int) -> int:
    """Figure 8's Happy/Reverse horizon ``32 * ((3 ceil(log n) + 3) * 5n)``.

    This is both the algorithm's termination deadline and the O(n log n)
    claim of Theorem 8 made concrete (Lemma 3 with ``c = 5`` and
    ``len(ID) <= 3 ceil(log n)``).
    """
    log_n = max(1, math.ceil(math.log2(ring_size)))
    return 32 * ((3 * log_n + 3) * 5 * ring_size)


def pt_bound_moves_lower(bound: int, ring_size: int) -> float:
    """Theorem 13: Omega(N * n) moves; the proof extracts ``(n/2)(N - n/2)``."""
    x = math.ceil(ring_size / 2)
    return x * max(0, bound - x)


def pt_landmark_moves_lower(ring_size: int) -> float:
    """Theorem 15: Omega(n^2) moves; the proof extracts ``> n^2 / 2``."""
    return ring_size * ring_size / 2
