"""The paper's theory surface: closed-form bounds and the feasibility map."""

from .bounds import (
    fsync_known_bound_time,
    fsync_lower_bound_two_agents,
    no_chirality_timeout,
    partial_termination_lower_bound,
    pt_bound_moves_lower,
    pt_landmark_moves_lower,
)
from .tables import TABLE_ROWS, Knowledge, Model, ResultKind, Termination, TableRow, lookup

__all__ = [
    "Knowledge",
    "Model",
    "ResultKind",
    "TABLE_ROWS",
    "TableRow",
    "Termination",
    "fsync_known_bound_time",
    "fsync_lower_bound_two_agents",
    "lookup",
    "no_chirality_timeout",
    "partial_termination_lower_bound",
    "pt_bound_moves_lower",
    "pt_landmark_moves_lower",
]
