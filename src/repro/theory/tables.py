"""Tables 1-4 of the paper as queryable structured data.

The paper's evaluation *is* this feasibility/complexity map; encoding it
as data lets tests assert the map, benches print it next to measured
results, and users query "what does the paper say about my setting?".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Model(enum.Enum):
    """Synchrony/transport setting."""

    FSYNC = "FSYNC"
    SSYNC_NS = "SSYNC/NS"
    SSYNC_PT = "SSYNC/PT"
    SSYNC_ET = "SSYNC/ET"


class Knowledge(enum.Enum):
    """Structural knowledge/assumptions a result relies on (or rules out)."""

    UPPER_BOUND = "known upper bound N"
    EXACT_SIZE = "known exact n"
    LANDMARK = "landmark node"
    CHIRALITY = "chirality"
    AGENT_IDS = "distinct agent IDs"


class ResultKind(enum.Enum):
    POSSIBLE = "possible"
    IMPOSSIBLE = "impossible"


class Termination(enum.Enum):
    EXPLICIT = "explicit termination"
    PARTIAL = "partial termination"
    UNCONSCIOUS = "unconscious exploration"
    EXPLORATION = "exploration"  # impossibility rows: even bare exploration fails


@dataclass(frozen=True)
class TableRow:
    """One row of Tables 1-4."""

    table: int
    model: Model
    agents: str  # "1", "2", "3", "any"
    kind: ResultKind
    termination: Termination
    assumptions: frozenset[Knowledge] = field(default_factory=frozenset)
    even_if: frozenset[Knowledge] = field(default_factory=frozenset)
    complexity: str | None = None
    theorem: str = ""
    algorithm: str | None = None  # class name in repro.algorithms, if any

    def describe(self) -> str:
        needs = ", ".join(sorted(k.value for k in self.assumptions)) or "nothing"
        even = ", ".join(sorted(k.value for k in self.even_if))
        even = f" even with {even}" if even else ""
        cost = f" [{self.complexity}]" if self.complexity else ""
        return (
            f"T{self.table} {self.model.value}: {self.agents} agent(s), "
            f"{self.termination.value} {self.kind.value} with {needs}{even}"
            f"{cost} ({self.theorem})"
        )


def _ks(*items: Knowledge) -> frozenset[Knowledge]:
    return frozenset(items)


TABLE_ROWS: tuple[TableRow, ...] = (
    # ---- Table 1: FSYNC impossibilities -----------------------------------
    TableRow(
        table=1, model=Model.FSYNC, agents="2", kind=ResultKind.IMPOSSIBLE,
        termination=Termination.PARTIAL,
        even_if=_ks(Knowledge.AGENT_IDS, Knowledge.CHIRALITY),
        theorem="Theorem 1",
    ),
    TableRow(
        table=1, model=Model.FSYNC, agents="any", kind=ResultKind.IMPOSSIBLE,
        termination=Termination.PARTIAL,
        even_if=_ks(Knowledge.CHIRALITY),
        theorem="Theorem 2",
    ),
    # ---- Table 2: FSYNC possibilities --------------------------------------
    TableRow(
        table=2, model=Model.FSYNC, agents="2", kind=ResultKind.POSSIBLE,
        termination=Termination.EXPLICIT,
        assumptions=_ks(Knowledge.UPPER_BOUND),
        complexity="3N - 6 rounds", theorem="Theorem 3",
        algorithm="KnownUpperBound",
    ),
    TableRow(
        table=2, model=Model.FSYNC, agents="2", kind=ResultKind.POSSIBLE,
        termination=Termination.EXPLICIT,
        assumptions=_ks(Knowledge.CHIRALITY, Knowledge.LANDMARK),
        complexity="O(n) rounds", theorem="Theorem 6",
        algorithm="LandmarkWithChirality",
    ),
    TableRow(
        table=2, model=Model.FSYNC, agents="2", kind=ResultKind.POSSIBLE,
        termination=Termination.EXPLICIT,
        assumptions=_ks(Knowledge.LANDMARK),
        complexity="O(n log n) rounds", theorem="Theorem 8",
        algorithm="LandmarkNoChirality",
    ),
    # implied by Theorems 1/2 + Figure 3 (not a table row, but part of the map):
    TableRow(
        table=2, model=Model.FSYNC, agents="2", kind=ResultKind.POSSIBLE,
        termination=Termination.UNCONSCIOUS,
        complexity="O(n) rounds", theorem="Theorem 5",
        algorithm="UnconsciousExploration",
    ),
    # ---- Table 3: SSYNC impossibilities --------------------------------------
    TableRow(
        table=3, model=Model.SSYNC_NS, agents="any", kind=ResultKind.IMPOSSIBLE,
        termination=Termination.EXPLORATION,
        even_if=_ks(Knowledge.CHIRALITY, Knowledge.EXACT_SIZE, Knowledge.LANDMARK,
                    Knowledge.AGENT_IDS),
        theorem="Theorem 9",
    ),
    TableRow(
        table=3, model=Model.SSYNC_PT, agents="2", kind=ResultKind.IMPOSSIBLE,
        termination=Termination.EXPLORATION,
        even_if=_ks(Knowledge.EXACT_SIZE, Knowledge.LANDMARK),
        theorem="Theorem 10 (no chirality)",
    ),
    TableRow(
        table=3, model=Model.SSYNC_PT, agents="2", kind=ResultKind.IMPOSSIBLE,
        termination=Termination.EXPLICIT,
        even_if=_ks(Knowledge.CHIRALITY, Knowledge.EXACT_SIZE, Knowledge.LANDMARK),
        theorem="Theorem 11",
    ),
    TableRow(
        table=3, model=Model.SSYNC_ET, agents="any", kind=ResultKind.IMPOSSIBLE,
        termination=Termination.PARTIAL,
        even_if=_ks(Knowledge.UPPER_BOUND, Knowledge.CHIRALITY, Knowledge.LANDMARK,
                    Knowledge.AGENT_IDS),
        theorem="Theorem 19 (unknown exact n)",
    ),
    # ---- Table 4: SSYNC possibilities -----------------------------------------
    TableRow(
        table=4, model=Model.SSYNC_PT, agents="2", kind=ResultKind.POSSIBLE,
        termination=Termination.PARTIAL,
        assumptions=_ks(Knowledge.CHIRALITY, Knowledge.UPPER_BOUND),
        complexity="O(N^2) moves", theorem="Theorem 12",
        algorithm="PTBoundWithChirality",
    ),
    TableRow(
        table=4, model=Model.SSYNC_PT, agents="2", kind=ResultKind.POSSIBLE,
        termination=Termination.PARTIAL,
        assumptions=_ks(Knowledge.CHIRALITY, Knowledge.LANDMARK),
        complexity="O(n^2) moves", theorem="Theorem 14",
        algorithm="PTLandmarkWithChirality",
    ),
    TableRow(
        table=4, model=Model.SSYNC_PT, agents="3", kind=ResultKind.POSSIBLE,
        termination=Termination.PARTIAL,
        assumptions=_ks(Knowledge.UPPER_BOUND),
        complexity="O(N^2) moves", theorem="Theorem 16",
        algorithm="PTBoundNoChirality",
    ),
    TableRow(
        table=4, model=Model.SSYNC_PT, agents="3", kind=ResultKind.POSSIBLE,
        termination=Termination.PARTIAL,
        assumptions=_ks(Knowledge.LANDMARK),
        complexity="O(n^2) moves", theorem="Theorem 17",
        algorithm="PTLandmarkNoChirality",
    ),
    TableRow(
        table=4, model=Model.SSYNC_ET, agents="2", kind=ResultKind.POSSIBLE,
        termination=Termination.UNCONSCIOUS,
        assumptions=_ks(Knowledge.CHIRALITY),
        theorem="Theorem 18",
        algorithm="ETUnconscious",
    ),
    TableRow(
        table=4, model=Model.SSYNC_ET, agents="3", kind=ResultKind.POSSIBLE,
        termination=Termination.PARTIAL,
        assumptions=_ks(Knowledge.EXACT_SIZE),
        theorem="Theorem 20",
        algorithm="ETExactSizeNoChirality",
    ),
)


def lookup(
    *,
    table: int | None = None,
    model: Model | None = None,
    kind: ResultKind | None = None,
    algorithm: str | None = None,
) -> list[TableRow]:
    """Filter the feasibility map."""
    rows = list(TABLE_ROWS)
    if table is not None:
        rows = [r for r in rows if r.table == table]
    if model is not None:
        rows = [r for r in rows if r.model is model]
    if kind is not None:
        rows = [r for r in rows if r.kind is kind]
    if algorithm is not None:
        rows = [r for r in rows if r.algorithm == algorithm]
    return rows


def render_map() -> str:
    """The whole feasibility map as aligned text (used by examples/benches)."""
    return "\n".join(row.describe() for row in TABLE_ROWS)
