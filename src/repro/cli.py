"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``atlas``  — print the paper's feasibility map (Tables 1-4);
* ``run``    — run one algorithm on a dynamic ring and print the outcome;
* ``watch``  — like ``run`` but renders the configuration every round;
* ``list``   — list available algorithms, adversaries and schedulers.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .adversary import (
    BlockAgentAdversary,
    FixedMissingEdge,
    MeetingPreventionAdversary,
    NoRemoval,
    PeriodicMissingEdge,
    RandomMissingEdge,
)
from .algorithms import (
    ETExactSizeNoChirality,
    ETUnconscious,
    KnownUpperBound,
    LandmarkNoChirality,
    LandmarkWithChirality,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkNoChirality,
    PTLandmarkWithChirality,
    StartFromLandmarkNoChirality,
    UnconsciousExploration,
)
from .analysis.render import watch
from .api import build_engine
from .core import TransportModel
from .schedulers import ETFairScheduler, FsyncScheduler, RandomFairScheduler
from .theory.tables import render_map

#: name -> (factory(args), needs_landmark, default_agents, transport)
ALGORITHMS = {
    "known-bound": (
        lambda a: KnownUpperBound(bound=a.bound or a.n), False, 2, TransportModel.NS),
    "unconscious": (
        lambda a: UnconsciousExploration(), False, 2, TransportModel.NS),
    "landmark-chirality": (
        lambda a: LandmarkWithChirality(), True, 2, TransportModel.NS),
    "landmark-no-chirality": (
        lambda a: LandmarkNoChirality(), True, 2, TransportModel.NS),
    "start-from-landmark": (
        lambda a: StartFromLandmarkNoChirality(), True, 2, TransportModel.NS),
    "pt-bound": (
        lambda a: PTBoundWithChirality(bound=a.bound or a.n), False, 2, TransportModel.PT),
    "pt-landmark": (
        lambda a: PTLandmarkWithChirality(), True, 2, TransportModel.PT),
    "pt-bound-3": (
        lambda a: PTBoundNoChirality(bound=a.bound or a.n), False, 3, TransportModel.PT),
    "pt-landmark-3": (
        lambda a: PTLandmarkNoChirality(), True, 3, TransportModel.PT),
    "et-unconscious": (
        lambda a: ETUnconscious(), False, 2, TransportModel.ET),
    "et-exact": (
        lambda a: ETExactSizeNoChirality(ring_size=a.n), False, 3, TransportModel.ET),
}

ADVERSARIES = {
    "none": lambda a: NoRemoval(),
    "random": lambda a: RandomMissingEdge(seed=a.seed),
    "fixed": lambda a: FixedMissingEdge(a.edge),
    "periodic": lambda a: PeriodicMissingEdge(a.edge, period=4, duty=2),
    "block-agent": lambda a: BlockAgentAdversary(0),
    "prevent-meetings": lambda a: MeetingPreventionAdversary(),
}


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Live Exploration of Dynamic Rings - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("atlas", help="print the paper's feasibility map")
    sub.add_parser("list", help="list algorithms and adversaries")

    for name in ("run", "watch"):
        p = sub.add_parser(name, help=f"{name} an exploration")
        p.add_argument("algorithm", choices=sorted(ALGORITHMS))
        p.add_argument("-n", type=int, default=8, help="ring size (default 8)")
        p.add_argument("--bound", type=int, default=None,
                       help="known upper bound N (defaults to n)")
        p.add_argument("--agents", type=int, default=None,
                       help="number of agents (defaults per algorithm)")
        p.add_argument("--adversary", choices=sorted(ADVERSARIES), default="random")
        p.add_argument("--edge", type=int, default=0,
                       help="edge index for fixed/periodic adversaries")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-chirality", action="store_true",
                       help="flip agent 1's orientation")
        p.add_argument("--rounds", type=int, default=None,
                       help="horizon (default: generous per algorithm)")
    return parser


def build_from_args(args) -> tuple:
    factory, needs_landmark, default_agents, transport = ALGORITHMS[args.algorithm]
    agents = args.agents or default_agents
    positions = [(i * args.n) // agents for i in range(agents)]
    if transport is TransportModel.NS:
        scheduler = FsyncScheduler()
    elif transport is TransportModel.PT:
        scheduler = RandomFairScheduler(seed=args.seed + 1)
    else:
        scheduler = ETFairScheduler(RandomFairScheduler(seed=args.seed + 1))
    if args.algorithm == "start-from-landmark":
        positions = [0] * agents
    engine = build_engine(
        factory(args),
        ring_size=args.n,
        positions=positions,
        landmark=0 if needs_landmark else None,
        chirality=not args.no_chirality,
        flipped=(1,) if args.no_chirality and agents >= 2 else (),
        adversary=ADVERSARIES[args.adversary](args),
        scheduler=scheduler,
        transport=transport,
    )
    default_horizon = 20_000 if transport is not TransportModel.NS else 400 * args.n
    unconscious = "unconscious" in args.algorithm
    return engine, args.rounds or default_horizon, unconscious


def main(argv: Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)

    if args.command == "atlas":
        print("Feasibility map (Tables 1-4):")
        print(render_map())
        return 0

    if args.command == "list":
        print("algorithms :", ", ".join(sorted(ALGORITHMS)))
        print("adversaries:", ", ".join(sorted(ADVERSARIES)))
        return 0

    engine, horizon, unconscious = build_from_args(args)
    if args.command == "watch":
        watch(engine, horizon)
        return 0

    result = engine.run(horizon, stop_on_exploration=unconscious)
    print(result.summary())
    return 0 if result.explored else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
