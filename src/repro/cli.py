"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``atlas``    — print the paper's feasibility map (Tables 1-4);
* ``run``      — run one algorithm on a dynamic ring and print the outcome;
* ``watch``    — like ``run`` but renders the configuration every round;
* ``list``     — list available algorithms, adversaries and schedulers;
* ``campaign`` — parallel experiment campaigns:

  * ``campaign run``    — expand a sweep spec and execute it (resumable;
    ``--distributed`` drains it through the lease-based work queue with
    N local worker processes instead of a multiprocessing pool);
  * ``campaign resume`` — continue an interrupted campaign
    (``--retry-failed`` also re-drives cells whose only outcome so far
    is an error record);
  * ``campaign enqueue`` — persist a spec's pending cells as claimable
    chunks in a shared SQLite store (the multi-host entry point);
  * ``campaign worker`` — claim/run/heartbeat chunks from a shared
    store until the campaign's queue drains; run it on as many machines
    as can reach the store;
  * ``campaign status`` — live fleet telemetry (workers alive, chunk
    lease states, cells/s, ETA) read straight from the store;
    ``--watch`` re-renders until the queue finishes;
  * ``campaign report`` — aggregate a result store into table rows
    (``--fit`` adds complexity-shape verdicts straight from the store,
    ``--reduce p90`` fits a tail percentile instead of the mean,
    ``--scatter`` drills down to per-seed rows, and ``--errors`` lists
    the cells whose only outcome is an error record);
  * ``campaign export`` — dump a store as a columnar file (CSV/Parquet);
  * ``campaign metrics`` — merged fleet metrics from the store's
    persisted worker snapshots (``--format table|json|prom``; ``prom``
    emits a Prometheus textfile);
  * ``campaign trace``  — trace analytics over the recorded spans:
    span tree (default), ``--timeline`` per-worker Gantt,
    ``--critical-path`` wall-clock attribution, ``--stragglers``
    skew ranking, ``--format chrome`` Perfetto-compatible export;
  * ``campaign profile`` — phase-attribution profile from the fleet's
    metrics snapshots (``--format table|json|folded``; ``folded``
    emits speedscope/flamegraph collapsed stacks);
  * ``campaign list``   — list the named campaign specs.

* ``bench`` — bench-history regression guard: ``bench record`` appends
  a ``BENCH_engine.json``'s headlines to ``BENCH_history.jsonl``;
  ``bench check`` exits 1 when the latest entry drops below a fraction
  (default 0.7) of the trailing median for any headline.

Observability (see :mod:`repro.obs` and ARCHITECTURE.md):
``--metrics`` / ``--trace`` / ``--trace-jsonl PATH`` (on
``run``/``resume``/``worker``) switch on the metrics registry and the
campaign→chunk→cell span trace — both off by default and free when off.
The flags are exported as ``REPRO_METRICS`` / ``REPRO_TRACE`` /
``REPRO_TRACE_JSONL`` so spawned worker processes inherit them.  The
top-level ``--log-level/--log-json/-q/--verbose`` flags configure the
stdlib-``logging`` backbone every progress line now flows through.

``--batch {auto,on,off}`` (on ``run``/``resume``/``worker``) routes
eligible cells — ring/NS/FSYNC under an oblivious adversary — through
the vectorized batch executor (:mod:`repro.core.batch`); it is pure
execution routing, never cell identity: store keys, records and reports
are byte-identical to the scalar path.

``--store`` accepts a backend URI everywhere: ``sqlite:results/t2.db``
selects the concurrent, indexed SQLite backend, ``jsonl:`` (or a bare
path) the append-only JSONL default.  The distributed verbs need the
SQLite backend (the queue's lease transactions live in the same
database) and default to ``sqlite:results/<spec>.db``.

Single runs and campaign cells share one registry
(:mod:`repro.campaigns.registry`): every algorithm/adversary name below
is also a valid name in a campaign spec.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from .analysis.render import watch
from .campaigns.aggregate import aggregate_records, render_rows
from .campaigns.executor import run_cells
from .campaigns.presets import DEFAULT_SPEC, SPECS, get_spec, load_spec
from .campaigns.registry import (
    ADVERSARIES,
    ALGORITHMS,
    SCHEDULERS,
    build_cell_engine,
    default_horizon,
)
from .campaigns.spec import CellConfig
from .campaigns.stores import (
    ResultStore,
    export_store,
    fit_rows,
    open_store,
    render_error_rows,
    render_fit_rows,
    render_scatter,
)
from .core.errors import ConfigurationError
from .obs import expo as obs_expo
from .obs import logs as obs_logs
from .obs import metrics as obs_metrics
from .obs.history import add_bench_parsers, bench_main
from .theory.tables import render_map

_log = obs_logs.get_logger(__name__)


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Live Exploration of Dynamic Rings - reproduction CLI",
    )
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        help="logging threshold for repro.* loggers "
                             "(DEBUG/INFO/WARNING/ERROR; default INFO)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log lines as JSON objects on stderr "
                             "(machine-ingestable)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="warnings and errors only (silences progress "
                             "lines; results still print on stdout)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="debug logging (per-chunk detail)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("atlas", help="print the paper's feasibility map")
    sub.add_parser("list", help="list algorithms and adversaries")

    for name in ("run", "watch"):
        p = sub.add_parser(name, help=f"{name} an exploration")
        p.add_argument("algorithm", choices=sorted(ALGORITHMS))
        p.add_argument("-n", type=int, default=8, help="ring size (default 8)")
        p.add_argument("--bound", type=int, default=None,
                       help="known upper bound N (defaults to n)")
        p.add_argument("--agents", type=int, default=None,
                       help="number of agents (defaults per algorithm)")
        p.add_argument("--adversary", choices=sorted(ADVERSARIES), default="random")
        p.add_argument("--edge", type=int, default=0,
                       help="edge index for fixed/periodic adversaries")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-chirality", action="store_true",
                       help="flip agent 1's orientation")
        p.add_argument("--rounds", type=int, default=None,
                       help="horizon (default: generous per algorithm)")
        p.add_argument("--faults", default="", metavar="PLAN",
                       help="fault plan: comma-separated crash:A@R (agent A "
                            "crashes at round R), lost:A or lost:* (lost when "
                            "waiting on a removed edge), rate:P (per-round "
                            "crash probability); default: fault-free")

    campaign = sub.add_parser(
        "campaign", help="parallel, resumable experiment campaigns")
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    for verb, help_text in (
        ("run", "expand a sweep spec and execute every pending cell"),
        ("resume", "continue an interrupted campaign from its store"),
    ):
        p = csub.add_parser(verb, help=help_text)
        p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                       help=f"named spec (default: {DEFAULT_SPEC}; "
                            f"see 'campaign list')")
        p.add_argument("--spec-file", default=None, metavar="PATH",
                       help="JSON/YAML spec file (overrides --spec)")
        p.add_argument("--store", default=None, metavar="URI",
                       help="result store: a path, jsonl:PATH or sqlite:PATH "
                            "(default: results/<spec>.jsonl)")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: all CPUs; 1 = serial)")
        p.add_argument("--chunk-size", type=int, default=None,
                       help="cells per work unit (default: auto)")
        p.add_argument("--limit", type=int, default=None,
                       help="only run the first LIMIT cells of the expansion")
        p.add_argument("--no-report", action="store_true",
                       help="skip the aggregate table after the run")
        p.add_argument("--debug-invariants", action="store_true",
                       help="run every cell with the per-round engine audit "
                            "on (campaigns default it off for throughput)")
        p.add_argument("--retry-failed", action="store_true",
                       help="also re-run cells whose only stored outcome is "
                            "an error record (default: failures are skipped "
                            "like completed cells)")
        p.add_argument("--distributed", action="store_true",
                       help="execute through the lease-based work queue: "
                            "enqueue pending cells in the (SQLite) store, "
                            "spawn --workers local worker processes, and let "
                            "any extra 'campaign worker' processes on other "
                            "hosts join the same queue")
        p.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                       help="distributed lease time-to-live in seconds: a "
                            "worker silent this long is presumed dead and "
                            "its chunk is stolen (default: 30)")
        p.add_argument("--batch", choices=("auto", "on", "off"), default=None,
                       help="vectorized batch execution: auto routes "
                            "eligible cells through the lockstep NumPy core "
                            "(scalar fallback otherwise), on requires it, "
                            "off forces the scalar path; never changes "
                            "results or store keys (default: auto)")
        _add_obs_flags(p)

    p = csub.add_parser(
        "enqueue",
        help="persist a spec's pending cells as claimable chunks (multi-host)")
    p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                   help=f"named spec (default: {DEFAULT_SPEC})")
    p.add_argument("--spec-file", default=None, metavar="PATH",
                   help="JSON/YAML spec file (overrides --spec)")
    p.add_argument("--store", default=None, metavar="URI",
                   help="SQLite result store hosting the queue "
                        "(default: sqlite:results/<spec>.db)")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="cells per claimable chunk (default: auto)")
    p.add_argument("--limit", type=int, default=None,
                   help="only enqueue the first LIMIT cells of the expansion")
    p.add_argument("--retry-failed", action="store_true",
                   help="also enqueue cells whose only stored outcome is an "
                        "error record")
    p.add_argument("--debug-invariants", action="store_true",
                   help="enqueue every cell with the per-round engine audit "
                        "on (applied here, at keying time — workers execute "
                        "chunks exactly as enqueued)")

    p = csub.add_parser(
        "worker",
        help="claim and run chunks from a shared store until the queue drains")
    p.add_argument("--store", default=None, metavar="URI",
                   help="SQLite result store hosting the queue "
                        "(default: sqlite:results/<campaign>.db)")
    p.add_argument("--campaign", required=True, metavar="NAME",
                   help="campaign tag the chunks were enqueued under "
                        "(the spec name)")
    p.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                   help="lease time-to-live in seconds (default: 30); must "
                        "match the fleet's")
    p.add_argument("--poll", type=float, default=0.5, metavar="S",
                   help="seconds between claim attempts when empty-handed")
    p.add_argument("--max-chunks", type=int, default=None,
                   help="exit after completing this many chunks")
    p.add_argument("--max-attempts", type=int, default=None,
                   help="park a chunk as failed after this many claim "
                        "attempts instead of stealing it again "
                        "(default: 5; poison-chunk protection)")
    p.add_argument("--worker-id", default=None,
                   help="fleet-unique identity (default: <host>-<pid>)")
    p.add_argument("--batch", choices=("auto", "on", "off"), default=None,
                   help="vectorized batch execution for claimed chunks "
                        "(default: auto; routing never changes results, so "
                        "a mixed fleet is fine)")
    _add_obs_flags(p)

    p = csub.add_parser(
        "status", help="live fleet telemetry for a distributed campaign")
    p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                   help="spec name used to locate the default store")
    p.add_argument("--spec-file", default=None, metavar="PATH",
                   help="JSON/YAML spec file (overrides --spec)")
    p.add_argument("--store", default=None, metavar="URI",
                   help="SQLite result store hosting the queue "
                        "(default: sqlite:results/<spec>.db)")
    p.add_argument("--campaign", default=None, metavar="NAME",
                   help="campaign tag (default: the spec's name)")
    p.add_argument("--watch", action="store_true",
                   help="re-render every --interval seconds until the queue "
                        "finishes")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="refresh period for --watch (default: 2)")
    p.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                   help="lease time-to-live used to classify workers/leases "
                        "as dead (default: 30); must match the fleet's")

    p = csub.add_parser("report", help="aggregate a result store into table rows")
    p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                   help="spec name used to locate the default store")
    p.add_argument("--spec-file", default=None, metavar="PATH",
                   help="JSON/YAML spec file (overrides --spec)")
    p.add_argument("--store", default=None, metavar="URI",
                   help="result store: a path, jsonl:PATH or sqlite:PATH "
                        "(default: results/<spec>.jsonl)")
    p.add_argument("--by", default="label,algorithm,ring_size",
                   help="comma-separated config dimensions to group by")
    p.add_argument("--fit", action="store_true",
                   help="also shape-fit rounds/moves vs ring size per label "
                        "(linear vs n log n vs quadratic; needs numpy)")
    p.add_argument("--reduce", choices=("mean", "p50", "p90", "p99"),
                   default="mean",
                   help="per-sweep-point reducer for the --fit series "
                        "(default: mean; percentiles fit the tails instead)")
    p.add_argument("--scatter", action="store_true",
                   help="also print per-seed (unreduced) scatter rows, one "
                        "line per stored record, grouped like the table")
    p.add_argument("--errors", action="store_true",
                   help="also list errored cells (cells whose only stored "
                        "outcome is an error record; re-drive them with "
                        "'campaign resume --retry-failed')")

    p = csub.add_parser(
        "metrics",
        help="merged fleet metrics from the store's worker snapshots")
    p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                   help="spec name used to locate the default store")
    p.add_argument("--spec-file", default=None, metavar="PATH",
                   help="JSON/YAML spec file (overrides --spec)")
    p.add_argument("--store", default=None, metavar="URI",
                   help="SQLite result store holding the telemetry tables "
                        "(default: sqlite:results/<spec>.db)")
    p.add_argument("--campaign", default=None, metavar="NAME",
                   help="campaign tag (default: the spec's name)")
    p.add_argument("--format", choices=("table", "json", "prom"),
                   default="table",
                   help="table: aligned human report; json: summarised "
                        "snapshot; prom: Prometheus textfile exposition "
                        "(default: table)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the report to PATH instead of stdout "
                        "(e.g. a node_exporter textfile collector dir)")

    p = csub.add_parser(
        "trace",
        help="trace analytics over recorded campaign→chunk→cell spans")
    p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                   help="spec name used to locate the default store")
    p.add_argument("--spec-file", default=None, metavar="PATH",
                   help="JSON/YAML spec file (overrides --spec)")
    p.add_argument("--store", default=None, metavar="URI",
                   help="SQLite result store holding the spans table "
                        "(default: sqlite:results/<spec>.db)")
    p.add_argument("--campaign", default=None, metavar="NAME",
                   help="campaign tag (default: the spec's name)")
    p.add_argument("--jsonl", default=None, metavar="PATH",
                   help="read spans from a REPRO_TRACE_JSONL file instead "
                        "of the store (works with any backend)")
    p.add_argument("--timeline", action="store_true",
                   help="per-worker ASCII Gantt of chunk execution over "
                        "the campaign wall clock")
    p.add_argument("--critical-path", action="store_true",
                   help="wall-clock attribution (queue-wait/claim/execute/"
                        "commit) and the longest span chain")
    p.add_argument("--stragglers", action="store_true",
                   help="chunks and workers ranked vs the fleet median")
    p.add_argument("--format", choices=("text", "json", "chrome"),
                   default="text",
                   help="text: human report; json: the requested analyses "
                        "as one JSON object; chrome: Chrome trace-event "
                        "JSON for ui.perfetto.dev (default: text)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the report to PATH instead of stdout")

    p = csub.add_parser(
        "profile",
        help="phase-attribution profile from the fleet's metrics snapshots")
    p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                   help="spec name used to locate the default store")
    p.add_argument("--spec-file", default=None, metavar="PATH",
                   help="JSON/YAML spec file (overrides --spec)")
    p.add_argument("--store", default=None, metavar="URI",
                   help="SQLite result store holding the telemetry tables "
                        "(default: sqlite:results/<spec>.db)")
    p.add_argument("--campaign", default=None, metavar="NAME",
                   help="campaign tag (default: the spec's name)")
    p.add_argument("--format", choices=("table", "json", "folded"),
                   default="table",
                   help="table: aligned human report; json: phase/route "
                        "rows; folded: collapsed stacks for speedscope/"
                        "flamegraph tools (default: table)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the profile to PATH instead of stdout "
                        "(e.g. profile.folded for speedscope)")

    p = csub.add_parser(
        "fsck",
        help="validate a result store's integrity (torn lines, orphaned "
             "leases, duplicate keys, chunk/span consistency)")
    p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                   help="spec name used to locate the default store")
    p.add_argument("--spec-file", default=None, metavar="PATH",
                   help="JSON/YAML spec file (overrides --spec)")
    p.add_argument("--store", default=None, metavar="URI",
                   help="result store: a path, jsonl:PATH or sqlite:PATH "
                        "(default: results/<spec>.jsonl, falling back to "
                        "results/<spec>.db)")
    p.add_argument("--quarantine", action="store_true",
                   help="repair what can be repaired: move torn JSONL lines "
                        "to a .quarantine sidecar, drop orphaned leases, "
                        "return leaseless chunks to pending")

    p = csub.add_parser(
        "export", help="export a result store as a columnar file")
    p.add_argument("--spec", default=DEFAULT_SPEC, metavar="NAME",
                   help="spec name used to locate the default store")
    p.add_argument("--spec-file", default=None, metavar="PATH",
                   help="JSON/YAML spec file (overrides --spec)")
    p.add_argument("--store", default=None, metavar="URI",
                   help="result store: a path, jsonl:PATH or sqlite:PATH "
                        "(default: results/<spec>.jsonl)")
    p.add_argument("--out", required=True, metavar="PATH",
                   help="destination file (.csv, or .parquet with pyarrow)")
    p.add_argument("--format", choices=("csv", "parquet"), default=None,
                   help="output format (default: from the --out suffix)")

    csub.add_parser("list", help="list the named campaign specs")

    bench = sub.add_parser(
        "bench",
        help="bench-history regression guard (record/check headlines)")
    bsub = bench.add_subparsers(dest="bench_command", required=True)
    add_bench_parsers(bsub)
    return parser


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """``--metrics/--trace/--trace-jsonl`` for verbs that execute cells."""
    p.add_argument("--metrics", action="store_true",
                   help="record counters/histograms (queue claim latency, "
                        "engine phase timings, batch share) and print a "
                        "metrics report after the summary; exported as "
                        "REPRO_METRICS=1 so worker processes inherit it")
    p.add_argument("--trace", action="store_true",
                   help="record campaign→chunk→cell spans into the SQLite "
                        "store's spans table (REPRO_TRACE=1)")
    p.add_argument("--trace-jsonl", default=None, metavar="PATH",
                   help="also append spans as JSON lines to PATH "
                        "(REPRO_TRACE_JSONL; works with any store backend)")


def build_from_args(args) -> tuple:
    """Translate single-run CLI flags into a campaign cell and build it."""
    entry = ALGORITHMS[args.algorithm]
    agents = args.agents or entry.default_agents
    no_chirality = args.no_chirality
    unconscious = "unconscious" in args.algorithm
    cell = CellConfig(
        algorithm=args.algorithm,
        ring_size=args.n,
        max_rounds=args.rounds or default_horizon(entry.transport, args.n),
        agents=agents,
        seed=args.seed,
        adversary=args.adversary,
        transport=entry.transport.value,
        chirality=not no_chirality,
        flipped=(1,) if no_chirality and agents >= 2 else (),
        bound=args.bound,
        edge=args.edge,
        stop_on_exploration=unconscious,
        faults=getattr(args, "faults", ""),
    )
    return build_cell_engine(cell), cell.max_rounds, unconscious


def _campaign_spec(args):
    if args.spec_file:
        return load_spec(args.spec_file)
    return get_spec(args.spec)


def _campaign_store(args, spec, *, distributed: bool = False) -> ResultStore:
    """The command's store: JSONL by default, SQLite for distributed verbs
    (the lease queue lives in the same database as the results).

    When no ``--store`` is given and the JSONL default does not exist
    but the distributed default (``results/<spec>.db``) does, read
    commands fall back to it — so ``campaign report`` finds the results
    of a ``campaign run --distributed`` without repeating the URI.
    """
    if args.store:
        return open_store(args.store, campaign=spec.name)
    jsonl_default = Path("results") / f"{spec.name}.jsonl"
    db_default = Path("results") / f"{spec.name}.db"
    target = db_default if distributed else jsonl_default
    if not distributed and not jsonl_default.exists() and db_default.exists():
        target = db_default
    return open_store(target, campaign=spec.name)


def _lease_ttl(args) -> float:
    from .campaigns.distributed import DEFAULT_LEASE_TTL_S

    ttl = getattr(args, "lease_ttl", None)
    return ttl if ttl is not None else DEFAULT_LEASE_TTL_S


def _apply_obs_flags(args) -> None:
    """Export the observability flags as environment variables.

    The env — not in-process state — is the contract: pool children and
    spawned local workers inherit it, and multi-host workers accept the
    same variables directly.
    """
    if getattr(args, "metrics", False):
        os.environ["REPRO_METRICS"] = "1"
    if getattr(args, "trace", False):
        os.environ["REPRO_TRACE"] = "1"
    if getattr(args, "trace_jsonl", None):
        os.environ["REPRO_TRACE_JSONL"] = args.trace_jsonl


class _Milestones:
    """Log campaign progress at ~10% steps (replaces the ``\\r`` ticker —
    log lines must stay one-per-event for ``--log-json`` consumers)."""

    def __init__(self, step: float = 0.1) -> None:
        self._step = step
        self._next = step
        self._last = -1

    def __call__(self, done: int, total: int) -> None:
        if not total or done == self._last:
            return
        frac = done / total
        if frac >= self._next or done == total:
            self._last = done
            _log.info("%d/%d cells (%.0f%%)", done, total, frac * 100)
            while self._next <= frac:
                self._next += self._step


def _print_metrics(snapshot, title: str) -> None:
    if snapshot:
        print(obs_expo.render_table(snapshot, title=title))


def campaign_main(args) -> int:
    if args.campaign_command == "list":
        for name in sorted(SPECS):
            spec = SPECS[name]()
            print(f"{name:<16} {spec.size():>4} cells  {spec.description}")
        return 0

    if args.campaign_command == "worker":
        # Workers need no spec: chunks carry fully serialised cells.
        from .campaigns.distributed import run_worker

        _apply_obs_flags(args)
        target = args.store or f"sqlite:results/{args.campaign}.db"
        try:
            report = run_worker(
                target,
                campaign=args.campaign,
                worker_id=args.worker_id,
                lease_ttl_s=_lease_ttl(args),
                poll_s=args.poll,
                max_chunks=args.max_chunks,
                **({"max_attempts": args.max_attempts}
                   if args.max_attempts is not None else {}),
                progress=_log.info,
                batch=args.batch,
            )
        except KeyboardInterrupt:
            # run_worker released any held chunk on the way out.
            _log.warning("worker interrupted; held lease released")
            return 130
        print(report.summary())
        _print_metrics(report.metrics,
                       title=f"metrics — worker {report.worker_id}")
        return 0

    spec = _campaign_spec(args)

    if args.campaign_command == "enqueue":
        from .campaigns.distributed import enqueue_campaign

        store = _campaign_store(args, spec, distributed=True)
        cells = spec.cell_list()
        if args.limit is not None:
            cells = cells[:args.limit]
        if args.debug_invariants:
            from dataclasses import replace

            cells = [replace(c, debug_invariants=True) for c in cells]
        _, report = enqueue_campaign(
            spec, store, cells=cells,
            chunk_size=args.chunk_size, retry_failed=args.retry_failed,
        )
        print(f"campaign {spec.name}: {report.summary()} -> {store.uri()}")
        return 0

    if args.campaign_command == "status":
        from .campaigns.distributed import (
            fleet_status,
            render_status,
            watch_status,
        )

        campaign = args.campaign or spec.name
        target = args.store or Path("results") / f"{campaign}.db"
        store = open_store(target, campaign=campaign)
        if not store.exists():
            _log.error("no result store at %s", store.path)
            return 1
        ttl = _lease_ttl(args)
        if args.watch:
            try:
                watch_status(store, lease_ttl_s=ttl, interval_s=args.interval)
            except KeyboardInterrupt:
                # the promised UX: Ctrl-C stops the watch, not the fleet
                _log.warning("watch stopped (the fleet keeps running)")
                return 130
        else:
            print(render_status(fleet_status(store, lease_ttl_s=ttl)))
        return 0

    if args.campaign_command == "metrics":
        from .campaigns.distributed import store_metrics

        campaign = args.campaign or spec.name
        target = args.store or Path("results") / f"{campaign}.db"
        store = open_store(target, campaign=campaign)
        if not store.exists():
            _log.error("no result store at %s", store.path)
            return 1
        merged, fleet = store_metrics(store)
        if args.format == "json":
            text = json.dumps(obs_expo.to_json(merged, fleet),
                              indent=2, sort_keys=True)
        elif args.format == "prom":
            text = obs_expo.prometheus_text(
                merged, labels={"campaign": campaign})
        else:
            text = obs_expo.render_table(
                merged, fleet=fleet,
                title=f"campaign {campaign} — metrics ({store.uri()})")
        if args.out:
            Path(args.out).write_text(text + "\n", encoding="utf-8")
            _log.info("wrote %s metrics to %s", args.format, args.out)
        else:
            print(text)
        return 0

    if args.campaign_command == "trace":
        from .obs import analyze as obs_analyze

        campaign = args.campaign or spec.name
        if args.jsonl:
            spans = obs_analyze.load_spans(args.jsonl,
                                           campaign=args.campaign)
        else:
            target = args.store or Path("results") / f"{campaign}.db"
            store = open_store(target, campaign=campaign)
            if not store.exists():
                _log.error("no result store at %s", store.path)
                return 1
            if not hasattr(store, "spans"):
                raise ConfigurationError(
                    f"store backend {type(store).__name__} ({store.uri()}) "
                    "has no spans table — use a SQLite store "
                    "(--store sqlite:PATH) or --jsonl PATH")
            spans = obs_analyze.load_spans(store)
        if not spans:
            _log.error("no spans recorded for campaign %r — run the fleet "
                       "with --trace (or --trace-jsonl)", campaign)
            return 1
        if args.format == "chrome":
            text = json.dumps(obs_analyze.chrome_trace(spans))
        elif args.format == "json":
            views: dict = {"spans": len(spans)}
            if args.critical_path or not args.stragglers:
                views["critical_path"] = obs_analyze.critical_path(spans)
            if args.stragglers:
                views["stragglers"] = obs_analyze.stragglers(spans)
            text = json.dumps(views, indent=2, sort_keys=True)
        else:
            sections = []
            if args.timeline:
                sections.append(obs_analyze.render_timeline(spans))
            if args.critical_path:
                sections.append(obs_analyze.render_critical_path(
                    obs_analyze.critical_path(spans)))
            if args.stragglers:
                sections.append(obs_analyze.render_stragglers(
                    obs_analyze.stragglers(spans)))
            if not sections:
                sections.append(obs_analyze.render_tree(spans))
            text = "\n\n".join(sections)
        if args.out:
            Path(args.out).write_text(text + "\n", encoding="utf-8")
            _log.info("wrote %s trace report to %s", args.format, args.out)
        else:
            print(text)
        return 0

    if args.campaign_command == "profile":
        from .campaigns.distributed import store_metrics
        from .obs import profile as obs_profile

        campaign = args.campaign or spec.name
        target = args.store or Path("results") / f"{campaign}.db"
        store = open_store(target, campaign=campaign)
        if not store.exists():
            _log.error("no result store at %s", store.path)
            return 1
        merged, _fleet = store_metrics(store)
        if args.format == "json":
            text = json.dumps(obs_profile.profile_data(merged),
                              indent=2, sort_keys=True)
        elif args.format == "folded":
            text = obs_profile.folded_stacks(merged)
        else:
            text = obs_profile.render_profile(
                merged,
                title=f"campaign {campaign} — profile ({store.uri()})")
        if args.out:
            Path(args.out).write_text(text + "\n", encoding="utf-8")
            _log.info("wrote %s profile to %s", args.format, args.out)
        else:
            print(text)
        return 0

    if args.campaign_command == "fsck":
        from .resilience import fsck_store

        store = _campaign_store(args, spec)
        if not store.exists():
            _log.error("no result store at %s", store.path)
            return 1
        report = fsck_store(store, quarantine=args.quarantine)
        print(report.render())
        return 0 if report.ok else 1

    if args.campaign_command == "report":
        store = _campaign_store(args, spec)
        if not store.exists():
            _log.error("no result store at %s", store.path)
            return 1
        by = tuple(d.strip() for d in args.by.split(",") if d.strip())
        query = store.query()
        if args.fit or args.scatter:
            # one store scan feeds the aggregate table, fits and scatter
            records = list(query.records())
            rows = aggregate_records(records, by=by)
        else:
            records = None
            rows = query.table(by=by)
        print(render_rows(rows, title=f"campaign {spec.name} ({store.uri()})"))
        if args.fit:
            print()
            print(render_fit_rows(
                fit_rows(query, records=records, reduce=args.reduce),
                title="complexity-shape fits over ring_size "
                      f"({args.reduce} per size; best of "
                      "linear/nlogn/quadratic)"))
        if args.scatter:
            print()
            print(render_scatter(
                records, by=by,
                title="per-seed scatter (one row per stored record)"))
        if args.errors:
            print()
            print(render_error_rows(
                query.errors(),
                title="errored cells (only outcome is an error record; "
                      "re-drive with 'campaign resume --retry-failed')"))
        return 0

    if args.campaign_command == "export":
        store = _campaign_store(args, spec)
        if not store.exists():
            _log.error("no result store at %s", store.path)
            return 1
        result = export_store(store, args.out, format=args.format)
        print(result.summary())
        return 0

    # run / resume
    _apply_obs_flags(args)
    store = _campaign_store(args, spec, distributed=args.distributed)
    if args.campaign_command == "resume" and not store.exists():
        _log.error("nothing to resume: no store at %s", store.path)
        return 1
    cells = spec.cell_list()
    if args.limit is not None:
        cells = cells[:args.limit]
    mode = " [distributed]" if args.distributed else ""
    print(f"campaign {spec.name}: {len(cells)} cells -> {store.uri()}{mode}")
    debug = True if args.debug_invariants else None
    if args.distributed:
        from .campaigns.distributed import run_distributed

        run = run_distributed(
            spec, store, cells=cells,
            workers=args.workers, chunk_size=args.chunk_size,
            lease_ttl_s=_lease_ttl(args), retry_failed=args.retry_failed,
            debug_invariants=debug, progress=_Milestones(),
            batch=args.batch,
        )
    else:
        run = run_cells(
            cells, store,
            workers=args.workers, chunk_size=args.chunk_size,
            progress=_Milestones(), debug_invariants=debug,
            retry_failed=args.retry_failed, batch=args.batch,
        )
    print(run.summary())
    _print_metrics(run.metrics, title=f"metrics — campaign {spec.name}")
    if not args.no_report:
        print(render_rows(store.query().table(), title=f"campaign {spec.name}"))
    return 1 if run.failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        obs_logs.configure(
            obs_logs.resolve_level(
                args.log_level, quiet=args.quiet, verbose=args.verbose),
            json_lines=args.log_json)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return _dispatch(args)
    except ConfigurationError as exc:
        _log.error("%s", exc)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(args) -> int:
    if args.command == "atlas":
        print("Feasibility map (Tables 1-4):")
        print(render_map())
        return 0

    if args.command == "list":
        print("algorithms :", ", ".join(sorted(ALGORITHMS)))
        print("adversaries:", ", ".join(sorted(ADVERSARIES)))
        print("schedulers :", ", ".join(sorted(SCHEDULERS)))
        print("campaigns  :", ", ".join(sorted(SPECS)))
        return 0

    if args.command == "campaign":
        return campaign_main(args)

    if args.command == "bench":
        return bench_main(args)

    engine, horizon, unconscious = build_from_args(args)
    if args.command == "watch":
        watch(engine, horizon)
        return 0

    result = engine.run(horizon, stop_on_exploration=unconscious)
    print(result.summary())
    return 0 if result.explored else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
