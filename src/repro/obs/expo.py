"""Exposition: render a (merged) metrics snapshot for humans and scrapers.

Three formats, all fed by the same snapshot dict produced by
``metrics.snapshot()`` / ``metrics.merge_snapshots``:

* :func:`render_table` — aligned text for the terminal (`campaign
  metrics`, and the summary block `--metrics` appends to run/worker
  output).
* :func:`prometheus_text` — the Prometheus textfile format
  (node_exporter textfile-collector compatible): dotted metric names
  become ``repro_``-prefixed snake_case, counters gain ``_total``,
  histograms expose ``{quantile=...}`` samples plus ``_count``/``_sum``.
* plain JSON — ``json.dumps`` of :func:`to_json`, which replaces raw
  histogram reservoirs with derived summaries (count/sum/percentiles).
"""

from __future__ import annotations

import re
from typing import Mapping

from .metrics import PERCENTILES, summarize_histogram

__all__ = ["prometheus_text", "prom_name", "render_table", "to_json"]


def _fmt(value: float | int | None) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.3e}"


def render_table(snapshot: Mapping[str, dict], *, title: str = "metrics",
                 fleet: Mapping | None = None) -> str:
    """Aligned human-readable table of a snapshot (+ optional fleet block)."""
    lines = [f"== {title}"]
    if not snapshot and not fleet:
        lines.append("  (no metrics recorded)")
        return "\n".join(lines)
    width = max((len(name) for name in snapshot), default=0)
    for name, dump in snapshot.items():
        kind = dump.get("type")
        if kind == "histogram":
            s = summarize_histogram(dump)
            detail = (f"count={s['count']} p50={_fmt(s['p50'])} "
                      f"p90={_fmt(s['p90'])} p99={_fmt(s['p99'])} "
                      f"sum={_fmt(s['sum'])}")
        else:
            detail = _fmt(dump.get("value"))
        lines.append(f"  {name:<{width}}  {kind:<9}  {detail}")
    if fleet:
        lines.append("  -- fleet --")
        for key, value in fleet.items():
            if isinstance(value, Mapping):
                detail = " ".join(f"{k}={_fmt(v)}" for k, v in value.items())
            else:
                detail = _fmt(value)
            lines.append(f"  {key:<{width}}  {detail}")
    return "\n".join(lines)


def to_json(snapshot: Mapping[str, dict],
            fleet: Mapping | None = None) -> dict:
    """JSON-friendly snapshot: histograms become derived summaries."""
    out: dict = {}
    for name, dump in snapshot.items():
        if dump.get("type") == "histogram":
            out[name] = {"type": "histogram", **summarize_histogram(dump)}
        else:
            out[name] = dict(dump)
    payload = {"metrics": out}
    if fleet is not None:
        payload["fleet"] = dict(fleet)
    return payload


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def prom_name(name: str) -> str:
    return "repro_" + _PROM_BAD.sub("_", name)


def _prom_labels(labels: Mapping[str, str] | None,
                 extra: Mapping[str, str] | None = None) -> str:
    merged = {**(labels or {}), **(extra or {})}
    if not merged:
        return ""
    body = ",".join(f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
                    for k, v in merged.items())
    return "{" + body + "}"


def prometheus_text(snapshot: Mapping[str, dict], *,
                    labels: Mapping[str, str] | None = None) -> str:
    """Prometheus textfile exposition of a snapshot."""
    lines: list[str] = []
    for name, dump in snapshot.items():
        kind = dump.get("type")
        base = prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {base}_total counter")
            lines.append(f"{base}_total{_prom_labels(labels)} "
                         f"{dump.get('value', 0)}")
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base}{_prom_labels(labels)} "
                         f"{dump.get('value', 0)}")
        elif kind == "histogram":
            s = summarize_histogram(dump)
            lines.append(f"# TYPE {base} summary")
            for p in PERCENTILES:
                q = s.get(f"p{int(p)}")
                if q is not None:
                    lines.append(
                        f"{base}{_prom_labels(labels, {'quantile': p / 100.0})}"
                        f" {q:.9g}")
            lines.append(f"{base}_count{_prom_labels(labels)} {s['count']}")
            lines.append(f"{base}_sum{_prom_labels(labels)} "
                         f"{s['sum']:.9g}")
    return "\n".join(lines) + ("\n" if lines else "")
