"""Bench-history time series: record headlines, guard against regressions.

Every benchmark run overwrites ``BENCH_engine.json`` in place, so the
repo's perf trajectory was a single point.  ``python -m repro bench
record`` appends the headline numbers of one bench file to a committed
``BENCH_history.jsonl`` — one JSON object per run, keyed by git SHA and
timestamp — and ``python -m repro bench check`` exits non-zero when the
*latest* entry drops below a configurable fraction (default 0.7) of the
trailing median for any headline, turning the series into a CI-enforced
regression guard.

Every headline is higher-is-better (throughputs and speedups); the 0.7
default fraction absorbs CI-runner noise and the smoke-vs-full spread
while still catching the 2x cliffs that matter.  Entries whose bench
``mode`` differs from the latest entry's are still compared — mode is
recorded so a human reading the file can see why a value moved.

``benchmarks/history.py`` is a thin shim over :func:`main` for people
who reach for the benchmarks directory first.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping

from .analyze import median

__all__ = [
    "HEADLINES",
    "HISTORY_SCHEMA",
    "check",
    "extract_headlines",
    "load_history",
    "main",
    "record",
]

HISTORY_SCHEMA = 1

#: Headline name -> key path into ``BENCH_engine.json``.  All are
#: higher-is-better.  A path missing from a bench file (e.g. a smoke
#: run without the graph section) simply records no value for that
#: headline — ``check`` compares only headlines the latest entry has.
HEADLINES: dict[str, tuple[str, ...]] = {
    "engine.rounds_per_s": ("headline", "optimized", "rounds_per_s"),
    "engine.speedup": ("headline", "speedup"),
    "batch.cells_per_s": ("batch", "headline", "batched", "cells_per_s"),
    "batch.speedup": ("batch", "headline", "speedup"),
    "batch.pt_et.speedup": ("batch", "headline_pt_et", "speedup"),
    "batch.ssync.speedup": ("batch", "headline_ssync", "speedup"),
    "rule_dispatch.speedup": ("rule_dispatch", "speedup"),
}


def extract_headlines(bench: Mapping[str, Any]) -> dict[str, float]:
    """The headline numbers present in one bench-results mapping."""
    out: dict[str, float] = {}
    for name, path in HEADLINES.items():
        node: Any = bench
        for key in path:
            if not isinstance(node, Mapping) or key not in node:
                node = None
                break
            node = node[key]
        if isinstance(node, (int, float)):
            out[name] = float(node)
    return out


def _git_sha(explicit: str | None = None) -> str:
    if explicit:
        return explicit
    env = os.environ.get("GITHUB_SHA")
    if env:
        return env[:12]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def load_history(path: Path | str) -> list[dict]:
    """Parsed history entries, file order (oldest first)."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        if line.strip():
            entries.append(json.loads(line))
    return entries


def record(bench_path: Path | str, history_path: Path | str, *,
           git_sha: str | None = None,
           now: float | None = None) -> dict:
    """Append one bench file's headlines to the history; return the entry."""
    bench_path = Path(bench_path)
    bench = json.loads(bench_path.read_text())
    headlines = extract_headlines(bench)
    if not headlines:
        raise ValueError(
            f"{bench_path} holds none of the known headlines "
            f"({', '.join(HEADLINES)}) — not a BENCH_engine.json?")
    entry = {
        "schema": HISTORY_SCHEMA,
        "recorded_at": round(now if now is not None else time.time(), 3),
        "git_sha": _git_sha(git_sha),
        "mode": bench.get("mode", "full"),
        "headlines": {k: headlines[k] for k in sorted(headlines)},
    }
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True,
                            separators=(",", ":")) + "\n")
    return entry


def check(history_path: Path | str, *, fraction: float = 0.7,
          window: int = 10) -> list[str]:
    """Regressions in the latest entry vs the trailing median (empty = ok).

    For each headline the latest entry carries, take up to ``window``
    prior entries that also carry it; flag the headline when
    ``latest < fraction * median(trailing)``.  A history with fewer
    than two entries has no baseline and always passes.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    entries = load_history(history_path)
    if len(entries) < 2:
        return []
    latest = entries[-1]
    problems: list[str] = []
    for name, value in (latest.get("headlines") or {}).items():
        trailing = [e["headlines"][name] for e in entries[:-1]
                    if name in (e.get("headlines") or {})]
        trailing = trailing[-window:]
        med = median(trailing)
        if med is None or med <= 0:
            continue
        if value < fraction * med:
            problems.append(
                f"{name}: {value:g} is below {fraction:g} x trailing "
                f"median {med:g} (latest {latest.get('git_sha', '?')}, "
                f"n={len(trailing)})")
    return problems


# --------------------------------------------------------------------------
# CLI (python -m repro bench record|check; benchmarks/history.py shims here)
# --------------------------------------------------------------------------

def add_bench_parsers(sub) -> None:
    """Attach the ``record``/``check`` subparsers (shared with the shim)."""
    p = sub.add_parser(
        "record", help="append a bench file's headlines to the history")
    p.add_argument("--bench", default="BENCH_engine.json", metavar="PATH",
                   help="bench results file (default: BENCH_engine.json)")
    p.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                   help="history file to append to "
                        "(default: BENCH_history.jsonl)")
    p.add_argument("--sha", default=None, metavar="SHA",
                   help="git SHA to stamp (default: GITHUB_SHA env, then "
                        "git rev-parse, then 'unknown')")
    p = sub.add_parser(
        "check",
        help="exit 1 when the latest entry regresses vs the trailing median")
    p.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                   help="history file (default: BENCH_history.jsonl)")
    p.add_argument("--fraction", type=float, default=0.7, metavar="F",
                   help="fail when a headline drops below F x the trailing "
                        "median (default: 0.7)")
    p.add_argument("--window", type=int, default=10, metavar="N",
                   help="trailing entries per headline in the median "
                        "(default: 10)")


def bench_main(args) -> int:
    """Dispatch for the parsed ``bench`` namespace (CLI + shim)."""
    if args.bench_command == "record":
        bench_path = Path(args.bench)
        if not bench_path.exists():
            print(f"no bench file at {bench_path}", file=sys.stderr)
            return 2
        entry = record(bench_path, args.history, git_sha=args.sha)
        pairs = " ".join(f"{k}={v:g}" for k, v in entry["headlines"].items())
        print(f"recorded {entry['git_sha']} ({entry['mode']}) -> "
              f"{args.history}: {pairs}")
        return 0
    if args.bench_command == "check":
        history_path = Path(args.history)
        if not history_path.exists():
            print(f"no bench history at {history_path}", file=sys.stderr)
            return 2
        problems = check(history_path,
                         fraction=args.fraction, window=args.window)
        if problems:
            for problem in problems:
                print(f"bench regression: {problem}", file=sys.stderr)
            return 1
        entries = load_history(history_path)
        print(f"bench history ok: {len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'}, latest "
              f"{entries[-1].get('git_sha', '?') if entries else 'n/a'} "
              f"within {args.fraction:g}x of the trailing median")
        return 0
    raise ValueError(f"unknown bench command {args.bench_command!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-history", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="bench_command", required=True)
    add_bench_parsers(sub)
    return bench_main(parser.parse_args(argv))
