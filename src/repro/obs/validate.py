"""Span-trace validation: schema, vocabularies, hierarchy, duplicates.

The importable form of what used to live only in
``scripts/check_spans.py`` (now a thin shim): every check the CI
observability lane runs over a ``REPRO_TRACE_JSONL`` file is available
to library callers too — ``campaign trace`` validates the spans it is
about to analyse, and the unit tests exercise each rule directly.

Two entry points:

* :func:`check_span_records` — validate an in-memory sequence of span
  dicts (whatever :meth:`SqliteStore.spans` or a parsed JSONL file
  yields);
* :func:`check_spans` — parse and validate a JSONL trace file (the
  historical script behaviour, including per-line JSON errors).

Both return a list of human-readable problem strings; an empty list
means the trace is valid.  Parent-kind checks apply only when the
referenced parent appears in the same span set: a multi-process fleet
may split one trace across sinks, so a dangling ``parent_id`` is not by
itself an error.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .spans import SPAN_KINDS, SPAN_SCHEMA

__all__ = [
    "PARENT_KIND",
    "REQUIRED_KEYS",
    "STATUSES",
    "check_span_records",
    "check_spans",
]

REQUIRED_KEYS = frozenset({
    "schema", "span_id", "parent_id", "kind", "name",
    "start_s", "elapsed_s", "status", "attrs",
})
STATUSES = frozenset({"ok", "error"})
#: Which parent kind each child kind must hang off (None = root allowed).
PARENT_KIND = {"campaign": None, "chunk": "campaign", "cell": "chunk"}


def check_span_records(
    records: Iterable[tuple[object, Mapping]] | Iterable[Mapping],
    require_kinds: Sequence[str] = (),
) -> list[str]:
    """Every problem found in a span set (empty list = valid).

    ``records`` is either a sequence of span dicts or of ``(label,
    span)`` pairs; the label (a line number, an index) prefixes each
    problem so a file-based caller can point at the offending line.
    """
    problems: list[str] = []
    spans: dict[str, Mapping] = {}
    rows: list[tuple[object, Mapping]] = []
    for item in records:
        if isinstance(item, tuple):
            label, span = item
        else:
            label, span = len(rows) + 1, item
        missing = REQUIRED_KEYS - span.keys()
        if missing:
            problems.append(
                f"span {label}: missing keys {sorted(missing)}")
            continue
        if span["schema"] != SPAN_SCHEMA:
            problems.append(
                f"span {label}: schema {span['schema']!r} != {SPAN_SCHEMA}")
        if span["kind"] not in SPAN_KINDS:
            problems.append(
                f"span {label}: unknown kind {span['kind']!r}")
        if span["status"] not in STATUSES:
            problems.append(
                f"span {label}: unknown status {span['status']!r}")
        if not isinstance(span["elapsed_s"], (int, float)) \
                or span["elapsed_s"] < 0:
            problems.append(
                f"span {label}: bad elapsed_s {span['elapsed_s']!r}")
        if not isinstance(span["start_s"], (int, float)) \
                or span["start_s"] <= 0:
            problems.append(
                f"span {label}: bad start_s {span['start_s']!r}")
        if not isinstance(span["attrs"], dict):
            problems.append(
                f"span {label}: attrs is not an object")
        if span["span_id"] in spans:
            problems.append(
                f"span {label}: duplicate span_id {span['span_id']!r}")
        spans[span["span_id"]] = span
        rows.append((label, span))

    for label, span in rows:
        parent = spans.get(span["parent_id"] or "")
        if parent is not None:
            want = PARENT_KIND.get(span["kind"])
            if want is not None and parent["kind"] != want:
                problems.append(
                    f"span {label}: {span['kind']} span "
                    f"{span['span_id']} hangs off a {parent['kind']} "
                    f"span (expected {want})")

    kinds = Counter(span["kind"] for _, span in rows)
    for kind in require_kinds:
        if not kinds.get(kind):
            problems.append(f"no {kind!r} span in the trace")
    return problems


def check_spans(path: Path, require_kinds: Sequence[str] = ()) -> list[str]:
    """Parse and validate a span JSONL file (empty list = valid trace)."""
    records: list[tuple[object, Mapping]] = []
    problems: list[str] = []
    for lineno, line in enumerate(
            Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        records.append((f"line {lineno}", span))
    problems.extend(check_span_records(records, require_kinds))
    # File callers historically read "line N: ..." with no extra prefix.
    return [p.replace("span line ", "line ") for p in problems]
