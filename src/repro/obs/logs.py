"""Stdlib-``logging`` backbone for the ``repro.*`` logger tree.

Every module logs through ``get_logger(__name__)``; nothing in the
library configures handlers at import time (library rule: emit, don't
configure).  The CLI entry point calls :func:`configure` exactly once
per invocation, which attaches a single stream handler to the
``repro`` root logger — plain text by default, JSON lines with
``--log-json`` — and sets the level from ``--log-level`` /
``--quiet`` / ``--verbose``.

``configure`` replaces any previous handlers, so repeated CLI
invocations inside one process (the test suite) rebind cleanly to the
current ``sys.stderr``.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import TextIO

__all__ = ["configure", "get_logger", "resolve_level", "JsonLogFormatter"]

ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` tree (idempotent for repro.* names)."""
    if not name:
        return logging.getLogger(ROOT)
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg (+ exc)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def resolve_level(log_level: str | None = None, *, quiet: bool = False,
                  verbose: bool = False) -> int:
    """Precedence: explicit ``--log-level`` > ``--quiet``/``--verbose``."""
    if log_level:
        try:
            return _LEVELS[log_level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {log_level!r}; "
                f"expected one of {', '.join(_LEVELS)}") from None
    if quiet:
        return logging.WARNING
    if verbose:
        return logging.DEBUG
    return logging.INFO


def configure(level: int | str = logging.INFO, *, json_lines: bool = False,
              stream: TextIO | None = None) -> logging.Logger:
    """Attach the single ``repro`` handler; safe to call repeatedly."""
    if isinstance(level, str):
        level = resolve_level(level)
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLogFormatter())
    else:
        formatter = logging.Formatter("%(levelname).1s %(name)s: %(message)s")
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
