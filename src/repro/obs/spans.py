"""Structured span tracing: the fleet-level sibling of ``core/trace.py``.

Where :mod:`repro.core.trace` records *model* events (one simulated
agent looking or moving inside one engine), spans record *system*
events: a campaign session on a worker, a claimed chunk, one executed
cell — each with an id, a parent id, wall-clock timings, and the
worker/host/route context needed to correlate a record in the result
store with the process that produced it.

Hierarchy (``kind`` vocabulary)::

    campaign            one run/worker session of a campaign
      └─ chunk          one run_chunk call (a claimed chunk, when
                        distributed; a pool/serial chunk otherwise)
           └─ cell      one executed cell (route=batch|scalar)

Spans are emitted to one or more sinks when they close:

* :class:`JsonlSpanSink` — one JSON object per line, appended with a
  single ``write`` on a line-buffered append-mode handle so concurrent
  pool workers can share one file.
* :class:`StoreSpanSink` — buffers spans and flushes them into the
  SQLite store's ``spans`` table (see ``stores/sqlite.py``); the
  distributed worker flushes after every chunk completion.

Like metrics, tracing is environment-gated so forked workers inherit
it: ``REPRO_TRACE_JSONL=<path>`` adds a JSONL sink and ``REPRO_TRACE=1``
adds a store sink (when the store supports it).  The ``campaign
--trace/--trace-jsonl`` flags set these before any worker starts.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "SPAN_KINDS",
    "SPAN_SCHEMA",
    "JsonlSpanSink",
    "SpanHandle",
    "SpanRecorder",
    "StoreSpanSink",
    "close_recorder",
    "ensure_recorder",
    "flush",
    "install",
    "new_span_id",
    "recorder",
    "tracing_requested",
]

SPAN_SCHEMA = 1
SPAN_KINDS = ("campaign", "chunk", "cell")


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class SpanHandle:
    """Mutable view of an open span, yielded by :meth:`SpanRecorder.span`."""

    __slots__ = ("span_id", "attrs", "status")

    def __init__(self, span_id: str) -> None:
        self.span_id = span_id
        self.attrs: dict = {}
        self.status = "ok"


class SpanRecorder:
    """Builds the span tree for one process and emits closed spans.

    The parent of a new span defaults to the innermost open span in
    this recorder (an explicit ``parent_id`` attr wins, which is how a
    pool child chunk links to the campaign span living in the parent
    process).  The stack is per-recorder and the recorder is used from
    one thread, matching how the executor and worker loops run.
    """

    def __init__(self, sinks: list[Callable[[dict], None]], *,
                 campaign: str = "", worker: str = "",
                 host: str | None = None) -> None:
        self._sinks = list(sinks)
        self.campaign = campaign
        self.worker = worker
        self.host = host if host is not None else socket.gethostname()
        self._stack: list[str] = []
        self._lock = threading.Lock()

    @contextmanager
    def span(self, kind: str, name: str,
             **attrs) -> Iterator[SpanHandle]:
        parent_id = attrs.pop("parent_id", None)
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        handle = SpanHandle(new_span_id())
        handle.attrs.update(attrs)
        start_s = time.time()
        t0 = time.perf_counter()
        self._stack.append(handle.span_id)
        try:
            yield handle
        except BaseException as exc:
            handle.status = "error"
            handle.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self._stack.pop()
            self.emit(kind, name, span_id=handle.span_id,
                      parent_id=parent_id, start_s=start_s,
                      elapsed_s=time.perf_counter() - t0,
                      status=handle.status, attrs=handle.attrs)

    def emit(self, kind: str, name: str, *, span_id: str | None = None,
             parent_id: str | None = None, start_s: float | None = None,
             elapsed_s: float | None = None, status: str = "ok",
             attrs: dict | None = None) -> str:
        """Emit a closed span directly (used for batched cells, whose
        per-cell timings are reconstructed after the vector run)."""
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        span = {
            "schema": SPAN_SCHEMA,
            "span_id": span_id or new_span_id(),
            "parent_id": parent_id,
            "kind": kind,
            "name": name,
            "campaign": self.campaign,
            "worker": self.worker,
            "host": self.host,
            "start_s": start_s if start_s is not None else time.time(),
            "elapsed_s": elapsed_s,
            "status": status,
            "attrs": attrs or {},
        }
        with self._lock:
            for sink in self._sinks:
                sink(span)
        return span["span_id"]

    def flush(self) -> None:
        with self._lock:
            for sink in self._sinks:
                flush_fn = getattr(sink, "flush", None)
                if flush_fn is not None:
                    flush_fn()

    def close(self) -> None:
        self.flush()
        with self._lock:
            for sink in self._sinks:
                close_fn = getattr(sink, "close", None)
                if close_fn is not None:
                    close_fn()


class JsonlSpanSink:
    """Append spans to a JSONL file, one atomic ``write`` per span."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")

    def __call__(self, span: dict) -> None:
        self._fh.write(json.dumps(span, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class StoreSpanSink:
    """Buffer spans and flush them into a store's ``spans`` table.

    The buffer keeps store writes off the per-cell path; the worker
    flushes after each chunk (and the sink self-flushes past
    ``max_buffer`` so unbounded chunks cannot hoard memory).
    """

    def __init__(self, store, *, max_buffer: int = 256) -> None:
        if not hasattr(store, "append_spans"):
            raise TypeError(
                f"store {type(store).__name__} cannot persist spans "
                "(no append_spans); use the SQLite backend or a JSONL sink")
        self.store = store
        self.max_buffer = max_buffer
        self._buffer: list[dict] = []

    def __call__(self, span: dict) -> None:
        self._buffer.append(span)
        if len(self._buffer) >= self.max_buffer:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            buffered, self._buffer = self._buffer, []
            self.store.append_spans(buffered)

    def close(self) -> None:
        self.flush()


# --------------------------------------------------------------------------
# Process-global recorder
# --------------------------------------------------------------------------

_RECORDER: SpanRecorder | None = None
_LOCK = threading.Lock()


def recorder() -> SpanRecorder | None:
    return _RECORDER


def install(rec: SpanRecorder | None) -> None:
    global _RECORDER
    with _LOCK:
        _RECORDER = rec


def tracing_requested() -> bool:
    return bool(os.environ.get("REPRO_TRACE_JSONL")) or \
        os.environ.get("REPRO_TRACE") == "1"


def ensure_recorder(store=None, *, campaign: str = "",
                    worker: str = "") -> SpanRecorder | None:
    """Install (or return) the process recorder per the environment.

    Returns None when tracing is not requested, or when the only
    requested sink is the store and this ``store`` cannot persist spans.
    """
    global _RECORDER
    with _LOCK:
        if _RECORDER is not None:
            if campaign and not _RECORDER.campaign:
                _RECORDER.campaign = campaign
            if worker and not _RECORDER.worker:
                _RECORDER.worker = worker
            return _RECORDER
        sinks: list[Callable[[dict], None]] = []
        jsonl_path = os.environ.get("REPRO_TRACE_JSONL")
        if jsonl_path:
            sinks.append(JsonlSpanSink(jsonl_path))
        if os.environ.get("REPRO_TRACE") == "1" and store is not None \
                and hasattr(store, "append_spans"):
            sinks.append(StoreSpanSink(store))
        if not sinks:
            return None
        _RECORDER = SpanRecorder(sinks, campaign=campaign, worker=worker)
        return _RECORDER


def flush() -> None:
    if _RECORDER is not None:
        _RECORDER.flush()


def close_recorder() -> None:
    global _RECORDER
    with _LOCK:
        if _RECORDER is not None:
            _RECORDER.close()
            _RECORDER = None
