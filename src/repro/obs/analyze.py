"""Trace analytics: the read side of the span hierarchy.

PR 7 made fleets *emit* campaign → chunk → cell spans (into the SQLite
``spans`` table, or a ``REPRO_TRACE_JSONL`` file); this module answers
the questions operators actually have about a finished (or running)
campaign — surfaced by ``python -m repro campaign trace``:

* :func:`render_tree` — the span hierarchy as an indented text tree;
* :func:`render_timeline` — a per-worker ASCII Gantt of chunk
  execution over the campaign's wall clock;
* :func:`critical_path` — wall-clock attribution (queue-wait vs claim
  vs execute vs commit, per worker session and fleet-wide) plus the
  longest chain: the latest-ending worker session, its dominant chunk,
  that chunk's dominant cell;
* :func:`stragglers` — chunks and workers ranked by deviation from the
  fleet median (steal victims and skewed hosts flagged);
* :func:`chrome_trace` — the whole tree as Chrome trace-event JSON
  (``ui.perfetto.dev`` / ``chrome://tracing`` open it directly).

Attribution model.  The distributed worker owns each chunk span end to
end (claim → execute → commit) and stamps ``claim_s`` / ``commit_s`` /
``queue_wait_s`` attrs on it, so for one worker session (a ``campaign``
span):

* ``claim``   = Σ chunk ``claim_s`` (queue transaction time),
* ``commit``  = Σ chunk ``commit_s`` (the exactly-once completion txn),
* ``execute`` = Σ (chunk elapsed − claim − commit),
* ``queue-wait`` = session elapsed − Σ chunk elapsed (idle polling,
  waiting for claimable work), clamped at 0.

Summed, the four buckets reproduce each session's elapsed time exactly,
so ``coverage`` (attributed seconds / Σ session seconds) is ~1.0 on a
clean trace and drops only when sessions are missing (a crashed worker
never closes its span) — the CI lane asserts ≥ 0.9.  Pool-mode
campaigns have no claim/commit phases and overlap chunks freely inside
one session; their chunks attribute wholly to ``execute`` and the
summary reports the parallelism factor instead.

The small helpers at the bottom (:func:`median`,
:func:`straggler_hint`) are shared with ``campaign status --watch``,
which renders a live one-line version of the straggler ranking.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..core.errors import ConfigurationError

__all__ = [
    "SpanNode",
    "build_tree",
    "chrome_trace",
    "critical_path",
    "load_spans",
    "median",
    "render_timeline",
    "render_tree",
    "straggler_hint",
    "stragglers",
]


# --------------------------------------------------------------------------
# Loading and tree building
# --------------------------------------------------------------------------

def load_spans(source: Any, *, campaign: str | None = None) -> list[dict]:
    """Spans from a store (``spans()`` method), a JSONL path, or a list.

    Returns normalized span dicts sorted by ``start_s`` — the shape
    :meth:`SqliteStore.spans` already produces; JSONL lines carry the
    same keys by construction (:class:`~repro.obs.spans.JsonlSpanSink`).
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        if not path.exists():
            raise ConfigurationError(f"no span trace at {path}")
        spans = []
        for line in path.read_text().splitlines():
            if line.strip():
                spans.append(json.loads(line))
    elif hasattr(source, "spans"):
        spans = source.spans()
    else:
        spans = list(source)
    if campaign:
        spans = [s for s in spans if s.get("campaign", campaign) == campaign]
    return sorted(spans, key=lambda s: (s.get("start_s") or 0.0,
                                        s.get("span_id") or ""))


@dataclass
class SpanNode:
    """One span plus its children (the in-memory trace tree)."""

    span: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.span.get("kind", "?")

    @property
    def start(self) -> float:
        return float(self.span.get("start_s") or 0.0)

    @property
    def elapsed(self) -> float:
        return float(self.span.get("elapsed_s") or 0.0)

    @property
    def end(self) -> float:
        return self.start + self.elapsed

    @property
    def attrs(self) -> dict:
        return self.span.get("attrs") or {}

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_tree(spans: Sequence[Mapping]) -> list[SpanNode]:
    """Root nodes of the span forest (campaign sessions, plus orphans).

    A span whose ``parent_id`` is absent *from the set* roots its own
    subtree: fleets may split one trace across sinks, so orphans are
    normal, not an error (``repro.obs.validate`` agrees).
    """
    nodes = {s["span_id"]: SpanNode(dict(s)) for s in spans}
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.span.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start, n.span.get("span_id", "")))
    roots.sort(key=lambda n: (n.start, n.span.get("span_id", "")))
    return roots


def _wall_clock(spans: Sequence[Mapping]) -> float:
    """Union wall clock: latest span end minus earliest span start."""
    starts = [float(s.get("start_s") or 0.0) for s in spans]
    ends = [float(s.get("start_s") or 0.0) + float(s.get("elapsed_s") or 0.0)
            for s in spans]
    return (max(ends) - min(starts)) if spans else 0.0


# --------------------------------------------------------------------------
# Text tree
# --------------------------------------------------------------------------

def render_tree(spans: Sequence[Mapping], *, max_cells: int = 4) -> str:
    """The span forest as an indented tree, one line per span.

    ``cell`` children beyond ``max_cells`` per chunk collapse into one
    summary line — a 10^5-cell campaign must not print 10^5 lines.
    """
    lines: list[str] = []

    def describe(node: SpanNode) -> str:
        s = node.span
        who = s.get("worker") or s.get("attrs", {}).get("worker_id") or ""
        who = f" worker={who}" if who else ""
        status = "" if s.get("status", "ok") == "ok" else " STATUS=error"
        return (f"{node.kind} {s.get('name', '?')}  "
                f"{node.elapsed:.3f}s{who}{status}")

    def emit(node: SpanNode, depth: int) -> None:
        lines.append("  " * depth + describe(node))
        cells = [c for c in node.children if c.kind == "cell"]
        others = [c for c in node.children if c.kind != "cell"]
        for child in others:
            emit(child, depth + 1)
        for child in cells[:max_cells]:
            emit(child, depth + 1)
        if len(cells) > max_cells:
            hidden = cells[max_cells:]
            routes: dict[str, int] = {}
            for c in hidden:
                route = c.attrs.get("route", "?")
                routes[route] = routes.get(route, 0) + 1
            by_route = ", ".join(f"{n} {r}" for r, n in sorted(routes.items()))
            lines.append("  " * (depth + 1)
                         + f"... {len(hidden)} more cells ({by_route}), "
                         f"{sum(c.elapsed for c in hidden):.3f}s total")

    for root in build_tree(spans):
        emit(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


# --------------------------------------------------------------------------
# Timeline (per-worker ASCII Gantt)
# --------------------------------------------------------------------------

def render_timeline(spans: Sequence[Mapping], *, width: int = 72) -> str:
    """Per-worker Gantt over the campaign wall clock.

    One row per worker session (pool runs get one row); ``█`` marks
    time bins covered by chunk execution, ``·`` idle time inside the
    session — the visual twin of the queue-wait bucket.
    """
    if not spans:
        return "(no spans)"
    roots = build_tree(spans)
    sessions = [r for r in roots if r.kind == "campaign"] or roots
    t0 = min(float(s.get("start_s") or 0.0) for s in spans)
    wall = _wall_clock(spans)
    if wall <= 0:
        wall = 1e-9
    width = max(10, width)

    def row_for(node: SpanNode) -> str:
        cells = [" "] * width
        lo = int((node.start - t0) / wall * width)
        hi = int((node.end - t0) / wall * width)
        for i in range(max(0, lo), min(width, max(hi, lo + 1))):
            cells[i] = "·"
        for chunk in node.children:
            if chunk.kind != "chunk":
                continue
            lo = int((chunk.start - t0) / wall * width)
            hi = int((chunk.end - t0) / wall * width)
            for i in range(max(0, lo), min(width, max(hi, lo + 1))):
                cells[i] = "█"
        return "".join(cells)

    def label_for(node: SpanNode) -> str:
        s = node.span
        return (s.get("worker") or s.get("attrs", {}).get("worker_id")
                or s.get("name") or "?")

    label_w = min(24, max(len(label_for(n)) for n in sessions))
    lines = [f"timeline: {wall:.3f}s wall clock, {len(sessions)} lane(s) "
             f"(█ chunk execution, · idle)"]
    for node in sessions:
        chunks = sum(1 for c in node.children if c.kind == "chunk")
        lines.append(f"{label_for(node)[:label_w]:<{label_w}} |{row_for(node)}|"
                     f" {chunks} chunk(s), {node.elapsed:.3f}s")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Critical path + wall-clock attribution
# --------------------------------------------------------------------------

def _chunk_phases(chunk: SpanNode) -> dict[str, float]:
    """claim/execute/commit seconds of one chunk span (attrs-driven)."""
    claim = float(chunk.attrs.get("claim_s") or 0.0)
    commit = float(chunk.attrs.get("commit_s") or 0.0)
    execute = max(0.0, chunk.elapsed - claim - commit)
    return {"claim_s": claim, "execute_s": execute, "commit_s": commit}


def critical_path(spans: Sequence[Mapping]) -> dict:
    """Wall-clock attribution and the longest chain of the trace.

    Returns a JSON-safe dict: ``wall_clock_s``, per-phase totals
    (``queue_wait_s``/``claim_s``/``execute_s``/``commit_s``),
    ``attributed_s``, ``session_s`` (Σ worker-session elapsed),
    ``coverage`` (attributed/session — the CI lane asserts ≥ 0.9),
    ``parallelism`` (busy chunk seconds / wall clock), per-session
    rows, and ``path`` — the latest-ending session, its dominant chunk
    and that chunk's dominant cell, each with its share.
    """
    roots = build_tree(spans)
    sessions = [r for r in roots if r.kind == "campaign"]
    # Chunks orphaned from their session (split sinks) still attribute.
    stray_chunks = [n for r in roots for n in ([r] if r.kind == "chunk" else [])]
    totals = {"queue_wait_s": 0.0, "claim_s": 0.0,
              "execute_s": 0.0, "commit_s": 0.0}
    per_session: list[dict] = []
    session_s = 0.0
    busy_s = 0.0
    for node in sessions:
        chunks = [c for c in node.children if c.kind == "chunk"]
        phases = {"claim_s": 0.0, "execute_s": 0.0, "commit_s": 0.0}
        for chunk in chunks:
            for key, value in _chunk_phases(chunk).items():
                phases[key] += value
        chunk_elapsed = sum(c.elapsed for c in chunks)
        queue_wait = max(0.0, node.elapsed - chunk_elapsed)
        session_s += node.elapsed
        busy_s += chunk_elapsed
        for key in phases:
            totals[key] += phases[key]
        totals["queue_wait_s"] += queue_wait
        per_session.append({
            "worker": (node.span.get("worker")
                       or node.attrs.get("worker_id") or node.span.get("name")),
            "host": node.span.get("host"),
            "elapsed_s": round(node.elapsed, 6),
            "chunks": len(chunks),
            "queue_wait_s": round(queue_wait, 6),
            **{k: round(v, 6) for k, v in phases.items()},
        })
    for chunk in stray_chunks:
        for key, value in _chunk_phases(chunk).items():
            totals[key] += value
        busy_s += chunk.elapsed

    wall = _wall_clock(spans)
    attributed = sum(totals.values())
    coverage = (attributed / session_s) if session_s > 0 else None

    # The longest chain: latest-ending session -> dominant chunk -> cell.
    path: list[dict] = []
    candidates = sessions or stray_chunks
    if candidates:
        tail = max(candidates, key=lambda n: n.end)
        node = tail
        while node is not None:
            share = (node.elapsed / tail.elapsed) if tail.elapsed > 0 else None
            entry = {
                "kind": node.kind,
                "name": node.span.get("name"),
                "elapsed_s": round(node.elapsed, 6),
                "share": round(share, 4) if share is not None else None,
            }
            if node.kind == "chunk":
                entry["chunk_id"] = node.attrs.get("chunk_id")
                if node.attrs.get("stolen_from"):
                    entry["stolen_from"] = node.attrs["stolen_from"]
            path.append(entry)
            children = node.children
            node = (max(children, key=lambda n: n.elapsed)
                    if children else None)

    return {
        "spans": len(spans),
        "sessions": len(sessions),
        "wall_clock_s": round(wall, 6),
        "session_s": round(session_s, 6),
        "attributed_s": round(attributed, 6),
        "coverage": round(coverage, 4) if coverage is not None else None,
        "parallelism": round(busy_s / wall, 3) if wall > 0 else None,
        **{k: round(v, 6) for k, v in totals.items()},
        "per_session": per_session,
        "path": path,
    }


def render_critical_path(analysis: Mapping) -> str:
    """Human rendering of a :func:`critical_path` result."""
    lines = [
        f"critical path over {analysis['spans']} spans "
        f"({analysis['sessions']} worker session(s)):",
        f"wall clock : {analysis['wall_clock_s']:.3f}s"
        + (f"  parallelism x{analysis['parallelism']:.2f}"
           if analysis.get("parallelism") else ""),
    ]
    session_s = analysis["session_s"]
    lines.append("attribution (all worker sessions):")
    for key, label in (("queue_wait_s", "queue-wait"), ("claim_s", "claim"),
                       ("execute_s", "execute"), ("commit_s", "commit")):
        value = analysis[key]
        share = f" ({value / session_s:5.1%})" if session_s > 0 else ""
        lines.append(f"  {label:<10} {value:9.3f}s{share}")
    if analysis.get("coverage") is not None:
        lines.append(
            f"  attributed {analysis['attributed_s']:9.3f}s of "
            f"{session_s:.3f}s session time "
            f"(coverage {analysis['coverage']:.1%})")
    if analysis["path"]:
        lines.append("longest chain (latest-ending lane, dominant child):")
        for depth, hop in enumerate(analysis["path"]):
            extra = ""
            if hop.get("chunk_id") is not None:
                extra += f" chunk_id={hop['chunk_id']}"
            if hop.get("stolen_from"):
                extra += f" stolen_from={hop['stolen_from']}"
            share = (f" ({hop['share']:.0%} of lane)"
                     if hop.get("share") is not None else "")
            lines.append("  " * (depth + 1)
                         + f"{hop['kind']} {hop['name']}  "
                         f"{hop['elapsed_s']:.3f}s{share}{extra}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Stragglers
# --------------------------------------------------------------------------

def stragglers(spans: Sequence[Mapping], *, top: int = 5,
               threshold: float = 2.0) -> dict:
    """Chunks and workers ranked by deviation from the fleet median.

    A chunk is flagged when its elapsed exceeds ``threshold`` x the
    median chunk elapsed; a worker when its *mean* chunk elapsed does.
    Steal victims (``stolen_from`` attr) and the host are carried so a
    skewed machine shows up as a pattern, not five separate mysteries.
    """
    roots = build_tree(spans)
    chunks: list[SpanNode] = []
    for root in roots:
        chunks.extend(n for n in root.walk() if n.kind == "chunk")
    elapsed = sorted(c.elapsed for c in chunks)
    med = median(elapsed)
    chunk_rows = []
    for chunk in chunks:
        ratio = (chunk.elapsed / med) if med else None
        chunk_rows.append({
            "chunk_id": chunk.attrs.get("chunk_id"),
            "name": chunk.span.get("name"),
            "worker": chunk.span.get("worker"),
            "host": chunk.span.get("host"),
            "elapsed_s": round(chunk.elapsed, 6),
            "vs_median": round(ratio, 2) if ratio is not None else None,
            "stolen_from": chunk.attrs.get("stolen_from"),
            "straggler": bool(med and chunk.elapsed > threshold * med),
        })
    chunk_rows.sort(key=lambda r: -r["elapsed_s"])

    by_worker: dict[str, list[SpanNode]] = {}
    for chunk in chunks:
        by_worker.setdefault(chunk.span.get("worker") or "?", []).append(chunk)
    worker_rows = []
    for worker, had in sorted(by_worker.items()):
        mean = sum(c.elapsed for c in had) / len(had)
        ratio = (mean / med) if med else None
        worker_rows.append({
            "worker": worker,
            "host": had[0].span.get("host"),
            "chunks": len(had),
            "mean_chunk_s": round(mean, 6),
            "vs_median": round(ratio, 2) if ratio is not None else None,
            "stolen": sum(1 for c in had if c.attrs.get("stolen_from")),
            "straggler": bool(med and mean > threshold * med),
        })
    worker_rows.sort(key=lambda r: -(r["vs_median"] or 0.0))
    return {
        "chunks": len(chunks),
        "median_chunk_s": round(med, 6) if med is not None else None,
        "threshold": threshold,
        "top_chunks": chunk_rows[:top],
        "workers": worker_rows,
    }


def render_stragglers(ranking: Mapping) -> str:
    """Human rendering of a :func:`stragglers` result."""
    med = ranking.get("median_chunk_s")
    lines = [f"stragglers over {ranking['chunks']} chunk span(s), "
             f"median {med:.3f}s/chunk"
             if med is not None else
             f"stragglers: no timed chunk spans ({ranking['chunks']} seen)"]
    for row in ranking["top_chunks"]:
        flags = []
        if row["straggler"]:
            flags.append(f">={ranking['threshold']:g}x median")
        if row["stolen_from"]:
            flags.append(f"stolen from {row['stolen_from']}")
        flag = f"  [{', '.join(flags)}]" if flags else ""
        vs = (f" ({row['vs_median']:.1f}x median)"
              if row["vs_median"] is not None else "")
        ident = (f"chunk {row['chunk_id']}" if row["chunk_id"] is not None
                 else row["name"])
        lines.append(f"  {ident:<12} {row['elapsed_s']:8.3f}s{vs}  "
                     f"worker={row['worker']}{flag}")
    for row in ranking["workers"]:
        if not row["straggler"]:
            continue
        lines.append(
            f"  worker {row['worker']} averages {row['mean_chunk_s']:.3f}s"
            f"/chunk ({row['vs_median']:.1f}x fleet median) on "
            f"host {row['host']} — skewed host?")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Chrome trace-event export
# --------------------------------------------------------------------------

def chrome_trace(spans: Sequence[Mapping]) -> dict:
    """The span set as Chrome trace-event JSON (Perfetto-compatible).

    Complete (``ph: "X"``) events with microsecond ``ts``/``dur``
    offset to the earliest span; one pid per host, one tid per worker,
    named via ``M``-phase metadata events so Perfetto's track labels
    read ``host`` / ``worker`` instead of bare integers.
    """
    spans = [s for s in spans if s.get("elapsed_s") is not None]
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(float(s.get("start_s") or 0.0) for s in spans)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict] = []
    for span in spans:
        host = span.get("host") or "host"
        worker = span.get("worker") or "main"
        pid = pids.setdefault(host, len(pids) + 1)
        tid = tids.setdefault((host, worker), len(tids) + 1)
        events.append({
            "name": span.get("name", "?"),
            "cat": span.get("kind", "span"),
            "ph": "X",
            "ts": int((float(span.get("start_s") or 0.0) - t0) * 1e6),
            "dur": max(1, int(float(span.get("elapsed_s") or 0.0) * 1e6)),
            "pid": pid,
            "tid": tid,
            "args": {
                "span_id": span.get("span_id"),
                "status": span.get("status", "ok"),
                **(span.get("attrs") or {}),
            },
        })
    meta: list[dict] = []
    for host, pid in pids.items():
        meta.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                     "args": {"name": host}})
    for (host, worker), tid in tids.items():
        meta.append({"name": "thread_name", "ph": "M", "pid": pids[host],
                     "tid": tid, "args": {"name": worker}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


# --------------------------------------------------------------------------
# Shared fleet-skew helpers (campaign status --watch imports these)
# --------------------------------------------------------------------------

def median(values: Sequence[float]) -> float | None:
    """Plain median (None on empty input) — no numpy dependency."""
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def straggler_hint(leases: Sequence, chunk_seconds: Sequence[float], *,
                   now: float, threshold: float = 2.0) -> str | None:
    """One-line skew hint for live status: slowest active lease vs the
    fleet's median chunk time.

    ``leases`` are :class:`~repro.campaigns.distributed.queue.LeaseInfo`
    rows (``acquired_at``/``worker_id``/``chunk_id`` are what's read);
    ``chunk_seconds`` the per-chunk wall seconds of retired chunks.
    Returns None when there is nothing active, no baseline yet, or no
    lease has outlived ``threshold`` x the median — the quiet common
    case, so the hint only appears when something is actually skewed.
    """
    med = median(chunk_seconds)
    if med is None or not leases:
        return None
    slowest = max(leases, key=lambda l: now - l.acquired_at)
    age = now - slowest.acquired_at
    if age <= threshold * med:
        return None
    return (f"chunk {slowest.chunk_id} ({slowest.worker_id}) running "
            f"{age:.1f}s vs {med:.1f}s median chunk — straggler "
            f"(x{age / med:.1f})")
