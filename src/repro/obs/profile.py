"""Phase-attribution profiles from the metrics registry's snapshots.

The emit side (PR 7) folds per-run engine phase seconds into
``engine.phase.*_s`` histograms and counts every routing decision; this
module is the read side — ``python -m repro campaign profile`` renders,
from the store's persisted worker snapshots (or any merged snapshot):

* :func:`phase_table` — where scalar engine time went per run:
  adversary / look-compute / move / end-of-round, with totals, shares
  and per-run percentiles;
* :func:`route_table` — batch vs scalar attribution: cells and seconds
  through each route (``batch.core_s`` histograms time every
  :class:`~repro.core.batch.BatchCore` lockstep pass);
* :func:`folded_stacks` — the same attribution as Brendan-Gregg
  collapsed stacks (``frame;frame weight`` lines), the input format of
  speedscope and every flamegraph tool.

Weights in the folded output are integer microseconds, so
``speedscope profile.folded`` shows wall-microsecond flames directly.
"""

from __future__ import annotations

from typing import Mapping

from . import metrics as obs_metrics

__all__ = [
    "folded_stacks",
    "phase_table",
    "render_profile",
    "route_table",
]

#: Scalar engine phases, in round order (the PhaseTimer vocabulary).
PHASES = obs_metrics.PhaseTimer.PHASES

_PHASE_PREFIX = "engine.phase."


def _histogram(snapshot: Mapping[str, Mapping], name: str) -> dict | None:
    dump = snapshot.get(name)
    if not dump or dump.get("type") != "histogram" or not dump.get("count"):
        return None
    return obs_metrics.summarize_histogram(dump)


def _counter(snapshot: Mapping[str, Mapping], name: str) -> float:
    dump = snapshot.get(name)
    if not dump or dump.get("type") != "counter":
        return 0.0
    return dump.get("value", 0) or 0.0


def phase_table(snapshot: Mapping[str, Mapping]) -> list[dict]:
    """One row per engine phase: total seconds, share, per-run stats.

    Empty when the snapshot holds no ``engine.phase.*_s`` histograms
    (metrics were off, or only batched cells ran — the lockstep core
    has no scalar phases).
    """
    rows = []
    for phase in PHASES:
        summary = _histogram(snapshot, f"{_PHASE_PREFIX}{phase}_s")
        if summary is None:
            continue
        rows.append({"phase": phase, **summary})
    total = sum(r["sum"] for r in rows)
    for row in rows:
        row["share"] = (row["sum"] / total) if total > 0 else None
    return rows


def route_table(snapshot: Mapping[str, Mapping]) -> list[dict]:
    """Batch-vs-scalar attribution: cells and seconds per route.

    The scalar row times whole cells (``executor.cell_s``); the batch
    row times lockstep :class:`BatchCore` passes (``batch.core_s``),
    each pass covering many cells — so ``seconds`` compares total wall
    time per route, which is the number the routing decision optimises.
    """
    rows = []
    scalar = _histogram(snapshot, "executor.cell_s")
    if scalar is not None:
        rows.append({
            "route": "scalar",
            "cells": int(_counter(snapshot, "executor.cells_scalar")),
            "runs": scalar["count"],
            "seconds": scalar["sum"],
            "p50_s": scalar["p50"],
            "p99_s": scalar["p99"],
        })
    batch = _histogram(snapshot, "batch.core_s")
    if batch is not None:
        rows.append({
            "route": "batch",
            "cells": int(_counter(snapshot, "executor.cells_batched")),
            "runs": batch["count"],
            "seconds": batch["sum"],
            "p50_s": batch["p50"],
            "p99_s": batch["p99"],
        })
    total = sum(r["seconds"] for r in rows)
    for row in rows:
        row["share"] = (row["seconds"] / total) if total > 0 else None
    return rows


def profile_data(snapshot: Mapping[str, Mapping]) -> dict:
    """The JSON shape of ``campaign profile --format json``."""
    return {
        "phases": phase_table(snapshot),
        "routes": route_table(snapshot),
        "engine_runs": int(_counter(snapshot, "engine.runs")),
    }


def render_profile(snapshot: Mapping[str, Mapping], *,
                   title: str = "profile") -> str:
    """Aligned human table: phase attribution, then the route split."""
    lines = [f"== {title}"]
    phases = phase_table(snapshot)
    if phases:
        lines.append("engine phases (scalar runs, seconds per run):")
        lines.append(f"  {'phase':<14} {'total_s':>9} {'share':>7} "
                     f"{'runs':>6} {'p50_s':>10} {'p99_s':>10}")
        for row in phases:
            share = f"{row['share']:.1%}" if row["share"] is not None else "-"
            lines.append(
                f"  {row['phase']:<14} {row['sum']:9.3f} {share:>7} "
                f"{row['count']:>6} {row['p50']:10.6f} {row['p99']:10.6f}")
    else:
        lines.append("engine phases: no engine.phase.*_s histograms in the "
                     "snapshot (run with --metrics; batched cells have no "
                     "scalar phases)")
    routes = route_table(snapshot)
    if routes:
        lines.append("execution routes:")
        lines.append(f"  {'route':<8} {'cells':>7} {'runs':>6} "
                     f"{'seconds':>9} {'share':>7} {'p50_s':>10}")
        for row in routes:
            share = f"{row['share']:.1%}" if row["share"] is not None else "-"
            lines.append(
                f"  {row['route']:<8} {row['cells']:>7} {row['runs']:>6} "
                f"{row['seconds']:9.3f} {share:>7} {row['p50_s']:10.6f}")
    return "\n".join(lines)


def folded_stacks(snapshot: Mapping[str, Mapping], *,
                  root: str = "campaign") -> str:
    """Collapsed-stack lines (``a;b;c weight``) for flamegraph tooling.

    Scalar time splits into the four engine phases plus an ``other``
    frame (cell seconds not covered by phase timings: engine setup,
    result packaging, phase timing itself disabled); batch time is one
    ``BatchCore.run`` frame — the lockstep pass is deliberately opaque
    to per-phase attribution.  Weights are integer microseconds.
    """
    lines: list[str] = []

    def emit(frames: list[str], seconds: float) -> None:
        us = int(round(seconds * 1e6))
        if us > 0:
            lines.append(f"{';'.join(frames)} {us}")

    phase_sum = 0.0
    for row in phase_table(snapshot):
        emit([root, "scalar", row["phase"]], row["sum"])
        phase_sum += row["sum"]
    scalar = _histogram(snapshot, "executor.cell_s")
    if scalar is not None:
        emit([root, "scalar", "other"], max(0.0, scalar["sum"] - phase_sum))
    batch = _histogram(snapshot, "batch.core_s")
    if batch is not None:
        emit([root, "batch", "BatchCore.run"], batch["sum"])
    return "\n".join(lines)
