"""Unified observability: metrics, span tracing, logging, exposition.

One subsystem shared by every layer of the reproduction — the engine
round loop, the batch kernels, the chunk executor, and the distributed
fleet.  See ARCHITECTURE.md "Observability" for the design and the
overhead contract (<2% on the engine headline with instrumentation
disabled, CI-guarded by ``benchmarks/bench_engine_hotpath.py``).

Submodules:

* :mod:`repro.obs.metrics` — thread-safe registry (counters, gauges,
  reservoir-sampled histograms) with mergeable snapshots; env-gated via
  ``REPRO_METRICS=1`` / the ``campaign --metrics`` flag.
* :mod:`repro.obs.spans` — campaign → chunk → cell span hierarchy,
  emitted as JSONL and/or persisted to the SQLite ``spans`` table;
  env-gated via ``REPRO_TRACE``/``REPRO_TRACE_JSONL``.
* :mod:`repro.obs.logs` — ``repro.*`` stdlib-logging backbone
  (``--log-level``/``--log-json``/``--quiet``/``--verbose``).
* :mod:`repro.obs.expo` — human table / Prometheus textfile / JSON
  rendering of snapshots (``campaign metrics``).
"""

from . import expo, logs, metrics, spans

__all__ = ["expo", "logs", "metrics", "spans"]
