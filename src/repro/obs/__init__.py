"""Unified observability: metrics, span tracing, logging, exposition.

One subsystem shared by every layer of the reproduction — the engine
round loop, the batch kernels, the chunk executor, and the distributed
fleet.  See ARCHITECTURE.md "Observability" for the design and the
overhead contract (<2% on the engine headline with instrumentation
disabled, CI-guarded by ``benchmarks/bench_engine_hotpath.py``).

Submodules:

* :mod:`repro.obs.metrics` — thread-safe registry (counters, gauges,
  reservoir-sampled histograms) with mergeable snapshots; env-gated via
  ``REPRO_METRICS=1`` / the ``campaign --metrics`` flag.
* :mod:`repro.obs.spans` — campaign → chunk → cell span hierarchy,
  emitted as JSONL and/or persisted to the SQLite ``spans`` table;
  env-gated via ``REPRO_TRACE``/``REPRO_TRACE_JSONL``.
* :mod:`repro.obs.logs` — ``repro.*`` stdlib-logging backbone
  (``--log-level``/``--log-json``/``--quiet``/``--verbose``).
* :mod:`repro.obs.expo` — human table / Prometheus textfile / JSON
  rendering of snapshots (``campaign metrics``).
* :mod:`repro.obs.analyze` — trace analytics over recorded spans:
  span tree, per-worker timeline, critical-path wall-clock attribution,
  straggler ranking, Chrome trace-event export (``campaign trace``).
* :mod:`repro.obs.profile` — phase-attribution profiles and speedscope
  folded stacks from metrics snapshots (``campaign profile``).
* :mod:`repro.obs.validate` — span-trace schema/hierarchy validation
  (``scripts/check_spans.py`` shims here).
* :mod:`repro.obs.history` — bench-history time series and regression
  guard (``python -m repro bench record|check``).

``analyze``/``profile``/``validate``/``history`` are read-side tools
and import lazily where it matters; this package import stays cheap
because the hot emit paths only need ``metrics``/``spans``/``logs``.
"""

from . import expo, logs, metrics, spans

__all__ = ["analyze", "expo", "history", "logs", "metrics", "profile",
           "spans", "validate"]


def __getattr__(name: str):
    # Lazy submodule access (repro.obs.analyze etc.) without importing
    # the read-side tooling on every engine run.
    if name in __all__:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
