"""Thread-safe metrics registry: counters, gauges, histograms.

One registry per process.  Every instrument is owned by the registry and
addressed by a dotted name (``queue.claim_s``, ``executor.cells``); the
name doubles as the merge key when snapshots from many worker processes
are combined into one fleet view.

Design constraints (see ARCHITECTURE.md "Observability"):

* **Near-zero cost when disabled.**  ``registry()`` returns a null
  registry whose instruments are shared no-op singletons, so call sites
  may write ``registry().counter("x").inc()`` unconditionally.  Hot
  loops (the engine round loop) go further and never even reach a null
  call: `SimulationCore.step` is swapped for an instrumented twin only
  when a :class:`PhaseTimer` is attached, keeping the disabled path
  byte-identical to the uninstrumented engine.  A bench guard
  (``benchmarks/bench_engine_hotpath.py --max-obs-overhead``) enforces
  the <2% contract.
* **Mergeable snapshots.**  Histograms keep a bounded reservoir of raw
  samples next to exact ``count``/``sum``/``min``/``max``; snapshots
  from N workers merge by summing counters, last-writer-wins gauges,
  and concatenating histogram reservoirs, so fleet percentiles are
  computed from pooled samples rather than averaged per-worker
  percentiles.
* **Thread-safe.**  One lock per instrument; the registry dict has its
  own lock.  The distributed worker's lease-keeper thread and the main
  loop may both touch the registry.

Enablement is environment-driven so forked/spawned pool and fleet
workers inherit it: ``REPRO_METRICS=1`` turns the registry on (the
``campaign --metrics`` flag sets it before workers start);
``configure(enabled=...)`` overrides programmatically, e.g. in tests.
"""

from __future__ import annotations

import os
import random
import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "configure",
    "enabled",
    "merge_snapshots",
    "phase_timer",
    "phase_timing_enabled",
    "registry",
    "reset",
    "snapshot",
]

#: Reservoir size per histogram.  2048 float samples bound memory at
#: ~16 KiB per histogram while keeping p99 estimates stable for the
#: sample counts a worker session produces.
SAMPLE_CAP = 2048

PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def dump(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def dump(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Distribution summary with a bounded reservoir for percentiles.

    ``count``/``sum``/``min``/``max`` are exact; percentiles are
    estimated from a uniform reservoir sample (seeded per-histogram, so
    runs are reproducible).  The reservoir is part of the snapshot,
    which is what makes cross-worker percentile merging honest.
    """

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max",
                 "_sample", "_rng")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._sample: list[float] = []
        self._rng = random.Random(0x5EED ^ hash(name) & 0xFFFFFFFF)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._sample) < SAMPLE_CAP:
                self._sample.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < SAMPLE_CAP:
                    self._sample[slot] = value

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, p: float) -> float | None:
        with self._lock:
            sample = sorted(self._sample)
        return _percentile(sample, p)

    def dump(self) -> dict:
        with self._lock:
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "sample": list(self._sample),
            }


def _percentile(sorted_sample: list[float], p: float) -> float | None:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not sorted_sample:
        return None
    if len(sorted_sample) == 1:
        return sorted_sample[0]
    rank = (p / 100.0) * (len(sorted_sample) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_sample) - 1)
    frac = rank - lo
    return sorted_sample[lo] * (1.0 - frac) + sorted_sample[hi] * frac


class _NullInstrument:
    """Shared no-op stand-in for every instrument type when disabled."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    count = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> None:
        return None

    def dump(self) -> dict:
        return {}


_NULL = _NullInstrument()


class MetricsRegistry:
    """Process-wide named instruments with mergeable snapshots."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        if not self.enabled:
            return _NULL
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict[str, dict]:
        """Serializable view of every instrument (JSON-safe)."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: inst.dump() for name, inst in sorted(instruments)}

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


def merge_snapshots(snapshots: Iterable[Mapping[str, dict]]) -> dict[str, dict]:
    """Combine snapshots from many processes into one fleet view.

    Counters sum, gauges keep the last writer, histograms pool their
    reservoirs (so percentiles are computed over the union of samples,
    capped at :data:`SAMPLE_CAP` per metric to bound the result).
    """
    merged: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, dump in snap.items():
            kind = dump.get("type")
            if name not in merged:
                merged[name] = {
                    "type": kind,
                    **({"value": dump.get("value", 0)} if kind != "histogram"
                       else {
                           "count": dump.get("count", 0),
                           "sum": dump.get("sum", 0.0),
                           "min": dump.get("min"),
                           "max": dump.get("max"),
                           "sample": list(dump.get("sample") or ()),
                       }),
                }
                continue
            into = merged[name]
            if kind != into.get("type"):
                continue  # conflicting types across workers: keep first
            if kind == "counter":
                into["value"] += dump.get("value", 0)
            elif kind == "gauge":
                into["value"] = dump.get("value", into["value"])
            else:
                into["count"] += dump.get("count", 0)
                into["sum"] += dump.get("sum", 0.0)
                for key, pick in (("min", min), ("max", max)):
                    theirs = dump.get(key)
                    if theirs is not None:
                        ours = into.get(key)
                        into[key] = theirs if ours is None else pick(ours, theirs)
                sample = into["sample"]
                sample.extend(dump.get("sample") or ())
                if len(sample) > SAMPLE_CAP:
                    # Deterministic thinning: keep an evenly-strided subset.
                    stride = len(sample) / SAMPLE_CAP
                    into["sample"] = [sample[int(i * stride)]
                                      for i in range(SAMPLE_CAP)]
    return dict(sorted(merged.items()))


def summarize_histogram(dump: Mapping) -> dict:
    """Derive p50/p90/p99 (and mean) from a histogram dump."""
    sample = sorted(dump.get("sample") or ())
    count = dump.get("count", 0)
    out = {
        "count": count,
        "sum": dump.get("sum", 0.0),
        "min": dump.get("min"),
        "max": dump.get("max"),
        "mean": (dump.get("sum", 0.0) / count) if count else None,
    }
    for p in PERCENTILES:
        out[f"p{int(p)}"] = _percentile(sample, p)
    return out


# --------------------------------------------------------------------------
# Engine phase timing
# --------------------------------------------------------------------------

class PhaseTimer:
    """Per-run accumulator for `SimulationCore` round-phase seconds.

    The instrumented step adds plain-float deltas here (no locks, no
    dict lookups in the round loop); :meth:`flush` folds the totals into
    registry histograms once per engine run.
    """

    __slots__ = ("adversary", "look_compute", "move", "end_of_round",
                 "rounds")

    PHASES = ("adversary", "look_compute", "move", "end_of_round")

    def __init__(self) -> None:
        self.adversary = 0.0
        self.look_compute = 0.0
        self.move = 0.0
        self.end_of_round = 0.0
        self.rounds = 0

    def flush(self, registry: MetricsRegistry | None = None,
              *, prefix: str = "engine.phase") -> None:
        reg = registry if registry is not None else globals()["registry"]()
        for phase in self.PHASES:
            reg.histogram(f"{prefix}.{phase}_s").observe(getattr(self, phase))
        reg.histogram("engine.run_rounds").observe(self.rounds)
        reg.counter("engine.runs").inc()
        self.adversary = self.look_compute = self.move = self.end_of_round = 0.0
        self.rounds = 0


# --------------------------------------------------------------------------
# Process-global registry
# --------------------------------------------------------------------------

_ENABLED: bool | None = None  # None → defer to the environment
_PHASES: bool | None = None
_REGISTRY: MetricsRegistry | None = None
_DISABLED_REGISTRY = MetricsRegistry(enabled=False)
_STATE_LOCK = threading.Lock()


def enabled() -> bool:
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get("REPRO_METRICS") == "1"


def phase_timing_enabled() -> bool:
    """Engine phase timing: on with metrics unless REPRO_PHASE_METRICS=0."""
    if not enabled():
        return False
    if _PHASES is not None:
        return _PHASES
    return os.environ.get("REPRO_PHASE_METRICS", "1") != "0"


def configure(enabled: bool | None = None,
              phase_timing: bool | None = None) -> None:
    """Programmatic override of the environment gate (tests, embedding).

    ``configure(enabled=None)`` returns control to the environment.
    """
    global _ENABLED, _PHASES
    with _STATE_LOCK:
        _ENABLED = enabled
        _PHASES = phase_timing


def registry() -> MetricsRegistry:
    """The process-global registry (a shared null registry if disabled)."""
    global _REGISTRY
    if not enabled():
        return _DISABLED_REGISTRY
    if _REGISTRY is None or not _REGISTRY.enabled:
        with _STATE_LOCK:
            if _REGISTRY is None or not _REGISTRY.enabled:
                _REGISTRY = MetricsRegistry(enabled=True)
    return _REGISTRY


def snapshot() -> dict[str, dict]:
    return registry().snapshot() if enabled() else {}


def reset() -> None:
    global _REGISTRY
    with _STATE_LOCK:
        _REGISTRY = None


def phase_timer() -> PhaseTimer | None:
    """A fresh :class:`PhaseTimer`, or None when phase timing is off."""
    return PhaseTimer() if phase_timing_enabled() else None
