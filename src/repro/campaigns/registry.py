"""Named factories turning a :class:`CellConfig` into a live engine.

Campaign cells (and CLI invocations) refer to algorithms, adversaries and
schedulers *by name* so they stay picklable and serialisable; this module
owns the name → constructor mapping and the one function that matters:
:func:`build_cell_engine`, which assembles a ready-to-run
:class:`~repro.core.engine.Engine` from a cell.

The tables here are the single source of truth — ``repro.cli`` routes its
``run``/``watch``/``list`` commands through them too, so a name accepted
on the command line is exactly a name accepted in a campaign spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..adversary import (
    BlockAgentAdversary,
    Figure2Schedule,
    FixedMissingEdge,
    MeetingPreventionAdversary,
    NoRemoval,
    NSStarvationAdversary,
    PeriodicMissingEdge,
    RandomMissingEdge,
    Theorem19Adversary,
    ZigZagForcingAdversary,
)
from ..algorithms import (
    ETExactSizeNoChirality,
    ETUnconscious,
    KnownUpperBound,
    LandmarkNoChirality,
    LandmarkWithChirality,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkNoChirality,
    PTLandmarkWithChirality,
    StartFromLandmarkNoChirality,
    UnconsciousExploration,
)
from ..core.engine import TransportModel
from ..core.errors import ConfigurationError
from ..core.interfaces import ActivationScheduler, Algorithm, EdgeAdversary
from ..schedulers import (
    ETFairScheduler,
    FsyncScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
)
from .spec import CellConfig, resolve_positions

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


def _bound(cell: CellConfig) -> int:
    return cell.bound if cell.bound is not None else cell.ring_size


@dataclass(frozen=True)
class AlgorithmEntry:
    """Everything the CLI and executor need to instantiate one algorithm."""

    factory: Callable[[CellConfig], Algorithm]
    needs_landmark: bool
    default_agents: int
    transport: TransportModel
    placement_override: str | None = None


#: name -> how to build it (same names as ``python -m repro run``).
ALGORITHMS: dict[str, AlgorithmEntry] = {
    "known-bound": AlgorithmEntry(
        lambda c: KnownUpperBound(bound=_bound(c)), False, 2, TransportModel.NS),
    "unconscious": AlgorithmEntry(
        lambda c: UnconsciousExploration(), False, 2, TransportModel.NS),
    "landmark-chirality": AlgorithmEntry(
        lambda c: LandmarkWithChirality(), True, 2, TransportModel.NS),
    "landmark-no-chirality": AlgorithmEntry(
        lambda c: LandmarkNoChirality(), True, 2, TransportModel.NS),
    "start-from-landmark": AlgorithmEntry(
        lambda c: StartFromLandmarkNoChirality(), True, 2, TransportModel.NS,
        placement_override="origin"),
    "pt-bound": AlgorithmEntry(
        lambda c: PTBoundWithChirality(bound=_bound(c)), False, 2, TransportModel.PT),
    "pt-landmark": AlgorithmEntry(
        lambda c: PTLandmarkWithChirality(), True, 2, TransportModel.PT),
    "pt-bound-3": AlgorithmEntry(
        lambda c: PTBoundNoChirality(bound=_bound(c)), False, 3, TransportModel.PT),
    "pt-landmark-3": AlgorithmEntry(
        lambda c: PTLandmarkNoChirality(), True, 3, TransportModel.PT),
    "et-unconscious": AlgorithmEntry(
        lambda c: ETUnconscious(), False, 2, TransportModel.ET),
    # ``bound`` lets the algorithm believe a ring size other than the
    # host's (the Theorem 19 indistinguishability construction).
    "et-exact": AlgorithmEntry(
        lambda c: ETExactSizeNoChirality(ring_size=_bound(c)), False, 3,
        TransportModel.ET),
}

def _theorem19(cell: CellConfig) -> Theorem19Adversary:
    if cell.bound is None:
        raise ConfigurationError(
            "adversary 'theorem19' needs bound=n1 (the small ring size the "
            "algorithm believes in); the cell's ring_size is the host ring")
    return Theorem19Adversary(small_size=cell.bound)


#: name -> adversary factory.  The last four are the impossibility /
#: lower-bound constructions of Tables 1/3 and Figure 2; those listed in
#: COMBINED_ADVERSARIES also control the activation schedule, and
#: ``scheduler="auto"`` resolves to the same instance for them.
#: ``adversary_arg`` parameterises constructions that need a knob
#: (zig-zag excursion cap; defaults follow the benches).
ADVERSARIES: dict[str, Callable[[CellConfig], EdgeAdversary]] = {
    "none": lambda c: NoRemoval(),
    "random": lambda c: RandomMissingEdge(seed=c.seed),
    "fixed": lambda c: FixedMissingEdge(c.edge),
    "periodic": lambda c: PeriodicMissingEdge(c.edge, period=4, duty=2),
    "block-agent": lambda c: BlockAgentAdversary(0),
    "prevent-meetings": lambda c: MeetingPreventionAdversary(),
    "ns-starvation": lambda c: NSStarvationAdversary(),
    "figure2": lambda c: Figure2Schedule(anchor=c.edge),
    "theorem19": _theorem19,
    "zigzag": lambda c: ZigZagForcingAdversary(
        cap=c.adversary_arg if c.adversary_arg is not None
        else max(1, c.ring_size // 3)),
}

#: Adversaries that are also the scheduler (the paper's single adversary
#: controls both the missing edge and the activation set).
COMBINED_ADVERSARIES = frozenset({"ns-starvation", "theorem19", "zigzag"})

#: name -> scheduler factory ("auto" resolves from the transport model).
SCHEDULERS: dict[str, Callable[[CellConfig], ActivationScheduler]] = {
    "fsync": lambda c: FsyncScheduler(),
    "random-fair": lambda c: RandomFairScheduler(seed=c.seed + 1),
    "round-robin": lambda c: RoundRobinScheduler(),
    "et-fair": lambda c: ETFairScheduler(RandomFairScheduler(seed=c.seed + 1)),
}

#: transport -> scheduler name used when a cell says ``scheduler="auto"``.
AUTO_SCHEDULER = {
    TransportModel.NS: "fsync",
    TransportModel.PT: "random-fair",
    TransportModel.ET: "et-fair",
}


def default_horizon(transport: TransportModel, ring_size: int) -> int:
    """The CLI's generous default horizon per transport model."""
    return 400 * ring_size if transport is TransportModel.NS else 20_000


def validate_cell(cell: CellConfig) -> None:
    """Fail fast on names the registry does not know."""
    if cell.topology not in TOPOLOGIES:
        raise ConfigurationError(
            f"unknown topology {cell.topology!r} (choose from {sorted(TOPOLOGIES)})")
    if cell.faults:
        # Late import: resilience is a leaf package, but keep the
        # registry importable without it on the module path.
        from ..resilience.faults import FaultPlan
        FaultPlan.parse(cell.faults).validate_agents(cell.agents)
    if is_graph_cell(cell):
        # Graph cells run on the same unified core as ring cells: any
        # scheduler/transport combination, plus every adversary with a
        # topology-generic construction (the registry wraps single-edge
        # look-ahead adversaries to stay connectivity-preserving).
        if cell.adversary not in GRAPH_ADVERSARIES:
            raise ConfigurationError(
                f"adversary {cell.adversary!r} cannot drive topology "
                f"{cell.topology!r} (choose from {sorted(GRAPH_ADVERSARIES)})")
        if (cell.adversary in _PEEKING_GRAPH_ADVERSARIES
                and cell.algorithm not in _DETERMINISTIC_EXPLORERS):
            raise ConfigurationError(
                f"peeking adversary {cell.adversary!r} needs a deterministic "
                f"explorer (choose from {sorted(_DETERMINISTIC_EXPLORERS)}): "
                f"peeking {cell.algorithm!r} would advance its RNG and make "
                "results depend on how often the adversary looks ahead")
        if cell.scheduler != "auto" and cell.scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown scheduler {cell.scheduler!r} "
                f"(choose from {sorted(SCHEDULERS)})")
        TransportModel(cell.transport)
        return
    if cell.topology != "ring":
        raise ConfigurationError(
            f"algorithm {cell.algorithm!r} is ring-specific; topology "
            f"{cell.topology!r} needs a graph explorer "
            f"(choose from {sorted(GRAPH_EXPLORERS)})")
    if cell.algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {cell.algorithm!r} "
            f"(choose from {sorted(ALGORITHMS) + sorted(GRAPH_EXPLORERS)})")
    if cell.adversary not in ADVERSARIES:
        raise ConfigurationError(
            f"unknown adversary {cell.adversary!r} (choose from {sorted(ADVERSARIES)})")
    if cell.scheduler != "auto" and cell.scheduler not in SCHEDULERS:
        raise ConfigurationError(
            f"unknown scheduler {cell.scheduler!r} (choose from {sorted(SCHEDULERS)})")
    TransportModel(cell.transport)


def build_cell_engine(cell: CellConfig, *, trace=None, optimized: bool = True) -> "Engine":
    """Assemble the engine a cell describes (deterministic given the cell).

    One entry point for every topology: ring-algorithm cells build the
    ring facade, explorer cells the dynamic-graph facade — both are thin
    constructors over the same :class:`~repro.core.sim.SimulationCore`.
    ``optimized=False`` builds the same configuration on the core's
    reference (scan-based) Look path; the trace-equivalence tests run
    seed-matched cells through both and assert identical behaviour.
    """
    from ..api import build_engine  # late import: api is a facade over us too

    validate_cell(cell)
    if is_graph_cell(cell):
        return _attach_faults(
            cell, _build_graph_engine(cell, trace=trace, optimized=optimized))
    entry = ALGORITHMS[cell.algorithm]
    transport = TransportModel(cell.transport)
    placement = entry.placement_override or cell.placement
    positions = resolve_positions(
        placement,
        ring_size=cell.ring_size,
        agents=cell.agents,
        positions=cell.positions if placement == "explicit" else None,
    )
    adversary = ADVERSARIES[cell.adversary](cell)
    if cell.scheduler == "auto":
        if cell.adversary in COMBINED_ADVERSARIES:
            # The construction controls activation too: one instance
            # plays both roles, exactly as the proofs state it.
            scheduler = adversary
        else:
            scheduler = SCHEDULERS[AUTO_SCHEDULER[transport]](cell)
    else:
        scheduler = SCHEDULERS[cell.scheduler](cell)
    landmark = cell.landmark
    if landmark is None and entry.needs_landmark:
        landmark = 0
    return _attach_faults(cell, build_engine(
        entry.factory(cell),
        ring_size=cell.ring_size,
        positions=positions,
        landmark=landmark,
        chirality=cell.chirality,
        flipped=cell.flipped,
        adversary=adversary,
        scheduler=scheduler,
        transport=transport,
        trace=trace,
        # Campaign cells opt *in* to the per-round model audit: sweeps pay
        # for it only when a cell explicitly asks (unlike direct engine
        # construction, which defaults the audit on under pytest).
        debug_invariants=cell.debug_invariants,
        optimized=optimized,
    ))


def _attach_faults(cell: CellConfig, engine):
    """Arm the engine with the cell's fault plan (no-op when fault-free).

    The injector is built per engine and seeded from the cell seed, so a
    faulty cell replays deterministically and two engines built from the
    same cell inject identical fault schedules.
    """
    if cell.faults:
        from ..resilience.faults import FaultPlan
        engine.set_fault_plan(
            FaultPlan.parse(cell.faults).injector(seed=cell.seed))
    return engine


# ---------------------------------------------------------------------------
# beyond-the-paper topologies (campaign dimension ``topology``)
# ---------------------------------------------------------------------------

def _torus_dims(n: int) -> tuple[int, int]:
    """The most-square ``rows x cols = n`` factorisation with both >= 3."""
    for rows in range(math.isqrt(n), 2, -1):
        if n % rows == 0 and n // rows >= 3:
            return rows, n // rows
    raise ConfigurationError(
        f"topology 'torus' needs ring_size = rows * cols with both >= 3 "
        f"(got {n})")


def _make_ring(cell: CellConfig) -> Any:
    from ..extensions.dynamic_graph import ring_graph

    return ring_graph(cell.ring_size)


def _make_path(cell: CellConfig) -> Any:
    from ..extensions.dynamic_graph import path_graph

    return path_graph(cell.ring_size)


def _make_torus(cell: CellConfig) -> Any:
    from ..extensions.dynamic_graph import torus

    return torus(*_torus_dims(cell.ring_size))


def _make_cactus(cell: CellConfig) -> Any:
    from ..extensions.dynamic_graph import cactus_graph

    return cactus_graph(cell.ring_size)


#: topology name -> graph builder (``ring_size`` is the node count for
#: every topology; the torus factorises it into the most-square grid).
#: ``"ring"`` doubles as the marker for the paper's native ring engine.
TOPOLOGIES: dict[str, Callable[[CellConfig], Any]] = {
    "ring": _make_ring,
    "path": _make_path,
    "torus": _make_torus,
    "cactus": _make_cactus,
}


def _make_random_walk(cell: CellConfig) -> Any:
    from ..extensions.explorers import RandomWalkExplorer

    return RandomWalkExplorer(seed=cell.seed)


def _make_rotor_router(cell: CellConfig) -> Any:
    from ..extensions.explorers import RotorRouterExplorer

    return RotorRouterExplorer()


def _make_rotor_router_terminating(cell: CellConfig) -> Any:
    from ..extensions.explorers import TerminatingRotorRouter

    # ``bound`` lets the explorer believe a node count other than the
    # host's (mirroring the ring's known-bound protocols); by default it
    # is told the truth.
    return TerminatingRotorRouter(size=_bound(cell))


#: algorithm names that select the dynamic-graph facade (they work on
#: every topology, including ``"ring"`` — useful for cross-checks).
GRAPH_EXPLORERS: dict[str, Callable[[CellConfig], Any]] = {
    "random-walk": _make_random_walk,
    "rotor-router": _make_rotor_router,
    "rotor-router-terminating": _make_rotor_router_terminating,
}

#: explorers that need the node-identity oracle (the documented model
#: strengthening of :mod:`repro.extensions.explorers`).
_ORACLE_EXPLORERS = frozenset({"rotor-router", "rotor-router-terminating"})

#: adversary names valid for graph cells.  "none"/"random" build the
#: graph-native adversaries; the rest are the paper's look-ahead
#: constructions, ported off the ring: "block-agent" (Observation 1),
#: "prevent-meetings" (Observation 2, its prediction resolved through
#: the generic topology) and "ns-starvation" (Theorem 9, an adversary
#: that is also the scheduler).  All three are made legal on arbitrary
#: topologies by the connectivity-safe wrapper: an illegal (bridge)
#: removal becomes "remove nothing", which on the path — where every
#: edge is a bridge — is exactly the degree-2 boundary of their power
#: (the ``impossibility-path`` preset sweeps that contrast).  The
#: remaining ring adversaries name edges by integer index or read the
#: ring algebra, so they stay ring-only.
GRAPH_ADVERSARIES = frozenset(
    {"none", "random", "block-agent", "prevent-meetings", "ns-starvation"})

#: graph adversaries that simulate agents' next Compute (peek).  Peeks
#: are only side-effect-free for *deterministic* explorers: the seeded
#: random walk keeps a live RNG in its memory, which a speculative
#: Compute would advance — making results depend on how often the
#: adversary peeks and breaking optimized-vs-reference equivalence.
#: validate_cell rejects those combinations outright.
_PEEKING_GRAPH_ADVERSARIES = frozenset(
    {"block-agent", "prevent-meetings", "ns-starvation"})

#: explorers whose Compute is a pure function of snapshot + memory.
_DETERMINISTIC_EXPLORERS = frozenset({"rotor-router", "rotor-router-terminating"})


def is_graph_cell(cell: CellConfig) -> bool:
    """Does this cell run on the dynamic-graph facade?"""
    return cell.algorithm in GRAPH_EXPLORERS


def _build_graph_engine(
    cell: CellConfig, *, trace=None, optimized: bool = True
) -> Any:
    """Assemble a :class:`~repro.extensions.dynamic_graph.DynamicGraphEngine`.

    ``ring_size`` is read as the node count, placements resolve over node
    labels ``0..n-1`` exactly as on the ring, ``seed`` feeds the explorer
    (random walk), the scheduler and the connectivity-preserving
    adversary, and scheduler/transport resolve exactly as for ring cells
    (``"auto"`` follows the transport model).  Requires networkx (like
    everything in :mod:`repro.extensions`).
    """
    from ..extensions.dynamic_graph import (
        ConnectivityPreservingAdversary,
        ConnectivitySafeAdversary,
        DynamicGraphEngine,
        StaticGraphAdversary,
    )

    graph = TOPOLOGIES[cell.topology](cell)
    node_count = graph.number_of_nodes()
    positions = resolve_positions(
        cell.placement,
        ring_size=node_count,
        agents=cell.agents,
        positions=cell.positions if cell.placement == "explicit" else None,
    )
    transport = TransportModel(cell.transport)
    if cell.adversary == "none":
        adversary = StaticGraphAdversary()
    elif cell.adversary == "random":
        adversary = ConnectivityPreservingAdversary(budget=1, seed=cell.seed)
    else:
        adversary = ConnectivitySafeAdversary(ADVERSARIES[cell.adversary](cell))
    if cell.scheduler == "auto":
        if cell.adversary in COMBINED_ADVERSARIES:
            # The construction controls activation too (as on the ring);
            # the connectivity-safe wrapper forwards ``select`` and only
            # constrains the removal.
            scheduler = adversary
        else:
            scheduler = SCHEDULERS[AUTO_SCHEDULER[transport]](cell)
    else:
        scheduler = SCHEDULERS[cell.scheduler](cell)
    explorer = GRAPH_EXPLORERS[cell.algorithm](cell)
    engine = DynamicGraphEngine(
        graph, explorer, positions,
        adversary=adversary,
        scheduler=scheduler,
        transport=transport,
        trace=trace,
        landmark=cell.landmark,
        debug_invariants=cell.debug_invariants,
        optimized=optimized,
    )
    if cell.algorithm in _ORACLE_EXPLORERS:
        from ..extensions.explorers import attach_node_oracle

        attach_node_oracle(engine)  # the documented model strengthening
    return engine


def build_graph_cell_engine(cell: CellConfig, *, trace=None,
                            optimized: bool = True) -> Any:
    """Validate and build an explorer cell (graph-facade entry point).

    :func:`build_cell_engine` dispatches here automatically; this remains
    public for callers that want to *assert* a cell is a graph cell.
    """
    validate_cell(cell)
    if not is_graph_cell(cell):
        raise ConfigurationError(
            f"cell {cell.algorithm!r} runs on the ring engine; "
            "use build_cell_engine")
    return _build_graph_engine(cell, trace=trace, optimized=optimized)
