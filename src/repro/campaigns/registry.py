"""Named factories turning a :class:`CellConfig` into a live engine.

Campaign cells (and CLI invocations) refer to algorithms, adversaries and
schedulers *by name* so they stay picklable and serialisable; this module
owns the name → constructor mapping and the one function that matters:
:func:`build_cell_engine`, which assembles a ready-to-run
:class:`~repro.core.engine.Engine` from a cell.

The tables here are the single source of truth — ``repro.cli`` routes its
``run``/``watch``/``list`` commands through them too, so a name accepted
on the command line is exactly a name accepted in a campaign spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..adversary import (
    BlockAgentAdversary,
    FixedMissingEdge,
    MeetingPreventionAdversary,
    NoRemoval,
    PeriodicMissingEdge,
    RandomMissingEdge,
)
from ..algorithms import (
    ETExactSizeNoChirality,
    ETUnconscious,
    KnownUpperBound,
    LandmarkNoChirality,
    LandmarkWithChirality,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkNoChirality,
    PTLandmarkWithChirality,
    StartFromLandmarkNoChirality,
    UnconsciousExploration,
)
from ..core.engine import TransportModel
from ..core.errors import ConfigurationError
from ..core.interfaces import ActivationScheduler, Algorithm, EdgeAdversary
from ..schedulers import (
    ETFairScheduler,
    FsyncScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
)
from .spec import CellConfig, resolve_positions

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


def _bound(cell: CellConfig) -> int:
    return cell.bound if cell.bound is not None else cell.ring_size


@dataclass(frozen=True)
class AlgorithmEntry:
    """Everything the CLI and executor need to instantiate one algorithm."""

    factory: Callable[[CellConfig], Algorithm]
    needs_landmark: bool
    default_agents: int
    transport: TransportModel
    placement_override: str | None = None


#: name -> how to build it (same names as ``python -m repro run``).
ALGORITHMS: dict[str, AlgorithmEntry] = {
    "known-bound": AlgorithmEntry(
        lambda c: KnownUpperBound(bound=_bound(c)), False, 2, TransportModel.NS),
    "unconscious": AlgorithmEntry(
        lambda c: UnconsciousExploration(), False, 2, TransportModel.NS),
    "landmark-chirality": AlgorithmEntry(
        lambda c: LandmarkWithChirality(), True, 2, TransportModel.NS),
    "landmark-no-chirality": AlgorithmEntry(
        lambda c: LandmarkNoChirality(), True, 2, TransportModel.NS),
    "start-from-landmark": AlgorithmEntry(
        lambda c: StartFromLandmarkNoChirality(), True, 2, TransportModel.NS,
        placement_override="origin"),
    "pt-bound": AlgorithmEntry(
        lambda c: PTBoundWithChirality(bound=_bound(c)), False, 2, TransportModel.PT),
    "pt-landmark": AlgorithmEntry(
        lambda c: PTLandmarkWithChirality(), True, 2, TransportModel.PT),
    "pt-bound-3": AlgorithmEntry(
        lambda c: PTBoundNoChirality(bound=_bound(c)), False, 3, TransportModel.PT),
    "pt-landmark-3": AlgorithmEntry(
        lambda c: PTLandmarkNoChirality(), True, 3, TransportModel.PT),
    "et-unconscious": AlgorithmEntry(
        lambda c: ETUnconscious(), False, 2, TransportModel.ET),
    "et-exact": AlgorithmEntry(
        lambda c: ETExactSizeNoChirality(ring_size=c.ring_size), False, 3,
        TransportModel.ET),
}

#: name -> adversary factory.
ADVERSARIES: dict[str, Callable[[CellConfig], EdgeAdversary]] = {
    "none": lambda c: NoRemoval(),
    "random": lambda c: RandomMissingEdge(seed=c.seed),
    "fixed": lambda c: FixedMissingEdge(c.edge),
    "periodic": lambda c: PeriodicMissingEdge(c.edge, period=4, duty=2),
    "block-agent": lambda c: BlockAgentAdversary(0),
    "prevent-meetings": lambda c: MeetingPreventionAdversary(),
}

#: name -> scheduler factory ("auto" resolves from the transport model).
SCHEDULERS: dict[str, Callable[[CellConfig], ActivationScheduler]] = {
    "fsync": lambda c: FsyncScheduler(),
    "random-fair": lambda c: RandomFairScheduler(seed=c.seed + 1),
    "round-robin": lambda c: RoundRobinScheduler(),
    "et-fair": lambda c: ETFairScheduler(RandomFairScheduler(seed=c.seed + 1)),
}

#: transport -> scheduler name used when a cell says ``scheduler="auto"``.
AUTO_SCHEDULER = {
    TransportModel.NS: "fsync",
    TransportModel.PT: "random-fair",
    TransportModel.ET: "et-fair",
}


def default_horizon(transport: TransportModel, ring_size: int) -> int:
    """The CLI's generous default horizon per transport model."""
    return 400 * ring_size if transport is TransportModel.NS else 20_000


def validate_cell(cell: CellConfig) -> None:
    """Fail fast on names the registry does not know."""
    if cell.algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {cell.algorithm!r} (choose from {sorted(ALGORITHMS)})")
    if cell.adversary not in ADVERSARIES:
        raise ConfigurationError(
            f"unknown adversary {cell.adversary!r} (choose from {sorted(ADVERSARIES)})")
    if cell.scheduler != "auto" and cell.scheduler not in SCHEDULERS:
        raise ConfigurationError(
            f"unknown scheduler {cell.scheduler!r} (choose from {sorted(SCHEDULERS)})")
    TransportModel(cell.transport)


def build_cell_engine(cell: CellConfig, *, trace=None) -> "Engine":
    """Assemble the engine a cell describes (deterministic given the cell)."""
    from ..api import build_engine  # late import: api is a facade over us too

    validate_cell(cell)
    entry = ALGORITHMS[cell.algorithm]
    transport = TransportModel(cell.transport)
    placement = entry.placement_override or cell.placement
    positions = resolve_positions(
        placement,
        ring_size=cell.ring_size,
        agents=cell.agents,
        positions=cell.positions if placement == "explicit" else None,
    )
    scheduler_name = cell.scheduler
    if scheduler_name == "auto":
        scheduler_name = AUTO_SCHEDULER[transport]
    landmark = cell.landmark
    if landmark is None and entry.needs_landmark:
        landmark = 0
    return build_engine(
        entry.factory(cell),
        ring_size=cell.ring_size,
        positions=positions,
        landmark=landmark,
        chirality=cell.chirality,
        flipped=cell.flipped,
        adversary=ADVERSARIES[cell.adversary](cell),
        scheduler=SCHEDULERS[scheduler_name](cell),
        transport=transport,
        trace=trace,
    )
