"""Reduce raw campaign records into the paper's table rows.

Two levels of reduction:

* :func:`metrics_from_result` flattens one :class:`~repro.core.results.RunResult`
  into the JSON-able metric dict the store keeps per cell;
* :func:`aggregate_records` groups stored records by configuration
  dimensions (default: variant label × ring size) and reduces each group
  to a :class:`TableRow` — the mean/max rounds and moves, exploration and
  termination statistics that Tables 1–4 report.

:func:`summarize_metrics` is the shared single-group reducer; the
classic in-process sweeps of :mod:`repro.analysis.runner` route through
it too, so a table row means the same thing whether it was produced by
a campaign or an ad-hoc sweep.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Any, Iterable, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..core.results import RunResult


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches numpy's default ("linear") method so report numbers agree
    with any offline analysis of the exported columnar data; implemented
    here (the lowest aggregation layer, no store dependencies) so both
    the table reducer below and the query layer's ``p50``/``p90``/``p99``
    series reducers share one definition.
    """
    if not values:
        raise ValueError("percentile of an empty group")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    frac = rank - low
    if frac == 0.0:
        return float(ordered[low])
    return ordered[low] * (1.0 - frac) + ordered[low + 1] * frac


def metrics_from_result(result: RunResult) -> dict[str, Any]:
    """Flatten a run outcome into the metric dict stored per cell."""
    out = {
        "rounds": result.rounds,
        "explored": result.explored,
        "exploration_round": result.exploration_round,
        "total_moves": result.total_moves,
        "terminated_count": result.terminated_count,
        "all_terminated": result.all_terminated,
        "last_termination_round": result.last_termination_round,
        "all_terminated_or_waiting": all(
            a.terminated or a.waiting_on_port for a in result.agents
        ),
        "halted_reason": result.halted_reason,
        "mode": result.termination_mode().value,
    }
    # The crash census only exists under a fault plan: fault-free
    # records keep the pre-resilience shape byte for byte (golden
    # stores, batch-vs-scalar diffs and store resume all rely on it).
    if result.crashed_count is not None:
        out["crashed_count"] = result.crashed_count
    return out


@dataclass(frozen=True)
class GroupStats:
    """Reduction of one group of metric dicts (one table cell family).

    ``p50``/``p90`` report the tails next to the mean: a sweep whose mean
    looks linear can still hide quadratic stragglers, and the percentile
    columns are where they show up.  (Defaults keep older call sites that
    construct :class:`GroupStats` positionally/partially working.)
    """

    runs: int
    mean_rounds: float
    max_rounds: int
    mean_moves: float
    max_moves: int
    mean_exploration_round: float | None
    all_explored: bool
    all_terminated: bool
    mean_last_termination_round: float | None
    max_last_termination_round: int | None
    modes: dict[str, int]
    p50_rounds: float = 0.0
    p90_rounds: float = 0.0
    p50_moves: float = 0.0
    p90_moves: float = 0.0


def summarize_metrics(metrics: Sequence[Mapping[str, Any]]) -> GroupStats:
    """Reduce metric dicts for one group; mean exploration round is only
    reported when *every* run explored (matching the paper's accounting)."""
    if not metrics:
        raise ValueError("cannot summarise an empty group")
    exploration = [
        m["exploration_round"] for m in metrics
        if m.get("exploration_round") is not None
    ]
    terminations = [
        m["last_termination_round"] for m in metrics
        if m.get("last_termination_round") is not None
    ]
    rounds = [m["rounds"] for m in metrics]
    moves = [m["total_moves"] for m in metrics]
    return GroupStats(
        runs=len(metrics),
        mean_rounds=statistics.fmean(rounds),
        max_rounds=max(rounds),
        mean_moves=statistics.fmean(moves),
        max_moves=max(moves),
        p50_rounds=percentile(rounds, 50),
        p90_rounds=percentile(rounds, 90),
        p50_moves=percentile(moves, 50),
        p90_moves=percentile(moves, 90),
        mean_exploration_round=(
            statistics.fmean(exploration)
            if len(exploration) == len(metrics) else None
        ),
        all_explored=all(m["explored"] for m in metrics),
        all_terminated=all(m.get("all_terminated", False) for m in metrics),
        mean_last_termination_round=(
            statistics.fmean(terminations) if terminations else None
        ),
        max_last_termination_round=(max(terminations) if terminations else None),
        # Sorted so rendering is independent of record arrival order
        # (parallel runs land records in nondeterministic order).
        modes=dict(sorted(Counter(m.get("mode", "?") for m in metrics).items())),
    )


def summarize_results(results: Sequence[RunResult]) -> GroupStats:
    """Reduce live :class:`RunResult` objects (the in-process sweep path)."""
    return summarize_metrics([metrics_from_result(r) for r in results])


@dataclass(frozen=True)
class TableRow:
    """One aggregated row: a group key plus its reduced statistics."""

    group: tuple[tuple[str, Any], ...]
    stats: GroupStats
    cells: tuple[str, ...] = field(default=(), repr=False)

    @property
    def label(self) -> str:
        return " ".join(f"{k}={v}" for k, v in self.group)

    def __str__(self) -> str:
        s = self.stats
        explored = (
            f"explored@~{s.mean_exploration_round:.1f}"
            if s.mean_exploration_round is not None
            else ("explored" if s.all_explored else "NOT always explored")
        )
        return (
            f"{self.label:<40} runs={s.runs:<3} rounds~{s.mean_rounds:.1f} "
            f"(p50 {s.p50_rounds:.0f}, p90 {s.p90_rounds:.0f}, max {s.max_rounds}) "
            f"moves~{s.mean_moves:.1f} "
            f"(p90 {s.p90_moves:.0f}, max {s.max_moves}) "
            f"{explored} modes={s.modes}"
        )


DEFAULT_GROUP_BY = ("label", "algorithm", "ring_size")


def _dimension_order(value: Any) -> tuple:
    """Sort key for one group-dimension value: numbers numerically first,
    then everything else lexically, ``None`` last."""
    if value is None:
        return (2, "", 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, "", value)
    return (1, str(value), 0)


def aggregate_records(
    records: Iterable[Mapping[str, Any]],
    *,
    by: Sequence[str] = DEFAULT_GROUP_BY,
) -> list[TableRow]:
    """Group successful records by config dimensions and reduce each group.

    Records carrying an ``"error"`` field are excluded — they have no
    metrics.  Groups are ordered by their key values (numeric dimensions
    like ``ring_size`` numerically, so growth tables read top to bottom).
    """
    from .spec import CellConfig  # local import: spec does not import us

    valid = {f.name for f in dataclass_fields(CellConfig)}
    unknown = [dim for dim in by if dim not in valid]
    if unknown:
        raise ConfigurationError(
            f"unknown group-by dimension(s) {unknown} (choose from {sorted(valid)})")

    groups: dict[tuple, list[Mapping[str, Any]]] = {}
    keys: dict[tuple, list[str]] = {}
    for record in records:
        if "error" in record:
            continue
        config = record.get("config", {})
        gkey = tuple(
            (dim, tuple(v) if isinstance(v, list) else v)
            for dim, v in ((d, config.get(d)) for d in by)
        )
        groups.setdefault(gkey, []).append(record["metrics"])
        keys.setdefault(gkey, []).append(record["key"])
    return [
        TableRow(group=gkey, stats=summarize_metrics(groups[gkey]),
                 cells=tuple(keys[gkey]))
        for gkey in sorted(
            groups, key=lambda g: tuple(_dimension_order(v) for _, v in g))
    ]


def aggregate_store(
    store,
    *,
    by: Sequence[str] = DEFAULT_GROUP_BY,
    where: Mapping[str, Any] | None = None,
) -> list[TableRow]:
    """Aggregate a result store through its query layer.

    The store-aware twin of :func:`aggregate_records`: filters go through
    :meth:`~repro.campaigns.stores.Query.where`, so backends that can
    (SQLite) evaluate them with indexed SQL instead of a full scan.
    """
    query = store.query()
    if where:
        query = query.where(**where)
    return query.table(by=by)


def render_rows(rows: Sequence[TableRow], *, title: str = "") -> str:
    """Aligned text report for a list of table rows."""
    lines = []
    if title:
        lines.append(f"== {title}")
    lines.extend(str(row) for row in rows)
    if not rows:
        lines.append("(no completed cells)")
    return "\n".join(lines)
