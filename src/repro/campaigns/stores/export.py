"""Columnar export of campaign records: Parquet when pyarrow exists, CSV always.

Large-campaign analysis wants column scans (one metric across a million
cells), not record iteration.  :func:`export_store` flattens records
into a fixed, documented column schema and writes them out:

* ``key``, ``elapsed_s``, ``error`` — record identity and bookkeeping;
* ``config_<field>`` — one column per :class:`CellConfig` field, in
  dataclass declaration order (list-valued fields JSON-encoded);
* ``metric_<name>`` — one column per metric observed anywhere in the
  export, sorted by name (error records leave them empty).

Parquet needs pyarrow; when it is not importable the CSV fallback keeps
the identical schema, so downstream code written against the columns
works on either format.
"""

from __future__ import annotations

import csv
import itertools
import json
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ...core.errors import ConfigurationError
from .base import ResultStore

#: Suffixes implying the Parquet format when ``format=None``.
PARQUET_SUFFIXES = frozenset({".parquet", ".pq"})

FORMATS = ("csv", "parquet")


def parquet_available() -> bool:
    """Is the optional pyarrow dependency importable?"""
    try:
        import pyarrow  # noqa: F401
    except ImportError:
        return False
    return True


def _config_columns() -> list[str]:
    from ..spec import CellConfig  # late: spec does not import us

    return [f.name for f in dataclass_fields(CellConfig)]


def _columns_for(metric_names: set[str]) -> list[str]:
    return (
        ["key", "elapsed_s", "error"]
        + [f"config_{name}" for name in _config_columns()]
        + [f"metric_{name}" for name in sorted(metric_names)]
    )


def export_columns(records: Iterable[Mapping[str, Any]]) -> list[str]:
    """The exact column schema an export of ``records`` will carry."""
    metric_names: set[str] = set()
    for record in records:
        metric_names.update(record.get("metrics", {}))
    return _columns_for(metric_names)


def _cell_value(value: Any) -> Any:
    """Flatten one cell: containers become canonical JSON text."""
    if isinstance(value, (list, tuple, dict)):
        return json.dumps(list(value) if isinstance(value, tuple) else value,
                          sort_keys=True, separators=(",", ":"))
    return value


def flatten_record(
    record: Mapping[str, Any], columns: Sequence[str]
) -> dict[str, Any]:
    """One record -> one flat row under the given column schema."""
    config = record.get("config", {})
    metrics = record.get("metrics", {})
    row: dict[str, Any] = {}
    for column in columns:
        if column.startswith("config_"):
            value = config.get(column[len("config_"):])
        elif column.startswith("metric_"):
            value = metrics.get(column[len("metric_"):])
        else:
            value = record.get(column)
        row[column] = _cell_value(value)
    return row


@dataclass(frozen=True)
class ExportResult:
    """What one export produced."""

    path: Path
    format: str
    rows: int
    columns: tuple[str, ...]

    def summary(self) -> str:
        return (f"exported {self.rows} rows x {len(self.columns)} columns "
                f"-> {self.path} ({self.format})")


def resolve_format(dest: Path, format: str | None) -> str:
    """Explicit format wins; otherwise the suffix decides; parquet
    requires pyarrow and fails loudly (never a silent CSV downgrade)."""
    if format is None:
        format = "parquet" if dest.suffix in PARQUET_SUFFIXES else "csv"
    if format not in FORMATS:
        raise ConfigurationError(
            f"unknown export format {format!r} (choose from {FORMATS})")
    if format == "parquet" and not parquet_available():
        raise ConfigurationError(
            "parquet export needs pyarrow, which is not installed; "
            "use --format csv (same column schema) or install pyarrow")
    return format


def export_store(
    store: ResultStore | Iterable[Mapping[str, Any]],
    dest: str | Path,
    *,
    format: str | None = None,
    where: Mapping[str, Any] | None = None,
) -> ExportResult:
    """Write a store's records (or any record iterable) as a columnar file.

    A :class:`ResultStore` input is scanned twice and never materialised:
    one pass discovers the metric columns, the second streams rows into
    the writer — memory stays flat however large the campaign (the
    Parquet writer necessarily holds its in-memory table; the CSV path
    is fully streaming).  A plain iterable is materialised once (it may
    not be re-iterable).
    """
    dest = Path(dest)
    format = resolve_format(dest, format)
    if isinstance(store, ResultStore):
        def scan() -> Iterable[Mapping[str, Any]]:
            return store.select(where)
    else:
        if where is not None:
            from .base import record_matches

            materialized = [r for r in store if record_matches(r, where)]
        else:
            materialized = list(store)

        def scan() -> Iterable[Mapping[str, Any]]:
            return iter(materialized)

    metric_names: set[str] = set()
    total = 0
    for record in scan():
        metric_names.update(record.get("metrics", {}))
        total += 1
    columns = _columns_for(metric_names)
    # Records stream oldest-first and appends land at the end, so capping
    # the write pass at the discovery pass's count snapshots the store:
    # rows appended by a concurrent writer between the passes can neither
    # inflate the row count nor smuggle in metrics the schema missed.
    snapshot = itertools.islice(scan(), total)
    rows = (flatten_record(record, columns) for record in snapshot)
    dest.parent.mkdir(parents=True, exist_ok=True)
    if format == "parquet":
        _write_parquet(dest, columns, rows)
    else:
        _write_csv(dest, columns, rows)
    return ExportResult(path=dest, format=format, rows=total,
                        columns=tuple(columns))


def _write_csv(dest: Path, columns: Sequence[str],
               rows: Iterable[Mapping[str, Any]]) -> None:
    with dest.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns))
        writer.writeheader()
        for row in rows:
            writer.writerow({k: ("" if v is None else v) for k, v in row.items()})


def _write_parquet(dest: Path, columns: Sequence[str],
                   rows: Iterable[Mapping[str, Any]]) -> None:
    import pyarrow as pa
    import pyarrow.parquet as pq

    arrays: dict[str, list[Any]] = {column: [] for column in columns}
    for row in rows:
        for column in columns:
            arrays[column].append(row[column])
    pq.write_table(pa.table(arrays), dest)
