"""Indexed query/report layer over any result-store backend.

A :class:`Query` is an immutable view over a store: ``where()`` narrows
it by config dimensions (pushed into SQL on backends that can), and the
terminal operations reduce it — ``table()`` into the paper's aggregated
rows, ``series()`` into an ``x -> reduced metric`` curve, and ``fit()``
into a :class:`~repro.analysis.complexity.ShapeProfile` checking the
asymptotic *shape* of that curve (linear vs n·log n vs quadratic).

This is the path ``python -m repro campaign report`` takes, so the O(·)
claims of the paper are checked straight from the store::

    query = open_store("sqlite:results/t2.db").query()
    for row in fit_rows(query.where(algorithm="known-bound")):
        print(row)     # label=... rounds: linear (R^2: linear=0.999, ...)
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Any, Iterator, Mapping, Sequence

from ...analysis.complexity import DEFAULT_SHAPE_MODELS, ShapeProfile, fit_profile
from ...core.errors import ConfigurationError
from ..aggregate import DEFAULT_GROUP_BY, TableRow, aggregate_records, percentile
from .base import ResultStore, record_matches

def _percentile_reducer(q: float):
    def reduce(values: Sequence[float]) -> float:
        return percentile(values, q)

    return reduce


#: metric-series reducers usable by :meth:`Query.series`.  The percentile
#: reducers make tail behaviour a first-class series — perf sweeps report
#: p50/p90/p99 next to the mean instead of hiding stragglers in it.
REDUCERS = {
    "mean": statistics.fmean,
    "max": max,
    "min": min,
    "sum": sum,
    "median": _percentile_reducer(50),
    "p50": _percentile_reducer(50),
    "p90": _percentile_reducer(90),
    "p99": _percentile_reducer(99),
}


def _valid_dimensions() -> set[str]:
    from ..spec import CellConfig  # late: spec does not import us

    return {f.name for f in dataclass_fields(CellConfig)}


@dataclass(frozen=True)
class Query:
    """An immutable, composable view over one result store."""

    store: ResultStore
    filters: Mapping[str, Any] = field(default_factory=dict)

    def where(self, **dims: Any) -> "Query":
        """Narrow by config-dimension filters (scalar equality, a list of
        admissible values, or a callable predicate)."""
        unknown = sorted(set(dims) - _valid_dimensions())
        if unknown:
            raise ConfigurationError(
                f"unknown filter dimension(s) {unknown} "
                f"(choose from {sorted(_valid_dimensions())})")
        return Query(self.store, {**self.filters, **dims})

    # -- terminal operations -------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Matching records, oldest first (errors included)."""
        return self.store.select(self.filters or None)

    def count(self) -> int:
        return sum(1 for _ in self.records())

    def values(self, dim: str) -> list[Any]:
        """Distinct config values of one dimension, sorted, over matches."""
        seen = {r.get("config", {}).get(dim) for r in self.records()}
        return sorted(seen, key=lambda v: (v is None, str(type(v)), v))

    def table(self, by: Sequence[str] = DEFAULT_GROUP_BY) -> list[TableRow]:
        """Group and reduce matching records into the paper's table rows."""
        return aggregate_records(self.records(), by=by)

    def series(
        self, x: str = "ring_size", y: str = "rounds", reduce: str = "mean"
    ) -> list[tuple[float, float]]:
        """The reduced metric ``y`` as a function of config dimension ``x``.

        Successful records are grouped by their ``config[x]`` value (one
        group per sweep point, e.g. all seeds of one ring size) and each
        group's ``metrics[y]`` values are reduced (default: mean).
        Records missing the metric, and error records, are skipped.
        """
        return _series_from_records(self.records(), x=x, y=y, reduce=reduce)

    def fit(
        self,
        x: str = "ring_size",
        y: str = "rounds",
        *,
        reduce: str = "mean",
        models: Sequence[str] = DEFAULT_SHAPE_MODELS,
    ) -> ShapeProfile | None:
        """Shape-fit the ``y``-vs-``x`` series; ``None`` below 3 points
        (two points fit every 2-parameter model perfectly)."""
        series = self.series(x=x, y=y, reduce=reduce)
        if len(series) < 3:
            return None
        xs, ys = zip(*series)
        return fit_profile(xs, ys, models)

    def errors(self) -> list[dict[str, Any]]:
        """Latest error record per cell whose *only* outcome is an error.

        The fleet-resume view: these are exactly the cells
        ``campaign resume --retry-failed`` (or
        ``WorkQueue.enqueue(retry_failed=True)``) would re-drive.  Cells
        that errored and later succeeded do not appear.
        """
        failed = self.store.error_keys()
        latest: dict[str, dict[str, Any]] = {}
        for record in self.records():
            if "error" in record and record["key"] in failed:
                latest[record["key"]] = record  # records are oldest-first
        return list(latest.values())

    def scatter(
        self, x: str = "ring_size", y: str = "rounds"
    ) -> list[tuple[float, Any, float]]:
        """Per-record ``(x, seed, y)`` points — the unreduced cloud.

        The raw rows behind :meth:`series`: one point per successful
        record, tagged with the record's seed so outlier runs can be
        traced back to an exact re-runnable cell.  Sorted by ``(x, seed)``.
        """
        points: list[tuple[float, Any, float]] = []
        for record in self.records():
            if "error" in record:
                continue
            config = record.get("config", {})
            x_value = config.get(x)
            y_value = record.get("metrics", {}).get(y)
            if not isinstance(x_value, (int, float)) or isinstance(x_value, bool):
                continue
            if not isinstance(y_value, (int, float)) or isinstance(y_value, bool):
                continue
            points.append((x_value, config.get("seed"), y_value))
        return sorted(points, key=lambda p: (p[0], _seed_order(p[1])))


def _seed_order(seed: Any) -> tuple:
    """Sort key for seeds: numbers numerically, the rest lexically last."""
    if isinstance(seed, (int, float)) and not isinstance(seed, bool):
        return (0, seed, "")
    return (1, 0, repr(seed))


def _series_from_records(
    records, *, x: str, y: str, reduce: str
) -> list[tuple[float, float]]:
    """The per-``x`` reduction behind :meth:`Query.series` (shared with
    :func:`fit_rows`, which works over an already-materialised list)."""
    if reduce not in REDUCERS:
        raise ConfigurationError(
            f"unknown reducer {reduce!r} (choose from {sorted(REDUCERS)})")
    groups: dict[float, list[float]] = {}
    for record in records:
        if "error" in record:
            continue
        x_value = record.get("config", {}).get(x)
        y_value = record.get("metrics", {}).get(y)
        if not isinstance(x_value, (int, float)) or isinstance(x_value, bool):
            continue
        if not isinstance(y_value, (int, float)) or isinstance(y_value, bool):
            continue
        groups.setdefault(x_value, []).append(y_value)
    reducer = REDUCERS[reduce]
    return [(x_value, reducer(groups[x_value])) for x_value in sorted(groups)]


@dataclass(frozen=True)
class FitRow:
    """One group's shape verdict for one metric (a ``report --fit`` line)."""

    group: tuple[tuple[str, Any], ...]
    metric: str
    points: tuple[tuple[float, float], ...]
    profile: ShapeProfile | None

    @property
    def label(self) -> str:
        return " ".join(f"{k}={v}" for k, v in self.group)

    def __str__(self) -> str:
        sizes = f"n={[int(x) if float(x).is_integer() else x for x, _ in self.points]}"
        if self.profile is None:
            return (f"{self.label:<40} {self.metric}: "
                    f"(needs >= 3 sweep points to fit; have {sizes})")
        return f"{self.label:<40} {self.metric}: {self.profile.verdict()}  [{sizes}]"


def fit_rows(
    query: Query,
    *,
    by: Sequence[str] = ("label",),
    x: str = "ring_size",
    metrics: Sequence[str] = ("rounds", "total_moves"),
    reduce: str = "mean",
    models: Sequence[str] = DEFAULT_SHAPE_MODELS,
    records: Sequence[dict[str, Any]] | None = None,
) -> list[FitRow]:
    """Shape-fit every ``by``-group of a query, one row per metric.

    Groups follow the same ordering as :func:`aggregate_records`, so the
    fit table lines up with the aggregate table above it.  The store is
    read exactly once; grouping and series reduction run over the
    materialised records.  A caller that already holds the query's
    records (the CLI report prints the aggregate table from the same
    data) passes them via ``records`` to skip even that one read.
    """
    if records is None:
        records = list(query.records())
    rows: list[FitRow] = []
    for table_row in aggregate_records(records, by=by):
        group_filters = dict(table_row.group)
        group_records = [r for r in records if record_matches(r, group_filters)]
        for metric in metrics:
            series = _series_from_records(
                group_records, x=x, y=metric, reduce=reduce)
            profile = None
            if len(series) >= 3:
                xs, ys = zip(*series)
                profile = fit_profile(xs, ys, models)
            rows.append(FitRow(
                group=table_row.group,
                metric=metric,
                points=tuple(series),
                profile=profile,
            ))
    return rows


def render_fit_rows(rows: Sequence[FitRow], *, title: str = "") -> str:
    """Aligned text report for a list of fit rows."""
    lines = []
    if title:
        lines.append(f"== {title}")
    lines.extend(str(row) for row in rows)
    if not rows:
        lines.append("(no completed cells to fit)")
    return "\n".join(lines)


def render_error_rows(
    records: Sequence[dict[str, Any]], *, title: str = ""
) -> str:
    """One line per errored cell: key, label, the dimensions, the error."""
    lines = []
    if title:
        lines.append(f"== {title}")
    for record in records:
        config = record.get("config", {})
        label = config.get("label") or config.get("algorithm") or "?"
        dims = (f"n={config.get('ring_size')} seed={config.get('seed')} "
                f"topology={config.get('topology', 'ring')}")
        lines.append(
            f"{record.get('key', '?'):<26} {label:<36} {dims:<34} "
            f"{record.get('error', '?')}")
    if not records:
        lines.append("(no errored cells)")
    return "\n".join(lines)


def render_scatter(
    records: Sequence[dict[str, Any]],
    *,
    by: Sequence[str] = ("label",),
    x: str = "ring_size",
    metrics: Sequence[str] = ("rounds", "total_moves"),
    title: str = "",
) -> str:
    """Per-seed scatter rows: one line per record, grouped like the table.

    The drill-down under an aggregate report — each line names the exact
    (group, x, seed) cell behind one measured value, so a fat p90 in the
    table resolves to re-runnable configurations.
    """
    lines = []
    if title:
        lines.append(f"== {title}")
    # One pass to bucket records under the same group key the aggregate
    # table uses; aggregate_records then only dictates the group order.
    buckets: dict[tuple, list[dict[str, Any]]] = {}
    for record in records:
        if "error" in record:
            continue
        config = record.get("config", {})
        gkey = tuple(
            (dim, tuple(v) if isinstance(v, list) else v)
            for dim, v in ((d, config.get(d)) for d in by)
        )
        buckets.setdefault(gkey, []).append(record)
    emitted = 0
    for table_row in aggregate_records(records, by=by):
        for record in buckets.get(table_row.group, ()):
            config = record.get("config", {})
            values = " ".join(
                f"{metric}={record.get('metrics', {}).get(metric)}"
                for metric in metrics
            )
            lines.append(
                f"{table_row.label:<40} {x}={config.get(x):<6} "
                f"seed={config.get('seed'):<4} {values}"
            )
            emitted += 1
    if not emitted:
        lines.append("(no completed cells)")
    return "\n".join(lines)
