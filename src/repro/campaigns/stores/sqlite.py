"""SQLite backend: concurrent appends, indexed resume and filter queries.

Scaling past a single JSONL writer needs three things the flat file
cannot give:

* **safe concurrent appends** — WAL journal mode plus a generous busy
  timeout lets several worker *processes* append to one database while
  readers keep streaming (writers serialise on a short lock instead of
  corrupting each other);
* **indexed resume** — :meth:`completed_keys` is one indexed
  ``SELECT DISTINCT cell_key ... WHERE ok = 1`` instead of a full-file
  re-parse;
* **indexed reports** — equality filters on config dimensions are pushed
  down into SQL (``json_extract`` over the stored record), and several
  campaigns can share one database, scoped by the indexed
  ``campaign_key`` column.

The stored unit is still the full JSON record, so every backend returns
byte-identical dicts and aggregation/reporting code never knows which
backend fed it.
"""

from __future__ import annotations

import json
import os
import sqlite3
import weakref
from typing import Any, Iterator, Mapping

from ...core.errors import ConfigurationError
from ...resilience.retry import retry
from .base import LIST_FIELDS, ResultStore, _check_dimension

#: First bytes of every SQLite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"

#: Every live store, so the fork hook below can find their connections.
_LIVE_STORES: "weakref.WeakSet[SqliteStore]" = weakref.WeakSet()

#: Connections inherited across ``fork()``, pinned forever in the child.
#:
#: SQLite documents that carrying an open connection across ``fork()``
#: is unsafe — and *closing* one in the child is the worst case: the
#: close path can drop POSIX locks and reset the WAL underneath the
#: child's (or a sibling's) own healthy connection, silently discarding
#: committed transactions.  Python finalizes unreferenced connections
#: from the cyclic GC at unpredictable moments, so a child forked while
#: the parent held cycle-trapped connections would eventually "close"
#: them mid-campaign.  The documented-safe alternative is to never touch
#: them: this list keeps a strong reference so the child leaks one file
#: descriptor per inherited connection instead of corrupting the store.
_QUARANTINED_CONNECTIONS: list = []


def _quarantine_inherited_connections() -> None:
    """after-fork(child) hook: detach every inherited connection."""
    for store in list(_LIVE_STORES):
        conn = store._conn
        store._conn = None
        store._pid = None
        if conn is not None:
            _QUARANTINED_CONNECTIONS.append(conn)


if hasattr(os, "register_at_fork"):  # POSIX; fork is where the hazard is
    os.register_at_fork(after_in_child=_quarantine_inherited_connections)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    id           INTEGER PRIMARY KEY,
    cell_key     TEXT NOT NULL,
    campaign_key TEXT NOT NULL DEFAULT '',
    ok           INTEGER NOT NULL,
    record       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS ix_results_cell_key ON results (cell_key, ok);
CREATE INDEX IF NOT EXISTS ix_results_campaign_key ON results (campaign_key);
"""

#: Distributed-queue tables (see :mod:`repro.campaigns.distributed`).
#: They live next to ``results`` on purpose: the store *is* the
#: coordinator, and lease completion appends result rows and retires the
#: chunk in one transaction — the exactly-once-recording guarantee.
#:
#: ``chunks``  — the unit of claimable work: an ordered JSON array of cell
#:              dicts (plus the parallel array of their content-hash keys,
#:              so dedupe scans never re-hash cells inside the write lock),
#:              moving ``pending -> leased -> done``;
#: ``leases``  — at most one row per leased chunk: who holds it, when the
#:              holder last heartbeat, and how many times the chunk has
#:              been claimed (attempt > 1 means it was stolen);
#: ``workers`` — fleet telemetry: one row per worker that ever polled,
#:              with its last-seen heartbeat and completion counters.
_QUEUE_SCHEMA = """
CREATE TABLE IF NOT EXISTS chunks (
    id           INTEGER PRIMARY KEY,
    campaign_key TEXT NOT NULL DEFAULT '',
    state        TEXT NOT NULL DEFAULT 'pending',
    cells        TEXT NOT NULL,
    cell_keys    TEXT NOT NULL,
    n_cells      INTEGER NOT NULL,
    created_at   REAL NOT NULL,
    done_at      REAL,
    batched      INTEGER NOT NULL DEFAULT 0,
    cells_per_s  REAL
);
CREATE INDEX IF NOT EXISTS ix_chunks_state ON chunks (campaign_key, state);
CREATE TABLE IF NOT EXISTS leases (
    chunk_id     INTEGER PRIMARY KEY,
    worker_id    TEXT NOT NULL,
    heartbeat    REAL NOT NULL,
    acquired_at  REAL NOT NULL,
    attempt      INTEGER NOT NULL DEFAULT 1
);
CREATE TABLE IF NOT EXISTS workers (
    worker_id    TEXT PRIMARY KEY,
    campaign_key TEXT NOT NULL DEFAULT '',
    host         TEXT NOT NULL DEFAULT '',
    pid          INTEGER NOT NULL DEFAULT 0,
    started_at   REAL NOT NULL,
    last_seen    REAL NOT NULL,
    cells_done   INTEGER NOT NULL DEFAULT 0,
    chunks_done  INTEGER NOT NULL DEFAULT 0
);
"""

#: Observability tables (see :mod:`repro.obs`).  Additive — ``CREATE
#: TABLE IF NOT EXISTS`` is the whole migration for stores created
#: before this schema existed.
#:
#: ``spans``          — the persisted form of the campaign → chunk → cell
#:                      span hierarchy (``repro.obs.spans``): one row per
#:                      closed span, correlating worker/host/route with
#:                      result rows via the record's ``span_id``;
#: ``worker_metrics`` — one row per worker (or pool run): its latest
#:                      serialized metrics snapshot, merged by ``campaign
#:                      metrics`` / ``status`` into the fleet view.
_OBS_SCHEMA = """
CREATE TABLE IF NOT EXISTS spans (
    span_id      TEXT PRIMARY KEY,
    parent_id    TEXT,
    campaign_key TEXT NOT NULL DEFAULT '',
    kind         TEXT NOT NULL,
    name         TEXT NOT NULL,
    worker_id    TEXT NOT NULL DEFAULT '',
    host         TEXT NOT NULL DEFAULT '',
    start_s      REAL NOT NULL,
    elapsed_s    REAL,
    status       TEXT NOT NULL DEFAULT 'ok',
    attrs        TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS ix_spans_campaign ON spans (campaign_key, kind);
CREATE INDEX IF NOT EXISTS ix_spans_parent ON spans (parent_id);
CREATE TABLE IF NOT EXISTS worker_metrics (
    worker_id    TEXT PRIMARY KEY,
    campaign_key TEXT NOT NULL DEFAULT '',
    updated_at   REAL NOT NULL,
    snapshot     TEXT NOT NULL
);
"""


def _migrate_chunk_telemetry(conn: sqlite3.Connection) -> None:
    """Grow ``chunks`` columns added after the first queue release.

    ``batched``/``cells_per_s`` (per-chunk execution telemetry for
    ``campaign status``) arrived with the vectorized batch core; stores
    created earlier lack the columns, and ``CREATE TABLE IF NOT EXISTS``
    will not add them — so additive ``ALTER TABLE`` here keeps old
    databases resumable without a rewrite.
    """
    have = {row[1] for row in conn.execute("PRAGMA table_info(chunks)")}
    if "batched" not in have:
        conn.execute(
            "ALTER TABLE chunks ADD COLUMN batched INTEGER NOT NULL DEFAULT 0")
    if "cells_per_s" not in have:
        conn.execute("ALTER TABLE chunks ADD COLUMN cells_per_s REAL")


#: INSERT statement matching :func:`result_rows` (shared with the queue's
#: lease-completion transaction).
INSERT_RESULT_SQL = (
    "INSERT INTO results (cell_key, campaign_key, ok, record) VALUES (?, ?, ?, ?)"
)


def result_rows(
    records: list[dict[str, Any]], campaign: str
) -> list[tuple[str, str, int, str]]:
    """``results``-table rows for already schema-stamped records."""
    return [
        (
            record["key"],
            campaign,
            0 if "error" in record else 1,
            json.dumps(record, sort_keys=True, separators=(",", ":")),
        )
        for record in records
    ]


class SqliteStore(ResultStore):
    """A result store backed by one SQLite database (WAL mode)."""

    scheme = "sqlite"
    supports_leases = True

    def __init__(self, path: str | os.PathLike[str], *,
                 campaign: str | None = None, timeout_s: float = 30.0) -> None:
        super().__init__(path, campaign=campaign)
        self._timeout_s = timeout_s
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        _LIVE_STORES.add(self)

    # -- connection management ----------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """The process-local connection (reopened after a fork)."""
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            # A connection inherited across fork() must never be reused:
            # SQLite locks are per-process.  The module's after-fork hook
            # quarantines inherited connections eagerly (never closing
            # them in the child); this pid check is the backstop.  Drop
            # without closing — the parent still owns it.
            if self._conn is not None:
                _QUARANTINED_CONNECTIONS.append(self._conn)
            self._conn = None
            self._check_magic()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=self._timeout_s)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            # The connect() timeout only guards the implicit lock waits
            # sqlite3 knows about; busy_timeout makes SQLite itself block
            # (instead of raising) on locks taken inside explicit BEGIN
            # IMMEDIATE transactions too.  Every connection goes through
            # here — including fork-quarantine reopens and the lease
            # keeper's — so there is no unguarded path.
            conn.execute(f"PRAGMA busy_timeout = {int(self._timeout_s * 1000)}")
            conn.executescript(_SCHEMA)
            conn.executescript(_QUEUE_SCHEMA)
            conn.executescript(_OBS_SCHEMA)
            _migrate_chunk_telemetry(conn)
            conn.commit()
            self._conn = conn
            self._pid = pid
        return self._conn

    def connection(self) -> sqlite3.Connection:
        """The process-local connection (schema applied, WAL mode).

        Public for the distributed work queue, which runs its own
        claim/heartbeat/complete transactions against the same database
        so result appends and lease transitions commit atomically.
        """
        return self._connect()

    def _check_magic(self) -> None:
        """Refuse to run SQL against a file another backend wrote.

        A pre-existing ``.db`` path may hold JSONL from a version where
        every store was JSONL; without this check sqlite3 raises an
        opaque ``DatabaseError`` mid-query (or, worse, a write could
        clobber history).
        """
        if not self.path.is_file() or self.path.stat().st_size == 0:
            return
        with self.path.open("rb") as fh:
            magic = fh.read(len(_SQLITE_MAGIC))
        if magic != _SQLITE_MAGIC:
            raise ConfigurationError(
                f"{self.path} is not a SQLite database — if it was written "
                f"by the JSONL backend, point at it with jsonl:{self.path}")

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = None

    # -- campaign scoping ---------------------------------------------

    def _scope(self) -> tuple[str, list[Any]]:
        """WHERE fragment confining reads to this store's campaign tag."""
        if self.campaign is None:
            return "", []
        return "campaign_key = ?", [self.campaign]

    # -- reading -------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        yield from self._select_sql([], [])

    def _select_sql(
        self, clauses: list[str], params: list[Any]
    ) -> Iterator[dict[str, Any]]:
        if not self.path.exists():
            return
        scope, scope_params = self._scope()
        where = " AND ".join(([scope] if scope else []) + clauses)
        sql = "SELECT record FROM results"
        if where:
            sql += f" WHERE {where}"
        sql += " ORDER BY id"
        cursor = self._connect().execute(sql, scope_params + params)
        for (text,) in cursor:
            try:
                record = json.loads(text)
            except json.JSONDecodeError:  # pragma: no cover - rows are atomic
                continue
            if isinstance(record, dict) and "key" in record:
                yield record

    def _load_completed_keys(self) -> set[str]:
        """A single indexed query — no record parsing at all."""
        if not self.path.exists():
            return set()
        scope, scope_params = self._scope()
        sql = "SELECT DISTINCT cell_key FROM results WHERE ok = 1"
        if scope:
            sql += f" AND {scope}"
        return {key for (key,) in self._connect().execute(sql, scope_params)}

    def result_counts(self) -> tuple[int, int]:
        """(total records, error records) for this store's campaign scope.

        One indexed aggregate — the distributed coordinator polls this
        for progress accounting, so the results-table/scoping knowledge
        stays here with the other indexed queries.
        """
        if not self.path.exists():
            return (0, 0)
        scope, scope_params = self._scope()
        sql = "SELECT COUNT(*), COALESCE(SUM(1 - ok), 0) FROM results"
        if scope:
            sql += f" WHERE {scope}"
        row = self._connect().execute(sql, scope_params).fetchone()
        return (int(row[0]), int(row[1]))

    def _load_error_keys(self) -> set[str]:
        """Indexed errored-only keys: errored minus ever-succeeded."""
        if not self.path.exists():
            return set()
        scope, scope_params = self._scope()
        tail = f" AND {scope}" if scope else ""
        sql = (
            f"SELECT DISTINCT cell_key FROM results WHERE ok = 0{tail} "
            f"EXCEPT SELECT DISTINCT cell_key FROM results WHERE ok = 1{tail}"
        )
        return {key for (key,) in
                self._connect().execute(sql, scope_params + scope_params)}

    def select(
        self, where: Mapping[str, Any] | None = None
    ) -> Iterator[dict[str, Any]]:
        """Push scalar equality/membership filters into indexed SQL.

        Callable predicates and list-valued fields (``flipped``,
        ``positions``) fall back to the Python-side filter; everything
        else becomes a ``json_extract`` comparison evaluated by SQLite.
        """
        from .base import record_matches

        where = dict(where or {})
        clauses: list[str] = []
        params: list[Any] = []
        residual: dict[str, Any] = {}
        for dim, expected in where.items():
            _check_dimension(dim)
            expr = f"json_extract(record, '$.config.{dim}')"
            if callable(expected) or dim in LIST_FIELDS:
                residual[dim] = expected
            elif expected is None:
                clauses.append(f"{expr} IS NULL")
            elif isinstance(expected, bool):
                clauses.append(f"{expr} = ?")
                params.append(int(expected))
            elif isinstance(expected, (int, float, str)):
                clauses.append(f"{expr} = ?")
                params.append(expected)
            elif isinstance(expected, (list, tuple, set, frozenset)):
                values = [v for v in expected]
                if values and all(
                    isinstance(v, (int, float, str)) and not isinstance(v, bool)
                    for v in values
                ):
                    marks = ",".join("?" * len(values))
                    clauses.append(f"{expr} IN ({marks})")
                    params.extend(values)
                else:
                    residual[dim] = expected
            else:
                residual[dim] = expected
        for record in self._select_sql(clauses, params):
            if not residual or record_matches(record, residual):
                yield record

    def __len__(self) -> int:
        if not self.path.exists():
            return 0
        scope, scope_params = self._scope()
        sql = "SELECT COUNT(*) FROM results"
        if scope:
            sql += f" WHERE {scope}"
        (count,) = self._connect().execute(sql, scope_params).fetchone()
        return int(count)

    # -- writing -------------------------------------------------------

    def _write_many(self, records: list[dict[str, Any]]) -> None:
        """One transaction per chunk; atomic even against a mid-write kill."""
        rows = result_rows(records, self.campaign or "")
        conn = self._connect()

        def txn() -> None:
            with conn:  # BEGIN ... COMMIT (or ROLLBACK on error)
                conn.executemany(INSERT_RESULT_SQL, rows)

        retry(txn, site="store.write_many")

    # -- observability (spans + worker metrics snapshots) --------------

    def append_spans(self, spans: list[dict[str, Any]]) -> None:
        """Persist closed spans (one transaction per flush, idempotent).

        ``INSERT OR IGNORE``: span ids are unique per emission, so a
        retried flush after a crash-mid-commit cannot double-insert.
        """
        rows = [
            (
                span["span_id"],
                span.get("parent_id"),
                self.campaign or span.get("campaign") or "",
                span["kind"],
                span["name"],
                span.get("worker") or "",
                span.get("host") or "",
                span.get("start_s", 0.0),
                span.get("elapsed_s"),
                span.get("status", "ok"),
                json.dumps(span.get("attrs") or {}, sort_keys=True,
                           separators=(",", ":")),
            )
            for span in spans
        ]
        conn = self._connect()

        def txn() -> None:
            with conn:
                conn.executemany(
                    "INSERT OR IGNORE INTO spans (span_id, parent_id, "
                    "campaign_key, kind, name, worker_id, host, start_s, "
                    "elapsed_s, status, attrs) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    rows)

        retry(txn, site="store.append_spans")

    def spans(self, kind: str | None = None) -> list[dict[str, Any]]:
        """Read back persisted spans (campaign-scoped, insertion order)."""
        if not self.path.exists():
            return []
        scope, params = self._scope()
        clauses = [scope] if scope else []
        if kind is not None:
            clauses.append("kind = ?")
            params = params + [kind]
        sql = ("SELECT span_id, parent_id, campaign_key, kind, name, "
               "worker_id, host, start_s, elapsed_s, status, attrs "
               "FROM spans")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY start_s, span_id"
        out = []
        for row in self._connect().execute(sql, params):
            out.append({
                "span_id": row[0],
                "parent_id": row[1],
                "campaign": row[2],
                "kind": row[3],
                "name": row[4],
                "worker": row[5],
                "host": row[6],
                "start_s": row[7],
                "elapsed_s": row[8],
                "status": row[9],
                "attrs": json.loads(row[10]) if row[10] else {},
            })
        return out

    def record_metrics_snapshot(
        self, worker_id: str, snapshot: Mapping[str, Any]
    ) -> None:
        """Upsert one worker's (or run's) latest metrics snapshot."""
        import time as _time

        conn = self._connect()

        def txn() -> None:
            with conn:
                conn.execute(
                    "INSERT INTO worker_metrics "
                    "(worker_id, campaign_key, updated_at, snapshot) "
                    "VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(worker_id) DO UPDATE SET "
                    "campaign_key = excluded.campaign_key, "
                    "updated_at = excluded.updated_at, "
                    "snapshot = excluded.snapshot",
                    (worker_id, self.campaign or "", _time.time(),
                     json.dumps(snapshot, sort_keys=True,
                                separators=(",", ":"))))

        retry(txn, site="store.metrics_snapshot")

    def metrics_snapshots(self) -> list[tuple[str, float, dict[str, Any]]]:
        """``(worker_id, updated_at, snapshot)`` rows, campaign-scoped."""
        if not self.path.exists():
            return []
        scope, params = self._scope()
        sql = "SELECT worker_id, updated_at, snapshot FROM worker_metrics"
        if scope:
            sql += f" WHERE {scope}"
        sql += " ORDER BY worker_id"
        out = []
        for worker_id, updated_at, text in self._connect().execute(sql, params):
            try:
                snap = json.loads(text)
            except json.JSONDecodeError:  # pragma: no cover - rows are atomic
                continue
            out.append((worker_id, updated_at, snap))
        return out
