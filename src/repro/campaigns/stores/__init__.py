"""Pluggable result-store backends with an indexed query/report layer.

* :mod:`~repro.campaigns.stores.base` — the abstract :class:`ResultStore`
  contract (records, completed keys, durable appends) and
  :func:`open_store`, the URI/path -> backend resolver;
* :mod:`~repro.campaigns.stores.jsonl` — :class:`JsonlStore`, the
  append-only one-line-per-record default;
* :mod:`~repro.campaigns.stores.sqlite` — :class:`SqliteStore`, WAL-mode
  SQLite with concurrent appends and indexed resume/filter queries;
* :mod:`~repro.campaigns.stores.query` — :class:`Query`, the
  filter/group/aggregate/shape-fit layer every backend exposes via
  ``store.query()``;
* :mod:`~repro.campaigns.stores.export` — columnar export (Parquet via
  pyarrow when available, CSV with the identical schema otherwise).

Everywhere a store is accepted — ``python -m repro campaign ... --store``,
:func:`repro.api.run_campaign`, the executor — a URI selects the
backend: ``sqlite:results/t2.db``, ``jsonl:results/t2.jsonl``, or a bare
path (suffix-sniffed, JSONL by default).
"""

from .base import (
    LIST_FIELDS,
    SCHEMA_VERSION,
    SQLITE_SUFFIXES,
    ResultStore,
    open_store,
    record_matches,
    store_backends,
)
from .export import (
    ExportResult,
    export_columns,
    export_store,
    flatten_record,
    parquet_available,
)
from .jsonl import JsonlStore
from .query import (
    FitRow,
    Query,
    fit_rows,
    render_error_rows,
    render_fit_rows,
    render_scatter,
)
from .sqlite import SqliteStore

__all__ = [
    "ExportResult",
    "FitRow",
    "JsonlStore",
    "LIST_FIELDS",
    "Query",
    "ResultStore",
    "SCHEMA_VERSION",
    "SQLITE_SUFFIXES",
    "SqliteStore",
    "export_columns",
    "export_store",
    "fit_rows",
    "flatten_record",
    "open_store",
    "parquet_available",
    "record_matches",
    "render_error_rows",
    "render_fit_rows",
    "render_scatter",
    "store_backends",
]
