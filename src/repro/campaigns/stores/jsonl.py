"""Append-only JSONL backend: one record per line, fsynced per chunk.

The original (and default) store format.  Human-greppable, trivially
mergeable with ``cat``, and tolerant of a truncated final line — the
signature of a run killed mid-write — which the reader skips instead of
refusing the whole file.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from ...obs.logs import get_logger
from .base import ResultStore

_log = get_logger(__name__)


class JsonlStore(ResultStore):
    """A campaign's durable memory, backed by one JSONL file."""

    scheme = "jsonl"

    # -- reading -------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Yield every well-formed record (malformed/truncated lines skipped).

        The file is read as bytes: a line torn mid-write can end inside
        a multi-byte UTF-8 sequence, which a text-mode iterator would
        turn into a ``UnicodeDecodeError`` for the *whole* file.  Each
        skipped line is logged once (``campaign fsck`` finds and
        quarantines them); the cell simply re-runs.
        """
        if not self.path.exists():
            return
        with self.path.open("rb") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
                    # interrupted mid-write; the cell will re-run
                    _log.warning(
                        "%s line %d: skipping malformed record "
                        "(%d bytes; run `campaign fsck` to quarantine)",
                        self.path, line_no, len(line))
                    continue
                if isinstance(record, dict) and "key" in record:
                    yield record

    # -- writing -------------------------------------------------------

    def _write_many(self, records: list[dict[str, Any]]) -> None:
        """Append records with a single open/flush/fsync."""
        import os

        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
