"""Append-only JSONL backend: one record per line, fsynced per chunk.

The original (and default) store format.  Human-greppable, trivially
mergeable with ``cat``, and tolerant of a truncated final line — the
signature of a run killed mid-write — which the reader skips instead of
refusing the whole file.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from .base import ResultStore


class JsonlStore(ResultStore):
    """A campaign's durable memory, backed by one JSONL file."""

    scheme = "jsonl"

    # -- reading -------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Yield every well-formed record (malformed/truncated lines skipped)."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # interrupted mid-write; the cell will re-run
                if isinstance(record, dict) and "key" in record:
                    yield record

    # -- writing -------------------------------------------------------

    def _write_many(self, records: list[dict[str, Any]]) -> None:
        """Append records with a single open/flush/fsync."""
        import os

        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
