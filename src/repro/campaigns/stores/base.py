"""The abstract result store: a campaign's durable, queryable memory.

A *record* is one JSON-able dict per executed cell::

    {"schema": 1, "key": "<sha256 prefix>", "config": {...},
     "metrics": {...}, "elapsed_s": 0.0123}

The key is :meth:`~repro.campaigns.spec.CellConfig.key` — a hash over the
*configuration*, not the run identity — so re-expanding the same spec
after an interrupt (or on another machine pointed at the same store)
recognises completed cells and skips them.  Failed cells are recorded
with an ``"error"`` field and are *not* treated as completed — but they
do count as *attempted*: a resume skips them by default (a fleet of
workers must not re-drive a deterministically crashing cell forever) and
re-runs them only when asked (``--retry-failed`` /
``run_cells(retry_failed=True)``).  :meth:`error_keys` lists the cells
in that state; :meth:`~repro.campaigns.stores.query.Query.errors` shows
their error records.

Backends subclass :class:`ResultStore` and implement :meth:`records` and
:meth:`_write_many`; everything else (completed-key caching, filtering,
querying) is shared.  :func:`open_store` turns a URI or path into the
right backend::

    open_store("results/smoke.jsonl")        # JSONL (the default)
    open_store("jsonl:results/smoke.jsonl")  # explicit scheme
    open_store("sqlite:results/smoke.db")    # SQLite backend
    open_store("results/smoke.db")           # suffix-sniffed SQLite
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Iterator, Mapping

from ...core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from .query import Query

#: Version stamped into every record (bump on incompatible record shape).
SCHEMA_VERSION = 1

#: Config fields whose values are lists; a filter value that is itself a
#: list/tuple means *equality* for these, not membership.
LIST_FIELDS = frozenset({"flipped", "positions"})

_DIM_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _check_dimension(dim: str) -> str:
    """Reject filter keys that are not plain identifiers (SQL-safe)."""
    if not _DIM_RE.match(dim):
        raise ConfigurationError(f"bad filter dimension name {dim!r}")
    return dim


def record_matches(record: Mapping[str, Any], where: Mapping[str, Any]) -> bool:
    """Does a record's ``config`` satisfy every filter in ``where``?

    Filter values may be a scalar (equality), a list/tuple/set
    (membership — except for :data:`LIST_FIELDS`, where a list means
    equality against the list-valued field), or a callable predicate.
    """
    config = record.get("config", {})
    for dim, expected in where.items():
        actual = config.get(dim)
        if callable(expected):
            if not expected(actual):
                return False
        elif dim in LIST_FIELDS:
            if isinstance(expected, tuple):
                expected = list(expected)
            if actual != expected:
                return False
        elif isinstance(expected, (list, tuple, set, frozenset)):
            if actual not in expected:
                return False
        elif actual != expected:
            return False
    return True


class ResultStore:
    """Abstract base for campaign result stores.

    Subclasses own the bytes (a JSONL file, a SQLite database, ...) and
    implement:

    * :meth:`records` — yield every well-formed record, oldest first;
    * :meth:`_write_many` — durably append a chunk of records;

    and may override :meth:`_load_completed_keys` / :meth:`select` when
    the backend can answer those questions faster than a full scan
    (SQLite answers both from indexes).
    """

    #: URI scheme naming this backend (``jsonl``, ``sqlite``, ...).
    scheme: ClassVar[str] = ""

    #: Can this backend host the distributed lease queue
    #: (:mod:`repro.campaigns.distributed`)?  Requires atomic multi-writer
    #: claim/complete transactions, which only the SQLite backend gives;
    #: the queue refuses other backends with a clear error.
    supports_leases: ClassVar[bool] = False

    def __init__(self, path: str | os.PathLike[str], *,
                 campaign: str | None = None) -> None:
        self.path = Path(path)
        #: Optional campaign tag: backends that store several campaigns
        #: in one file (SQLite) scope reads and writes to it.
        self.campaign = campaign
        self._completed: set[str] | None = None
        self._errored: set[str] | None = None

    # -- reading -------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Yield every well-formed record (malformed data skipped)."""
        raise NotImplementedError

    def _load_completed_keys(self) -> set[str]:
        """One-time scan behind :meth:`completed_keys` (override me)."""
        return {r["key"] for r in self.records() if "error" not in r}

    def completed_keys(self) -> set[str]:
        """Keys of cells that finished successfully (cached after first read)."""
        if self._completed is None:
            self._completed = self._load_completed_keys()
        return self._completed

    def _load_error_keys(self) -> set[str]:
        """One-time scan behind :meth:`error_keys` (override me)."""
        succeeded: set[str] = set()
        errored: set[str] = set()
        for r in self.records():
            (errored if "error" in r else succeeded).add(r["key"])
        return errored - succeeded

    def error_keys(self) -> set[str]:
        """Keys of cells whose *only* outcome so far is an error record.

        A cell that errored and later succeeded (e.g. a transient failure
        re-driven with ``retry_failed``) does not appear here.
        """
        if self._errored is None:
            self._errored = self._load_error_keys()
        return self._errored

    def invalidate_caches(self) -> None:
        """Drop the cached key sets (records were written out of band).

        The distributed work queue appends result rows inside its own
        lease-completion transaction rather than through
        :meth:`append_many`; it calls this so a long-lived store instance
        re-reads the truth on its next :meth:`completed_keys`.
        """
        self._completed = None
        self._errored = None

    def select(
        self, where: Mapping[str, Any] | None = None
    ) -> Iterator[dict[str, Any]]:
        """Records whose config matches ``where`` (see :func:`record_matches`)."""
        if not where:
            yield from self.records()
            return
        for dim in where:
            _check_dimension(dim)
        for record in self.records():
            if record_matches(record, where):
                yield record

    def query(self) -> "Query":
        """A fluent filter/group/aggregate view over this store."""
        from .query import Query  # late: query builds on us

        return Query(self)

    def exists(self) -> bool:
        """Is there anything on disk to read?"""
        return self.path.exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def __contains__(self, key: str) -> bool:
        return key in self.completed_keys()

    # -- writing -------------------------------------------------------

    def _write_many(self, records: list[dict[str, Any]]) -> None:
        """Durably persist a chunk of schema-stamped records (override me)."""
        raise NotImplementedError

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record."""
        self.append_many([record])

    def append_many(self, records: list[dict[str, Any]]) -> None:
        """Append a chunk of records with a single durability barrier."""
        if not records:
            return
        stamped = [dict(r, schema=SCHEMA_VERSION) for r in records]
        self._write_many(stamped)
        if self._completed is not None:
            self._completed.update(
                r["key"] for r in stamped if "error" not in r
            )
        if self._errored is not None:
            # completed_keys() (loaded if needed) — not a bare
            # ``self._completed or set()`` — so an error appended for a
            # cell that already succeeded on disk never enters the
            # errored set (the contract: error_keys() lists cells whose
            # ONLY outcome is an error).
            known_done = self.completed_keys()
            self._errored |= {
                r["key"] for r in stamped
                if "error" in r and r["key"] not in known_done
            }
            self._errored -= {r["key"] for r in stamped if "error" not in r}

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release backend resources (no-op for file-per-write backends)."""

    def uri(self) -> str:
        return f"{self.scheme}:{self.path}" if self.scheme else str(self.path)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self.path)!r})"


#: Path suffixes that imply the SQLite backend when no scheme is given.
SQLITE_SUFFIXES = frozenset({".db", ".sqlite", ".sqlite3"})


def store_backends() -> dict[str, Callable[..., ResultStore]]:
    """scheme -> backend class (late imports to avoid cycles)."""
    from .jsonl import JsonlStore
    from .sqlite import SqliteStore

    return {JsonlStore.scheme: JsonlStore, SqliteStore.scheme: SqliteStore}


def open_store(
    target: "str | os.PathLike[str] | ResultStore",
    *,
    campaign: str | None = None,
) -> ResultStore:
    """Resolve a store URI, path, or instance to a :class:`ResultStore`.

    ``scheme:path`` selects a backend explicitly (``jsonl:``/``sqlite:``);
    a bare path picks SQLite for :data:`SQLITE_SUFFIXES` and JSONL
    otherwise.  An existing instance passes through — adopting
    ``campaign`` if it has none, so results written through an
    API-constructed store carry the same tag the CLI later scopes its
    reads by (an explicitly tagged instance always wins).
    """
    if isinstance(target, ResultStore):
        if campaign is not None and target.campaign is None:
            target.campaign = campaign
            target._completed = None  # the caches were read unscoped
            target._errored = None
        return target
    backends = store_backends()
    text = os.fspath(target)
    scheme, sep, rest = text.partition(":")
    if sep and scheme in backends:
        if not rest:
            raise ConfigurationError(f"store URI {text!r} is missing a path")
        return backends[scheme](rest, campaign=campaign)
    if sep and _DIM_RE.match(scheme) and len(scheme) > 1:
        # looks like a scheme (not a Windows drive letter), but unknown
        raise ConfigurationError(
            f"unknown store scheme {scheme!r} (choose from {sorted(backends)})")
    path = Path(text)
    cls = backends["sqlite" if path.suffix in SQLITE_SUFFIXES else "jsonl"]
    return cls(path, campaign=campaign)
