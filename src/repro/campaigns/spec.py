"""Declarative sweep specifications for experiment campaigns.

A *campaign* is a family of simulation configurations — the cross product
of algorithms × adversaries × schedulers × ring sizes × agent counts ×
seeds — exactly the shape of the paper's Tables 1–4.  This module defines
the two value types everything else consumes:

* :class:`CellConfig` — one fully-resolved simulation configuration (one
  "cell" of a table).  Cells are frozen, hashable, JSON-serialisable, and
  carry a stable content hash (:meth:`CellConfig.key`) used by the result
  store to recognise work that is already done.
* :class:`CampaignSpec` — the declarative sweep: a ``base`` configuration,
  a ``grid`` of dimensions to take the product over, and a list of
  ``variants`` (e.g. one per table row) that may override fields and pin
  or extend grid dimensions.  :meth:`CampaignSpec.cells` expands the spec
  into concrete :class:`CellConfig` objects.

Horizons are declarative too: ``horizon`` may be an integer or a string
expression over ``n`` (ring size), ``N`` (the known bound), ``k`` (agent
count) and the paper's closed-form bounds (``known_bound_time(n)``,
``no_chirality_timeout(n)``, …), so a spec written as JSON/YAML can still
say "run Theorem 8 to its O(n log n) deadline".
"""

from __future__ import annotations

import ast
import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterator, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..theory import bounds as _bounds

#: Functions callable inside a ``horizon`` expression.
_HORIZON_FUNCS = {
    "log2": math.log2,
    "ceil": math.ceil,
    "floor": math.floor,
    "min": min,
    "max": max,
    "known_bound_time": _bounds.fsync_known_bound_time,
    "no_chirality_timeout": _bounds.no_chirality_timeout,
}

_HORIZON_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}

#: How initial agent positions are derived from (ring_size, agents).
PLACEMENTS = ("spread", "offset-spread", "thirds", "origin", "explicit")


def _eval_horizon_node(node: ast.AST, variables: Mapping[str, int]):
    """Evaluate one node of a horizon expression's AST.

    Spec files are data, possibly from untrusted sources, so this is a
    closed arithmetic interpreter — numbers, ``n``/``N``/``k``, the
    whitelisted functions, and basic operators — never ``eval``.
    """
    if isinstance(node, ast.Expression):
        return _eval_horizon_node(node.body, variables)
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in variables:
            return variables[node.id]
        raise ConfigurationError(f"unknown horizon variable {node.id!r}")
    if isinstance(node, ast.BinOp) and type(node.op) in _HORIZON_OPS:
        return _HORIZON_OPS[type(node.op)](
            _eval_horizon_node(node.left, variables),
            _eval_horizon_node(node.right, variables),
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        value = _eval_horizon_node(node.operand, variables)
        return -value if isinstance(node.op, ast.USub) else value
    if isinstance(node, ast.Call):
        if (not isinstance(node.func, ast.Name)
                or node.func.id not in _HORIZON_FUNCS
                or node.keywords):
            raise ConfigurationError("only the whitelisted horizon functions are callable")
        args = [_eval_horizon_node(a, variables) for a in node.args]
        return _HORIZON_FUNCS[node.func.id](*args)
    raise ConfigurationError(
        f"unsupported syntax in horizon expression: {ast.dump(node)[:80]}")


def resolve_horizon(horizon: int | str, *, n: int, bound: int | None, agents: int) -> int:
    """Evaluate a horizon spec to a round count for one cell.

    Integers pass through; strings are arithmetic expressions over
    ``n``/``N``/``k`` and the closed-form bound helpers, evaluated by a
    restricted AST interpreter (specs may come from untrusted files).
    """
    if isinstance(horizon, bool) or not isinstance(horizon, (int, str)):
        raise ConfigurationError(f"horizon must be int or str, got {horizon!r}")
    if isinstance(horizon, int):
        value = horizon
    else:
        variables = {"n": n, "N": bound if bound is not None else n, "k": agents}
        try:
            tree = ast.parse(horizon, mode="eval")
        except SyntaxError as exc:
            raise ConfigurationError(f"bad horizon expression {horizon!r}: {exc}") from exc
        try:
            value = _eval_horizon_node(tree, variables)
        except ConfigurationError as exc:
            raise ConfigurationError(f"bad horizon expression {horizon!r}: {exc}") from exc
        except Exception as exc:
            raise ConfigurationError(f"bad horizon expression {horizon!r}: {exc}") from exc
    value = int(value)
    if value <= 0:
        raise ConfigurationError(f"horizon {horizon!r} resolved to {value} <= 0")
    return value


def resolve_positions(
    placement: str,
    *,
    ring_size: int,
    agents: int,
    positions: Sequence[int] | None = None,
) -> tuple[int, ...]:
    """Turn a placement policy into concrete starting nodes."""
    if placement == "explicit":
        if positions is None:
            raise ConfigurationError("placement 'explicit' requires positions")
        return tuple(int(p) % ring_size for p in positions)
    if positions is not None:
        raise ConfigurationError(f"positions given but placement is {placement!r}")
    if placement == "spread":
        return tuple((i * ring_size) // agents for i in range(agents))
    if placement == "offset-spread":
        return tuple(1 + (i * ring_size) // agents for i in range(agents))
    if placement == "thirds":
        return tuple(1 + (i * ring_size) // 3 for i in range(agents))
    if placement == "origin":
        return (0,) * agents
    raise ConfigurationError(f"unknown placement {placement!r} (choose from {PLACEMENTS})")


@dataclass(frozen=True)
class CellConfig:
    """One fully-resolved simulation configuration.

    Everything needed to rebuild the engine deterministically lives here,
    as plain JSON-able values — names into the campaign registry, never
    live objects — so cells can cross process boundaries and be hashed
    into stable result-store keys.
    """

    algorithm: str
    ring_size: int
    max_rounds: int
    agents: int = 2
    seed: int = 0
    adversary: str = "random"
    scheduler: str = "auto"
    transport: str = "ns"
    topology: str = "ring"
    landmark: int | None = None
    chirality: bool = True
    flipped: tuple[int, ...] = ()
    placement: str = "spread"
    positions: tuple[int, ...] | None = None
    bound: int | None = None
    edge: int = 0
    adversary_arg: int | None = None
    stop_on_exploration: bool = False
    debug_invariants: bool = False
    #: Fault plan spec (``repro.resilience.faults.FaultPlan.parse``
    #: grammar, e.g. ``"crash:1@4"``/``"lost:*"``/``"rate:0.01"``) —
    #: empty string = fault-free.  A simulation-affecting dimension, so
    #: it participates in :meth:`key` (excluded only at its default, so
    #: pre-resilience stores keep resuming).
    faults: str = ""
    #: Execution routing preference — ``auto`` (batch when eligible),
    #: ``on`` (require the batch path) or ``off`` (always scalar).  Like
    #: ``label`` this never enters :meth:`key`: both paths are proven to
    #: produce identical records, so routing must not fork store keys.
    batch: str = "auto"
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "flipped", tuple(self.flipped or ()))
        if self.positions is not None:
            object.__setattr__(self, "positions", tuple(self.positions))
        if self.ring_size < 3:
            raise ConfigurationError(f"ring_size must be >= 3, got {self.ring_size}")
        if self.agents < 1:
            raise ConfigurationError(f"agents must be >= 1, got {self.agents}")
        if self.max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.batch not in ("auto", "on", "off"):
            raise ConfigurationError(
                f"batch must be 'auto', 'on' or 'off', got {self.batch!r}")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-able, round-trips via :meth:`from_dict`)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown cell fields: {sorted(unknown)}")
        kwargs = dict(data)
        if kwargs.get("flipped") is not None:
            kwargs["flipped"] = tuple(kwargs["flipped"])
        if kwargs.get("positions") is not None:
            kwargs["positions"] = tuple(kwargs["positions"])
        return cls(**kwargs)

    def key(self) -> str:
        """Stable content hash identifying this cell in a result store.

        The hash covers every *simulation-affecting* field via canonical
        JSON — any change to the cell (a new seed, a different horizon)
        yields a fresh key, while re-expanding the same spec reproduces
        the same keys across runs and processes.  ``label`` is excluded
        (an aggregation tag: renaming a variant must not invalidate its
        cached results), and so is ``batch`` (a routing preference: the
        batch and scalar paths are proven record-identical, so switching
        them must resume, not re-run).  Fields grown after the first
        release (:data:`_KEY_EXCLUDED_DEFAULTS`) are excluded while at
        their default, so stores written by older versions still resume.
        """
        fields_for_hash = {k: v for k, v in self.to_dict().items()
                           if k not in ("label", "batch")}
        for name, default in _KEY_EXCLUDED_DEFAULTS.items():
            if fields_for_hash.get(name) == default:
                del fields_for_hash[name]
        canonical = json.dumps(fields_for_hash, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]

    def resolved_positions(self) -> tuple[int, ...]:
        return resolve_positions(
            self.placement,
            ring_size=self.ring_size,
            agents=self.agents,
            positions=self.positions,
        )


#: Spec/variant keys that are control syntax, not CellConfig fields.
_SPEC_CONTROL_KEYS = {"grid", "label", "horizon"}

#: Fields added after the first release, excluded from the content hash
#: while they sit at their default: a defaulted new field describes the
#: *same simulation* the old schema described, so pre-existing result
#: stores keep resuming instead of silently re-running every cell.
_KEY_EXCLUDED_DEFAULTS = {
    "topology": "ring",
    "adversary_arg": None,
    "debug_invariants": False,
    "faults": "",
}


@dataclass
class CampaignSpec:
    """A declarative sweep over cell configurations.

    ``base`` holds field defaults shared by every cell; ``grid`` maps
    field names to lists of values to take the cross product over;
    each entry of ``variants`` describes one sub-family (a table row):
    its scalar keys override ``base``, its optional ``"grid"`` entry
    overrides/extends the top-level grid, and its ``"label"`` tags the
    resulting cells for aggregation.  ``horizon`` (in ``base`` or a
    variant) is resolved per cell via :func:`resolve_horizon`.
    """

    name: str
    base: dict[str, Any] = field(default_factory=dict)
    grid: dict[str, Sequence[Any]] = field(default_factory=dict)
    variants: list[dict[str, Any]] = field(default_factory=lambda: [{}])
    description: str = ""

    def resolved_variants(self) -> list[dict[str, Any]]:
        """Flatten each variant into a self-contained description.

        Each entry carries everything expansion needs — merged scalars,
        the effective grid (variant scalars pin top-level dimensions),
        the horizon and the label — independent of this spec's ``base``
        and ``grid``.  :meth:`cells` expands these; :meth:`merged` reuses
        them to combine several specs into one campaign.
        """
        resolved = []
        for variant in self.variants or [{}]:
            merged = {**self.base, **variant}
            scalars = {k: v for k, v in merged.items() if k not in _SPEC_CONTROL_KEYS}
            variant_grid = variant.get("grid", {})
            grid = {**self.grid, **variant_grid}
            # A scalar set by the variant pins a dimension the top-level
            # grid sweeps (unless the variant re-sweeps it in its own grid).
            pinned = {k for k in variant if k not in _SPEC_CONTROL_KEYS}
            grid = {k: v for k, v in grid.items() if k in variant_grid or k not in pinned}
            entry = dict(scalars)
            entry["label"] = variant.get("label", "")
            entry["grid"] = grid
            if merged.get("horizon") is not None:
                entry["horizon"] = merged["horizon"]
            resolved.append(entry)
        return resolved

    def cells(self) -> Iterator[CellConfig]:
        """Expand the spec into concrete cells, deterministically ordered."""
        for variant in self.resolved_variants():
            scalars = {
                k: v for k, v in variant.items() if k not in _SPEC_CONTROL_KEYS
            }
            grid = variant["grid"]
            horizon = variant.get("horizon")
            # Sorted keys make expansion order canonical: a spec serialised
            # through JSON/YAML (which may reorder dict keys) expands to the
            # same cell sequence as the original.
            keys = sorted(grid)
            for combo in itertools.product(*(grid[k] for k in keys)):
                cell_fields = dict(scalars, **dict(zip(keys, combo)))
                cell_fields.setdefault("label", variant["label"])
                if "agents" not in cell_fields:
                    # Respect the registry's per-algorithm default (e.g.
                    # et-exact is a 3-agent protocol) instead of the
                    # generic CellConfig default of 2.
                    from .registry import ALGORITHMS  # late: registry imports us

                    entry = ALGORITHMS.get(cell_fields.get("algorithm"))
                    if entry is not None:
                        cell_fields["agents"] = entry.default_agents
                if horizon is not None and "max_rounds" not in cell_fields:
                    cell_fields["max_rounds"] = resolve_horizon(
                        horizon,
                        n=cell_fields["ring_size"],
                        bound=cell_fields.get("bound"),
                        agents=cell_fields.get("agents", 2),
                    )
                yield CellConfig.from_dict(cell_fields)

    @classmethod
    def merged(
        cls, name: str, specs: Sequence["CampaignSpec"], *, description: str = ""
    ) -> "CampaignSpec":
        """Combine several specs into one campaign with all their variants."""
        variants: list[dict[str, Any]] = []
        for spec in specs:
            for variant in spec.resolved_variants():
                variant = dict(variant)
                if not variant["label"]:
                    variant["label"] = spec.name
                variants.append(variant)
        return cls(name=name, variants=variants, description=description)

    def cell_list(self) -> list[CellConfig]:
        return list(self.cells())

    def size(self) -> int:
        return sum(1 for _ in self.cells())

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "base": dict(self.base),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "variants": [dict(v) for v in self.variants],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if "name" not in data:
            raise ConfigurationError("campaign spec needs a 'name'")
        return cls(
            name=data["name"],
            base=dict(data.get("base", {})),
            grid={k: list(v) for k, v in data.get("grid", {}).items()},
            variants=[dict(v) for v in data.get("variants", [{}])],
            description=data.get("description", ""),
        )

    def restricted(self, limit: int) -> "CampaignSpec":
        """A copy whose expansion yields at most ``limit`` cells (debugging aid)."""
        spec = replace(self)
        cells = self.cell_list()[:limit]
        spec.base, spec.grid = {}, {}
        spec.variants = [c.to_dict() for c in cells]
        return spec
