"""Parallel experiment campaigns: declarative sweeps, resumable runs, table reports.

The paper's results are *sweep-shaped* — claims over families of
(algorithm × adversary × scheduler × ring size × agent count)
configurations.  This package turns such a family into a first-class
object and runs it at scale:

* :mod:`~repro.campaigns.spec` — :class:`CampaignSpec` (declarative
  grid/variants) expanding into content-hashed :class:`CellConfig` cells;
* :mod:`~repro.campaigns.registry` — name → algorithm/adversary/scheduler
  factories and :func:`build_cell_engine` (shared with the CLI);
* :mod:`~repro.campaigns.executor` — chunked multiprocessing execution
  with per-worker warm state, streaming results into the store;
* :mod:`~repro.campaigns.store` — append-only JSONL with content-hashed
  keys; interrupted campaigns resume without recomputing finished cells;
* :mod:`~repro.campaigns.aggregate` — reduce raw records into the
  paper's table rows;
* :mod:`~repro.campaigns.presets` — named specs (``table2-fsync``,
  ``table4-ssync``, ``paper-tables``, ``smoke``) and JSON/YAML loading.

Quick start::

    from repro.campaigns import get_spec, run_campaign, aggregate_records

    run = run_campaign(get_spec("smoke"), "results/smoke.jsonl", workers=4)
    for row in aggregate_records(run.records):
        print(row)
"""

from .aggregate import (
    DEFAULT_GROUP_BY,
    GroupStats,
    TableRow,
    aggregate_records,
    metrics_from_result,
    render_rows,
    summarize_metrics,
    summarize_results,
)
from .executor import CampaignRun, execute_cell, run_campaign, run_cells
from .presets import DEFAULT_SPEC, SPECS, get_spec, load_spec
from .registry import (
    ADVERSARIES,
    ALGORITHMS,
    AUTO_SCHEDULER,
    SCHEDULERS,
    AlgorithmEntry,
    build_cell_engine,
    default_horizon,
    validate_cell,
)
from .spec import CampaignSpec, CellConfig, resolve_horizon, resolve_positions
from .store import ResultStore

__all__ = [
    "ADVERSARIES",
    "ALGORITHMS",
    "AUTO_SCHEDULER",
    "AlgorithmEntry",
    "CampaignRun",
    "CampaignSpec",
    "CellConfig",
    "DEFAULT_GROUP_BY",
    "DEFAULT_SPEC",
    "GroupStats",
    "ResultStore",
    "SCHEDULERS",
    "SPECS",
    "TableRow",
    "aggregate_records",
    "build_cell_engine",
    "default_horizon",
    "execute_cell",
    "get_spec",
    "load_spec",
    "metrics_from_result",
    "render_rows",
    "resolve_horizon",
    "resolve_positions",
    "run_campaign",
    "run_cells",
    "summarize_metrics",
    "summarize_results",
    "validate_cell",
]
