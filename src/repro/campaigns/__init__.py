"""Parallel experiment campaigns: declarative sweeps, resumable runs, table reports.

The paper's results are *sweep-shaped* — claims over families of
(algorithm × adversary × scheduler × ring size × agent count)
configurations.  This package turns such a family into a first-class
object and runs it at scale:

* :mod:`~repro.campaigns.spec` — :class:`CampaignSpec` (declarative
  grid/variants) expanding into content-hashed :class:`CellConfig` cells;
* :mod:`~repro.campaigns.registry` — name → algorithm/adversary/scheduler
  factories and :func:`build_cell_engine` (shared with the CLI); topology
  is one more cell dimension (``ring``/``path``/``torus``/``cactus``),
  and every cell — ring or graph — builds on the same unified
  :class:`~repro.core.sim.SimulationCore`;
* :mod:`~repro.campaigns.executor` — chunked multiprocessing execution
  with per-worker warm state, streaming results into the store;
* :mod:`~repro.campaigns.stores` — pluggable result-store backends
  (append-only JSONL, WAL-mode SQLite with indexed resume, columnar
  export) behind one :class:`ResultStore` contract, selected by URI
  (``sqlite:results/t2.db``), plus the :class:`Query` layer backing
  filtered reports and complexity-shape fits;
* :mod:`~repro.campaigns.aggregate` — reduce raw records into the
  paper's table rows;
* :mod:`~repro.campaigns.distributed` — fleet-scale execution: a
  lease-based work queue living *in* the SQLite store (no coordinator
  process), ``campaign worker`` processes on any number of hosts with
  heartbeat/steal crash recovery, and live fleet telemetry
  (``campaign status --watch``);
* :mod:`~repro.campaigns.presets` — named specs (``table2-fsync``,
  ``table4-ssync``, ``paper-tables``, ``impossibility``,
  ``impossibility-path``, ``topologies``, ``smoke``) and JSON/YAML
  loading.

Quick start::

    from repro.campaigns import get_spec, run_campaign, open_store, fit_rows

    run = run_campaign(get_spec("smoke"), "sqlite:results/smoke.db", workers=4)
    store = open_store("sqlite:results/smoke.db", campaign="smoke")
    for row in store.query().table():
        print(row)
    for fit in fit_rows(store.query()):
        print(fit)          # shape verdicts straight from the store
"""

from .aggregate import (
    DEFAULT_GROUP_BY,
    GroupStats,
    TableRow,
    aggregate_records,
    aggregate_store,
    metrics_from_result,
    render_rows,
    summarize_metrics,
    summarize_results,
)
from .distributed import (
    LeaseLost,
    WorkQueue,
    enqueue_campaign,
    fleet_status,
    render_status,
    run_distributed,
    run_worker,
)
from .executor import (
    CampaignRun,
    chunk_cells,
    default_chunk_size,
    execute_cell,
    run_campaign,
    run_cells,
)
from .presets import DEFAULT_SPEC, SPECS, get_spec, load_spec
from .registry import (
    ADVERSARIES,
    ALGORITHMS,
    AUTO_SCHEDULER,
    COMBINED_ADVERSARIES,
    GRAPH_ADVERSARIES,
    GRAPH_EXPLORERS,
    SCHEDULERS,
    TOPOLOGIES,
    AlgorithmEntry,
    build_cell_engine,
    build_graph_cell_engine,
    default_horizon,
    is_graph_cell,
    validate_cell,
)
from .spec import CampaignSpec, CellConfig, resolve_horizon, resolve_positions
from .stores import (
    ExportResult,
    FitRow,
    JsonlStore,
    Query,
    ResultStore,
    SqliteStore,
    export_store,
    fit_rows,
    open_store,
    render_fit_rows,
)

__all__ = [
    "ADVERSARIES",
    "ALGORITHMS",
    "AUTO_SCHEDULER",
    "COMBINED_ADVERSARIES",
    "AlgorithmEntry",
    "CampaignRun",
    "CampaignSpec",
    "CellConfig",
    "DEFAULT_GROUP_BY",
    "DEFAULT_SPEC",
    "ExportResult",
    "FitRow",
    "GRAPH_ADVERSARIES",
    "GRAPH_EXPLORERS",
    "GroupStats",
    "JsonlStore",
    "LeaseLost",
    "Query",
    "ResultStore",
    "SCHEDULERS",
    "SPECS",
    "SqliteStore",
    "TOPOLOGIES",
    "TableRow",
    "WorkQueue",
    "aggregate_records",
    "aggregate_store",
    "build_cell_engine",
    "build_graph_cell_engine",
    "chunk_cells",
    "default_chunk_size",
    "default_horizon",
    "enqueue_campaign",
    "execute_cell",
    "export_store",
    "fit_rows",
    "fleet_status",
    "get_spec",
    "is_graph_cell",
    "load_spec",
    "metrics_from_result",
    "open_store",
    "render_fit_rows",
    "render_rows",
    "render_status",
    "resolve_horizon",
    "resolve_positions",
    "run_campaign",
    "run_cells",
    "run_distributed",
    "run_worker",
    "summarize_metrics",
    "summarize_results",
    "validate_cell",
]
