"""Backward-compatible alias for the pre-package store module.

The store grew into the :mod:`repro.campaigns.stores` package (abstract
base + JSONL/SQLite backends + query layer + columnar export).  This
module keeps the old import path working: ``ResultStore`` here is the
concrete JSONL backend the original module implemented, byte-compatible
with every store file written before the split.
"""

from __future__ import annotations

from .stores import SCHEMA_VERSION, JsonlStore, open_store
from .stores import ResultStore as BaseResultStore

#: The original concrete class under its original name.
ResultStore = JsonlStore

__all__ = ["BaseResultStore", "ResultStore", "SCHEMA_VERSION", "open_store"]
