"""Append-only JSONL result store with content-hashed keys.

One line per completed cell::

    {"schema": 1, "key": "<sha256 prefix>", "config": {...},
     "metrics": {...}, "elapsed_s": 0.0123}

The key is :meth:`CellConfig.key` — a hash over the *configuration*, not
the run identity — so re-expanding the same spec after an interrupt (or
on another machine pointed at the same file) recognises completed cells
and skips them.  Failed cells are recorded with an ``"error"`` field and
are deliberately *not* treated as completed: a resume retries them.

The reader tolerates a truncated final line (the signature of a run
killed mid-write) and skips it instead of refusing the whole file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

SCHEMA_VERSION = 1


class ResultStore:
    """A campaign's durable memory, backed by one JSONL file."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._completed: set[str] | None = None

    # -- reading -------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Yield every well-formed record (malformed/truncated lines skipped)."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # interrupted mid-write; the cell will re-run
                if isinstance(record, dict) and "key" in record:
                    yield record

    def completed_keys(self) -> set[str]:
        """Keys of cells that finished successfully (cached after first read)."""
        if self._completed is None:
            self._completed = {
                r["key"] for r in self.records() if "error" not in r
            }
        return self._completed

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def __contains__(self, key: str) -> bool:
        return key in self.completed_keys()

    # -- writing -------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (one line, flushed before returning)."""
        record = dict(record, schema=SCHEMA_VERSION)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if self._completed is not None and "error" not in record:
            self._completed.add(record["key"])

    def append_many(self, records: list[dict[str, Any]]) -> None:
        """Append a chunk of records with a single open/flush/fsync."""
        if not records:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            for record in records:
                record = dict(record, schema=SCHEMA_VERSION)
                fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if self._completed is not None:
            self._completed.update(
                r["key"] for r in records if "error" not in r
            )
