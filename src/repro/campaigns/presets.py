"""Named campaign specs: the paper's tables and a CI smoke sweep.

Every preset mirrors an existing bench (``benchmarks/bench_table2_fsync.py``
and ``bench_table4_ssync.py`` are now thin drivers over these), so the
same configuration family backs interactive campaigns, benches, and CI.

Specs can also be loaded from JSON or YAML files via :func:`load_spec`,
so one-off sweeps don't require touching Python.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from ..core.errors import ConfigurationError
from .spec import CampaignSpec

#: Seeds mirroring the benches (5 for Table 2, 6 for Table 4).
TABLE2_SEEDS = list(range(5))
TABLE4_SEEDS = list(range(6))


def table2_fsync() -> CampaignSpec:
    """Table 2 (FSYNC): Theorems 3, 5, 6 and 8 as one sweep (90 cells)."""
    return CampaignSpec(
        name="table2-fsync",
        description="FSYNC possibility results: termination/exploration times "
                    "for Theorems 3, 5, 6, 8 under a random adversary.",
        base={
            "adversary": "random",
            "transport": "ns",
            "agents": 2,
            "placement": "offset-spread",   # positions [1, 1 + n//2]
        },
        grid={"seed": TABLE2_SEEDS},
        variants=[
            {"label": "t2.1-theorem3-known-bound",
             "algorithm": "known-bound",
             "horizon": "known_bound_time(N) + 5",
             "grid": {"ring_size": [8, 16, 32, 64]}},
            {"label": "t5-theorem5-unconscious",
             "algorithm": "unconscious",
             "horizon": "100 * n",
             "stop_on_exploration": True,
             "grid": {"ring_size": [8, 16, 32, 64, 128]}},
            {"label": "t2.2-theorem6-landmark-chirality",
             "algorithm": "landmark-chirality",
             "landmark": 0,
             "horizon": "100 * n",
             "grid": {"ring_size": [8, 16, 32, 64, 128]}},
            {"label": "t2.3-theorem8-landmark-no-chirality",
             "algorithm": "landmark-no-chirality",
             "landmark": 0,
             "chirality": False,
             "flipped": [1],
             "horizon": "no_chirality_timeout(n) + 10",
             "grid": {"ring_size": [6, 8, 12, 16]}},
        ],
    )


def table4_ssync() -> CampaignSpec:
    """Table 4 (SSYNC): Theorems 12, 14, 16, 17, 18, 20 (108 cells)."""
    return CampaignSpec(
        name="table4-ssync",
        description="SSYNC possibility results: move counts and termination "
                    "modes under PT/ET transports with a random adversary.",
        base={
            "adversary": "random",
            "transport": "pt",
            "placement": "thirds",          # positions [1, 1+n//3, 1+2n//3][:k]
            "max_rounds": 100_000,
        },
        grid={"seed": TABLE4_SEEDS},
        variants=[
            {"label": "t4.1-theorem12-pt-bound",
             "algorithm": "pt-bound", "agents": 2,
             "grid": {"ring_size": [8, 16, 32]}},
            {"label": "t4.2-theorem14-pt-landmark",
             "algorithm": "pt-landmark", "agents": 2, "landmark": 0,
             "grid": {"ring_size": [8, 16, 32]}},
            {"label": "t4.3-theorem16-pt-bound-no-chirality",
             "algorithm": "pt-bound-3", "agents": 3,
             "chirality": False, "flipped": [1],
             "grid": {"ring_size": [9, 18, 33]}},
            {"label": "t4.4-theorem17-pt-landmark-no-chirality",
             "algorithm": "pt-landmark-3", "agents": 3, "landmark": 0,
             "chirality": False, "flipped": [2],
             "grid": {"ring_size": [9, 18, 33]}},
            {"label": "t4.5-theorem18-et-unconscious",
             "algorithm": "et-unconscious", "agents": 2, "transport": "et",
             "stop_on_exploration": True,
             "grid": {"ring_size": [8, 16, 32]}},
            {"label": "t4.6-theorem20-et-exact",
             "algorithm": "et-exact", "agents": 3, "transport": "et",
             "chirality": False, "flipped": [1],
             "grid": {"ring_size": [8, 16, 32]}},
        ],
    )


def paper_tables() -> CampaignSpec:
    """Tables 2 and 4 as one resumable campaign (~200 cells, the default)."""
    return CampaignSpec.merged(
        "paper-tables",
        [table2_fsync(), table4_ssync()],
        description="Every possibility result of Tables 2 and 4 in one sweep.",
    )


def topologies() -> CampaignSpec:
    """Beyond-paper topologies as a sweep dimension (48 cells).

    The open-problem playground of :mod:`repro.extensions` as a campaign:
    the seeded random walk (the classical dynamic-graph answer) over
    ring/path/torus/cactus, each under a connectivity-preserving
    single-edge adversary.  ``ring_size`` is the node count everywhere;
    the sizes are chosen so the torus factorises into a >= 3x3 grid.
    """
    return CampaignSpec(
        name="topologies",
        description="Random-walk exploration across ring, path, torus and "
                    "cactus topologies under a connectivity-preserving "
                    "adversary (requires networkx).",
        base={
            "algorithm": "random-walk",
            "adversary": "random",
            "agents": 2,
            "stop_on_exploration": True,
            "horizon": "400 * n",
        },
        grid={
            "seed": [0, 1, 2],
            "ring_size": [9, 12, 16, 25],
            "topology": ["ring", "path", "torus", "cactus"],
        },
        variants=[{"label": "random-walk-topologies"}],
    )


def topologies_smoke() -> CampaignSpec:
    """Unified-core CI smoke: scheduler × topology grid (24 cells, <60s).

    One cell per (topology × scheduler × seed) for the random walk, plus
    a terminating rotor-router row per topology — FSYNC and SSYNC
    activation, exploration and explicit termination, all through the
    same :class:`~repro.core.sim.SimulationCore` ring cells run on.
    Requires networkx.
    """
    return CampaignSpec(
        name="topologies-smoke",
        description="CI smoke for the unified core: every topology under "
                    "FSYNC and SSYNC schedulers, plus explicit termination "
                    "(requires networkx).",
        base={
            "adversary": "random",
            "agents": 2,
            "stop_on_exploration": True,
            "horizon": "800 * n",
        },
        grid={
            "seed": [0, 1],
            "ring_size": [9],
            "topology": ["ring", "path", "torus", "cactus"],
        },
        variants=[
            {"label": "smoke-walk-fsync", "algorithm": "random-walk",
             "scheduler": "auto"},
            {"label": "smoke-walk-round-robin", "algorithm": "random-walk",
             "scheduler": "round-robin"},
            {"label": "smoke-rotor-terminating",
             "algorithm": "rotor-router-terminating",
             "scheduler": "random-fair", "stop_on_exploration": False},
        ],
    )


def impossibility() -> CampaignSpec:
    """Tables 1/3 adversary constructions as one sweep (12 cells).

    The impossibility and lower-bound demonstrations, previously
    bench-only, as resumable campaign cells:

    * Theorem 9 — NS starvation: zero moves, ever (the adversary is also
      the scheduler);
    * Theorem 10 — PT without chirality: two agents stranded on four
      nodes by one fixed missing edge;
    * Theorem 19 — ET with only a bound: the two-ring schedule forces an
      *incorrect* termination (the algorithm believes ``bound``, the
      host ring is larger);
    * Figure 2 / Observation 3 — the worst-case schedule stretches
      KnownUpperBound to exactly ``3n - 6`` rounds;
    * Theorem 13 — zig-zag forcing extracts quadratic move counts from
      the PT bound algorithm.
    """
    variants: list[dict] = [
        {"label": "t3.1-theorem9-ns-starvation",
         "algorithm": "pt-bound", "agents": 2, "transport": "ns",
         "adversary": "ns-starvation", "placement": "spread",
         "horizon": "50 * n",
         "grid": {"ring_size": [8, 12, 16]}},
        {"label": "t3.4-theorem19-et-bound-only",
         "algorithm": "et-exact", "agents": 3, "transport": "et",
         "adversary": "theorem19", "bound": 7,
         "chirality": False, "flipped": [1],
         "placement": "explicit", "positions": [0, 2, 4],
         "max_rounds": 30_000,
         "grid": {"ring_size": [11]}},
        {"label": "fig2-worst-case-3n-6",
         "algorithm": "known-bound", "agents": 2, "transport": "ns",
         "adversary": "figure2", "edge": 0,
         "chirality": False, "flipped": [0, 1],   # both agents mirrored
         "placement": "explicit", "positions": [0, 1],
         "horizon": "known_bound_time(N) + 5",
         "grid": {"ring_size": [8, 16, 32]}},
        {"label": "t13-zigzag-quadratic-moves",
         "algorithm": "pt-bound", "agents": 2, "transport": "pt",
         "adversary": "zigzag",
         "placement": "explicit", "positions": [1, 3],
         "stop_on_exploration": True,           # moves are already quadratic
         "horizon": "400 * n * n",
         "grid": {"ring_size": [8, 16, 32]}},
    ]
    # Theorem 10's construction places agents relative to n, so each ring
    # size is its own variant (positions [2, n-1], orientations mirrored).
    for n in (8, 12):
        variants.append(
            {"label": "t3.2-theorem10-pt-no-chirality",
             "algorithm": "pt-bound", "agents": 2, "transport": "pt",
             "scheduler": "fsync",                # everyone active: no PT sleep
             "adversary": "fixed", "edge": 0,
             "chirality": False, "flipped": [1],
             "placement": "explicit", "positions": [2, n - 1],
             "max_rounds": 3_000,
             "grid": {"ring_size": [n]}})
    return CampaignSpec(
        name="impossibility",
        description="Tables 1/3 impossibility and lower-bound adversary "
                    "constructions as resumable campaign cells "
                    "(demonstrations, not proofs).",
        variants=variants,
    )


def impossibility_path() -> CampaignSpec:
    """Path-topology analogues of the Tables 1/3 constructions (24 cells).

    The first bite of "adversary reach on graphs": the same look-ahead
    adversaries that defeat exploration on the ring — Observation 1's
    agent blocking, Observation 2's meeting prevention, Theorem 9's NS
    starvation — re-run on the *path*, the harshest 1-interval-connected
    degree-2 topology, where every edge is a bridge the connectivity
    constraint pins in place.  Each variant sweeps ``topology`` over
    ``ring`` and ``path`` with the same deterministic explorer, so the
    report reads as a direct contrast: the ring rows starve (``NOT
    always explored`` at the full horizon), the path rows explore —
    removal legality, not the distance argument, is what the
    constructions lose at degree 2.

    Sized to stay fast serially yet non-trivial for the distributed
    mode (``campaign run --spec impossibility-path --distributed``).
    """
    return CampaignSpec(
        name="impossibility-path",
        description="Tables 1/3 starvation constructions on ring vs path: "
                    "on the path every edge is a bridge, so the blocking "
                    "and starvation adversaries lose their bite "
                    "(requires networkx).",
        base={
            "stop_on_exploration": True,
            "horizon": "60 * n",
        },
        grid={
            "ring_size": [8, 12, 16],
            "topology": ["ring", "path"],
            "seed": [0],
        },
        variants=[
            # Corollary 1 / Observation 1: one agent, its intended edge
            # forever removed — pinned on the ring, free on the path.
            {"label": "ip-obs1-block-agent", "algorithm": "rotor-router",
             "agents": 1, "adversary": "block-agent"},
            # Observation 2: meetings prevented on the ring, forced on
            # the path (exploration completes either way; the meeting
            # behaviour itself is asserted by the test suite).
            {"label": "ip-obs2-prevent-meetings", "algorithm": "rotor-router",
             "agents": 2, "adversary": "prevent-meetings"},
            # Theorem 9: the combined adversary/scheduler starves every
            # move on the ring; on the path its removal is suppressed and
            # its own schedule walks the agents to full exploration.
            {"label": "ip-t9-ns-starvation", "algorithm": "rotor-router",
             "agents": 2, "adversary": "ns-starvation", "transport": "ns"},
            # Control row: the connectivity-preserving random adversary,
            # same explorer, both topologies explore.
            {"label": "ip-control-random", "algorithm": "rotor-router",
             "agents": 2, "adversary": "random"},
        ],
    )


def smoke() -> CampaignSpec:
    """A <60s CI campaign touching FSYNC, PT and ET paths (24 cells)."""
    return CampaignSpec(
        name="smoke",
        description="Fast end-to-end sanity sweep for CI.",
        base={"adversary": "random"},
        grid={"seed": [0, 1, 2], "ring_size": [6, 8]},
        variants=[
            {"label": "smoke-known-bound", "algorithm": "known-bound",
             "horizon": "known_bound_time(N) + 5",
             "placement": "offset-spread"},
            {"label": "smoke-unconscious", "algorithm": "unconscious",
             "horizon": "100 * n", "stop_on_exploration": True,
             "placement": "offset-spread"},
            {"label": "smoke-pt-bound", "algorithm": "pt-bound",
             "transport": "pt", "placement": "thirds", "max_rounds": 20_000},
            {"label": "smoke-et-unconscious", "algorithm": "et-unconscious",
             "transport": "et", "placement": "thirds", "max_rounds": 20_000,
             "stop_on_exploration": True},
        ],
    )


def batch_smoke() -> CampaignSpec:
    """A <60s CI campaign in which *every* cell is batch-eligible.

    The CI batch lane runs this twice — ``--batch auto`` and
    ``--batch off`` — and diffs the stores byte for byte: the vector
    path must be invisible in everything persisted.  The widened
    frontier (PT/ET transports, landmark kernels, SSYNC masks) gets the
    same treatment from the ``batch-wide`` preset; mixed chunk routing
    is covered by ``faults-smoke`` (its fault plans stay scalar).
    """
    return CampaignSpec(
        name="batch-smoke",
        description="All-eligible sweep for the batched-vs-scalar CI diff.",
        base={"adversary": "random", "transport": "ns"},
        grid={"seed": [0, 1, 2, 3], "ring_size": [8, 12, 16]},
        variants=[
            {"label": "batch-known-bound", "algorithm": "known-bound",
             "horizon": "known_bound_time(N) + 5",
             "placement": "offset-spread"},
            {"label": "batch-known-bound-k4", "algorithm": "known-bound",
             "agents": 4, "horizon": "known_bound_time(N) + 5"},
            {"label": "batch-unconscious", "algorithm": "unconscious",
             "horizon": "100 * n", "stop_on_exploration": True,
             "placement": "offset-spread"},
        ],
    )


def batch_wide() -> CampaignSpec:
    """The widened-frontier CI sweep: PT/ET, landmarks, SSYNC (54 cells).

    Every cell is batch-eligible and every variant lands in a kernel
    family the original ``batch-smoke`` preset never touched: PT rides,
    ET exact-traversal bookkeeping, landmark size learning (with and
    without chirality) and the pre-drawn SSYNC activation masks.  The
    CI batch lane runs this twice — ``--batch auto`` and ``--batch
    off`` — and diffs the stores byte for byte, so a regression in any
    new kernel breaks CI even if the equivalence suite's grid misses
    the shape.
    """
    return CampaignSpec(
        name="batch-wide",
        description="All-eligible PT/ET/landmark/SSYNC sweep for the "
                    "batched-vs-scalar CI diff.",
        base={"adversary": "random"},
        grid={"seed": [0, 1, 2], "ring_size": [8, 12]},
        variants=[
            {"label": "bw-pt-bound", "algorithm": "pt-bound",
             "transport": "pt", "placement": "thirds",
             "max_rounds": 2_000},
            {"label": "bw-pt-landmark", "algorithm": "pt-landmark",
             "transport": "pt", "landmark": 0, "placement": "thirds",
             "max_rounds": 2_000},
            {"label": "bw-et-unconscious", "algorithm": "et-unconscious",
             "transport": "et", "placement": "thirds",
             "stop_on_exploration": True, "max_rounds": 2_000},
            {"label": "bw-et-exact", "algorithm": "et-exact", "agents": 3,
             "transport": "et", "chirality": False, "flipped": [1],
             "max_rounds": 2_000},
            {"label": "bw-landmark-chirality",
             "algorithm": "landmark-chirality", "landmark": 0,
             "horizon": "100 * n"},
            {"label": "bw-landmark-no-chirality",
             "algorithm": "landmark-no-chirality", "landmark": 0,
             "chirality": False, "flipped": [1],
             "horizon": "no_chirality_timeout(n) + 10"},
            {"label": "bw-ssync-round-robin", "algorithm": "known-bound",
             "scheduler": "round-robin", "horizon": "100 * n"},
            {"label": "bw-ssync-random-fair", "algorithm": "unconscious",
             "scheduler": "random-fair", "stop_on_exploration": True,
             "horizon": "100 * n"},
            {"label": "bw-ssync-et-fair", "algorithm": "known-bound",
             "scheduler": "et-fair", "transport": "et",
             "max_rounds": 1_500},
        ],
    )


def faults_smoke() -> CampaignSpec:
    """A <60s resilience sweep: fault-free vs crashed vs lossy agents.

    Pairs each algorithm family with an identical faulty twin so
    ``campaign report`` shows the degradation side by side: the
    known-bound explorer under a ``crash:1@4`` plan loses an agent four
    rounds in, the unconscious explorer is additionally run with a
    small per-round crash rate.  ``make faults-campaign`` runs this and
    then exercises ``report --errors`` and ``report --fit`` over the
    resulting store.
    """
    return CampaignSpec(
        name="faults-smoke",
        description="Fault-injection sweep: crash-at-round and lossy "
                    "fault plans next to their fault-free twins.",
        base={"adversary": "random", "transport": "ns", "agents": 2,
              "placement": "offset-spread"},
        grid={"seed": [0, 1, 2], "ring_size": [8, 12, 16]},
        variants=[
            {"label": "ff-known-bound", "algorithm": "known-bound",
             "horizon": "known_bound_time(N) + 5"},
            {"label": "ff-unconscious", "algorithm": "unconscious",
             "horizon": "100 * n", "stop_on_exploration": True},
            {"label": "crash-known-bound", "algorithm": "known-bound",
             "horizon": "known_bound_time(N) + 5", "faults": "crash:1@4"},
            {"label": "crash-unconscious", "algorithm": "unconscious",
             "horizon": "100 * n", "stop_on_exploration": True,
             "faults": "crash:1@4"},
            {"label": "lossy-unconscious", "algorithm": "unconscious",
             "horizon": "100 * n", "stop_on_exploration": True,
             "faults": "rate:0.05"},
        ],
    )


#: name -> spec factory; ``python -m repro campaign list`` prints these.
SPECS: dict[str, Callable[[], CampaignSpec]] = {
    "table2-fsync": table2_fsync,
    "table4-ssync": table4_ssync,
    "paper-tables": paper_tables,
    "impossibility": impossibility,
    "impossibility-path": impossibility_path,
    "topologies": topologies,
    "topologies-smoke": topologies_smoke,
    "smoke": smoke,
    "batch-smoke": batch_smoke,
    "batch-wide": batch_wide,
    "faults-smoke": faults_smoke,
}

DEFAULT_SPEC = "paper-tables"


def get_spec(name: str) -> CampaignSpec:
    """Resolve a preset name to a fresh spec instance."""
    if name not in SPECS:
        raise ConfigurationError(
            f"unknown campaign spec {name!r} (choose from {sorted(SPECS)})")
    return SPECS[name]()


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a spec from a ``.json``/``.yaml``/``.yml`` file.

    Every failure mode (missing file, parse error, bad structure) is
    reported as a :class:`ConfigurationError` so the CLI can turn it
    into a clean message instead of a traceback.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {path}: {exc}") from exc
    try:
        if path.suffix in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - yaml ships in the image
                raise ConfigurationError("PyYAML is required for YAML specs") from exc
            data = yaml.safe_load(text)
        else:
            data = json.loads(text)
    except ConfigurationError:
        raise
    except Exception as exc:
        raise ConfigurationError(f"invalid spec file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"spec file {path} must contain a mapping, got {type(data).__name__}")
    return CampaignSpec.from_dict(data)
