"""The lease-based work queue: the SQLite store *is* the coordinator.

A campaign becomes claimable work in three tables next to ``results``
(schema in :mod:`repro.campaigns.stores.sqlite`):

* ``chunks`` — the unit of claimable work (an ordered JSON array of cell
  dicts), moving ``pending -> leased -> done``;
* ``leases`` — at most one row per leased chunk: the holding worker, its
  last heartbeat, and the attempt count;
* ``workers`` — telemetry: one row per worker that ever polled.

There is **no coordinator process**.  Every transition is one SQLite
``BEGIN IMMEDIATE`` transaction, so any number of workers on any number
of hosts pointed at the same database serialise on the write lock:

* :meth:`WorkQueue.claim` atomically turns one pending chunk into a
  lease (or *steals* a leased chunk whose heartbeat is older than the
  lease TTL — the crash-recovery path);
* :meth:`WorkQueue.heartbeat` refreshes the lease mid-chunk and reports
  whether it is still held (a ``False`` means the chunk was stolen and
  the worker must discard its partial work);
* :meth:`WorkQueue.complete` appends the chunk's result records **and**
  retires the chunk in the same transaction — so results are recorded
  exactly once even when a slow worker and the thief that stole its
  chunk both finish: whoever commits first wins, the loser gets
  :class:`LeaseLost` and discards.

Idempotence comes from the content-hashed cell keys: enqueueing skips
cells already completed in the store (and cells already sitting in a
live chunk), so ``enqueue`` after a crash re-queues exactly the missing
work.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ...core.errors import ConfigurationError
from ...obs import metrics as obs_metrics
from ...resilience.chaos import chaos_policy
from ...resilience.retry import retry
from ..registry import validate_cell
from ..spec import CellConfig
from ..stores import ResultStore, open_store
from ..stores.base import SCHEMA_VERSION
from ..stores.sqlite import INSERT_RESULT_SQL, result_rows

#: Default lease time-to-live: a lease whose heartbeat is older than this
#: is considered orphaned and may be stolen.  Workers heartbeat at a
#: quarter of the TTL, so one missed beat never costs a healthy worker
#: its lease.
DEFAULT_LEASE_TTL_S = 30.0

#: Claim attempts after which a chunk is *parked* (state ``failed``)
#: instead of stolen again.  A chunk whose cells kill the worker process
#: outright (OOM, segfault — no Python exception, so no error record)
#: would otherwise be re-stolen forever, killing every worker that
#: touches it and never letting the campaign finish.  Parked chunks are
#: terminal for :meth:`WorkQueue.finished`, show up in ``campaign
#: status``, and their cells become enqueueable again by a fresh
#: ``campaign enqueue``.
DEFAULT_MAX_ATTEMPTS = 5


class LeaseLost(RuntimeError):
    """The lease was stolen (or released) out from under the worker."""


def has_live_chunks(store) -> bool:
    """Are pending/leased chunks registered for this store's campaign?

    Cheap probe used by the pool executor: writing results past the
    lease barrier (plain ``append_many``) while a fleet is draining the
    same campaign could record a cell twice, so ``run_cells`` refuses
    when this is true.
    """
    if not getattr(store, "supports_leases", False) or not store.exists():
        return False
    (live,) = store.connection().execute(
        "SELECT COUNT(*) FROM chunks WHERE campaign_key = ? "
        "AND state IN ('pending', 'leased')",
        (store.campaign or "",)).fetchone()
    return live > 0


def worker_identity(suffix: str | None = None) -> str:
    """A fleet-unique worker id: ``host-pid`` (plus an optional suffix)."""
    base = f"{socket.gethostname()}-{os.getpid()}"
    return f"{base}-{suffix}" if suffix else base


@dataclass(frozen=True)
class Claim:
    """One successfully claimed chunk of work."""

    chunk_id: int
    cells: tuple[dict[str, Any], ...]
    attempt: int
    stolen_from: str | None = None
    #: When the chunk was enqueued — lets the worker stamp the chunk
    #: span's ``queue_wait_s`` (time spent claimable before this claim).
    created_at: float | None = None


@dataclass(frozen=True)
class EnqueueReport:
    """What one :meth:`WorkQueue.enqueue` call did."""

    total: int
    enqueued_cells: int
    chunks: int
    chunk_size: int
    skipped_done: int
    skipped_failed: int
    skipped_queued: int

    def summary(self) -> str:
        return (
            f"cells={self.total} enqueued={self.enqueued_cells} "
            f"(chunks={self.chunks} x <= {self.chunk_size}) "
            f"skipped: done={self.skipped_done} failed={self.skipped_failed} "
            f"queued={self.skipped_queued}"
        )


@dataclass(frozen=True)
class QueueCounts:
    """Chunk/cell totals for one campaign's queue (a status snapshot)."""

    pending: int
    leased: int
    orphaned: int
    done: int
    cells_pending: int
    cells_leased: int
    cells_done: int
    max_attempt: int
    failed: int = 0          # chunks parked after exhausting max_attempts
    cells_failed: int = 0    # cells inside parked chunks
    batched_done: int = 0    # done chunks that ran through BatchCore
    cells_batched: int = 0   # cells inside those batched chunks

    @property
    def chunks_total(self) -> int:
        return self.pending + self.leased + self.done + self.failed

    @property
    def cells_remaining(self) -> int:
        return self.cells_pending + self.cells_leased


@dataclass(frozen=True)
class WorkerInfo:
    """One worker row: identity, liveness and completion counters."""

    worker_id: str
    host: str
    pid: int
    started_at: float
    last_seen: float
    cells_done: int
    chunks_done: int


@dataclass(frozen=True)
class ChunkInfo:
    """Telemetry of one retired chunk (``campaign status`` per-chunk rows)."""

    chunk_id: int
    n_cells: int
    done_at: float
    batched: bool
    cells_per_s: float | None


@dataclass(frozen=True)
class LeaseInfo:
    """One currently-held lease (``status`` straggler detection rows)."""

    chunk_id: int
    worker_id: str
    acquired_at: float
    heartbeat: float
    attempt: int
    n_cells: int


class WorkQueue:
    """Atomic claim/lease semantics over one campaign in a SQLite store."""

    def __init__(
        self,
        store: ResultStore | str,
        *,
        campaign: str | None = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        store = open_store(store, campaign=campaign)
        if not store.supports_leases:
            raise ConfigurationError(
                f"store backend {type(store).__name__} ({store.uri()}) cannot "
                "host a distributed work queue: lease claims need atomic "
                "multi-writer transactions — use a SQLite store "
                "(--store sqlite:PATH)")
        if lease_ttl_s <= 0:
            raise ConfigurationError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
        if max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.campaign = store.campaign or ""
        self.lease_ttl_s = float(lease_ttl_s)
        self.max_attempts = int(max_attempts)
        chaos = chaos_policy()
        if chaos is not None and clock is time.time:
            # Chaos clock skew applies only to the real wall clock: the
            # lease keeper re-opens a queue passing this queue's (already
            # skewed) clock through, and test harnesses inject FakeClocks
            # — neither must be skewed twice.
            clock = chaos.skewed(clock)
        self._clock = clock
        self._last_idle_touch = float("-inf")

    # -- transaction plumbing ------------------------------------------

    def _begin(self):
        """Open an IMMEDIATE transaction (writers serialise here).

        With metrics on, the time spent waiting for the write lock is
        recorded (``queue.lock_wait_s``) — the first signal that a fleet
        has outgrown one SQLite writer.
        """
        conn = self.store.connection()
        if obs_metrics.enabled():
            t0 = time.perf_counter()
            conn.execute("BEGIN IMMEDIATE")
            obs_metrics.registry().histogram("queue.lock_wait_s").observe(
                time.perf_counter() - t0)
        else:
            conn.execute("BEGIN IMMEDIATE")
        return conn

    def _txn(self, site: str, body):
        """Run ``body(conn)`` inside one retried IMMEDIATE transaction.

        Every queue write routes through here: one BEGIN IMMEDIATE, the
        body, one COMMIT — rolled back on any failure — the whole
        attempt wrapped in :func:`~repro.resilience.retry.retry`, so
        transient ``SQLITE_BUSY`` contention backs off and retries
        uniformly instead of each site improvising.  A body is re-run
        from scratch on retry and must be idempotent up to its own reads
        (they all are: each re-checks state inside the fresh
        transaction).  Non-transient errors — :class:`LeaseLost`,
        :class:`~repro.resilience.chaos.ChaosCrash` — propagate
        immediately.
        """
        def attempt():
            conn = self._begin()
            try:
                out = body(conn)
                conn.execute("COMMIT")
                return out
            except BaseException:
                if conn.in_transaction:
                    conn.execute("ROLLBACK")
                raise

        return retry(attempt, site=site)

    # -- enqueue -------------------------------------------------------

    def enqueue(
        self,
        cells: Iterable[CellConfig],
        *,
        chunk_size: int | None = None,
        retry_failed: bool = False,
    ) -> EnqueueReport:
        """Persist the pending cells of a campaign as claimable chunks.

        Cells whose key is already completed in the store are skipped;
        cells whose only outcome is an error record are skipped too
        unless ``retry_failed`` (the fleet twin of
        ``campaign resume --retry-failed``).  Cells already sitting in a
        pending or leased chunk are never double-queued — the scan and
        the inserts share one transaction, so concurrent enqueues
        serialise instead of racing each other into duplicates.
        """
        from ..executor import _wants_batch, default_chunk_size

        cells = list(cells)
        for cell in cells:
            validate_cell(cell)
        keyed = [(cell.key(), cell) for cell in cells]
        done = self.store.completed_keys()
        errored = set() if retry_failed else self.store.error_keys()
        skipped_done = sum(1 for key, _ in keyed if key in done)
        skipped_failed = sum(
            1 for key, _ in keyed if key not in done and key in errored)
        # Dedupe within the batch too (two spec variants can collapse to
        # identical cells): the first occurrence wins, the rest count as
        # already queued.
        seen: set[str] = set()
        duplicates = 0
        runnable = []
        for key, cell in keyed:
            if key in done or key in errored:
                continue
            if key in seen:
                duplicates += 1
                continue
            seen.add(key)
            runnable.append((key, cell))
        if chunk_size is None:
            # Chunks sized to fill the vector width when every runnable
            # cell qualifies for the batch path (wide chunks are what
            # makes one lease one lockstep NumPy run).
            batchable = bool(runnable) and all(
                _wants_batch(cell, None) for _, cell in runnable)
            chunk_size = default_chunk_size(len(runnable), batch=batchable)
        elif chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}")
        now = self._clock()
        # Serialise payloads before taking the write lock; the only work
        # inside the transaction is the indexed dedupe scan (reading the
        # precomputed cell_keys column — no JSON cell parsing, no
        # re-hashing) and the inserts, so fleet heartbeats/claims queued
        # behind a large enqueue wait microseconds, not a key-hash pass.
        prepared = []
        for start in range(0, len(runnable), chunk_size):
            batch = runnable[start:start + chunk_size]
            prepared.append((
                [key for key, _ in batch],
                json.dumps([cell.to_dict() for _, cell in batch],
                           sort_keys=True, separators=(",", ":")),
            ))
        by_key = dict(runnable)   # built outside the write lock

        def body(conn):
            queued = self._queued_keys(conn)
            fresh = 0
            rows = []
            for keys, payload in prepared:
                kept = [k for k in keys if k not in queued]
                if len(kept) != len(keys):
                    # Rare overlap with a concurrent enqueue: rebuild the
                    # chunk from the surviving cells only.
                    payload = json.dumps(
                        [by_key[k].to_dict() for k in kept],
                        sort_keys=True, separators=(",", ":"))
                    keys = kept
                if not keys:
                    continue
                fresh += len(keys)
                rows.append((
                    self.campaign, payload,
                    json.dumps(keys, separators=(",", ":")),
                    len(keys), now,
                ))
            conn.executemany(
                "INSERT INTO chunks (campaign_key, cells, cell_keys, "
                "n_cells, created_at) VALUES (?, ?, ?, ?, ?)", rows)
            return fresh, len(rows)

        fresh_count, chunk_count = self._txn("queue.enqueue", body)
        return EnqueueReport(
            total=len(cells),
            enqueued_cells=fresh_count,
            chunks=chunk_count,
            chunk_size=chunk_size,
            skipped_done=skipped_done,
            skipped_failed=skipped_failed,
            skipped_queued=len(runnable) - fresh_count + duplicates,
        )

    def _queued_keys(self, conn) -> set[str]:
        """Cell keys sitting in a live (pending/leased) chunk.

        ``failed`` (parked) chunks are excluded on purpose: a fresh
        ``campaign enqueue`` is the operator's way of giving poison
        chunks' cells a new attempt cycle.
        """
        queued: set[str] = set()
        for (keys_json,) in conn.execute(
            "SELECT cell_keys FROM chunks "
            "WHERE campaign_key = ? AND state IN ('pending', 'leased')",
            (self.campaign,),
        ):
            queued.update(json.loads(keys_json))
        return queued

    def queued_cell_keys(self) -> set[str]:
        """Cell keys currently pending or leased (for tests/telemetry)."""
        return self._queued_keys(self.store.connection())

    # -- claim / heartbeat / complete ----------------------------------

    def claim(self, worker_id: str) -> Claim | None:
        """Atomically claim one chunk: pending first, else steal an
        orphaned lease (heartbeat older than the TTL).  ``None`` when
        nothing is claimable right now.

        Empty-handed polls are cheap on purpose: a read-only probe runs
        first, and the write transaction (plus the worker-liveness
        upsert, rate-limited to once per quarter-TTL) is only taken when
        there is something to claim — N idle workers polling one
        straggler's lease must not serialise on the write lock.  The
        probe is racy by design: work appearing after it is simply
        picked up on the next poll.
        """
        now = self._clock()
        reg = obs_metrics.registry() if obs_metrics.enabled() else None
        t0 = time.perf_counter()
        read = self.store.connection()
        claimable = read.execute(
            "SELECT 1 FROM chunks WHERE campaign_key = ? "
            "AND state = 'pending' LIMIT 1", (self.campaign,)).fetchone()
        if claimable is None:
            claimable = read.execute(
                "SELECT 1 FROM chunks c JOIN leases l ON l.chunk_id = c.id "
                "WHERE c.campaign_key = ? AND c.state = 'leased' "
                "AND l.heartbeat < ? LIMIT 1",
                (self.campaign, now - self.lease_ttl_s)).fetchone()
        if claimable is None:
            if now - self._last_idle_touch >= self.lease_ttl_s / 4.0:
                self._txn(
                    "queue.claim",
                    lambda conn: self._touch_worker(conn, worker_id, now))
                self._last_idle_touch = now
            if reg is not None:
                reg.counter("queue.idle_polls").inc()
            return None

        def body(conn):
            self._touch_worker(conn, worker_id, now)
            row = conn.execute(
                "SELECT id, cells, created_at FROM chunks "
                "WHERE campaign_key = ? AND state = 'pending' "
                "ORDER BY id LIMIT 1", (self.campaign,),
            ).fetchone()
            if row is not None:
                chunk_id, payload, created_at = row
                conn.execute(
                    "UPDATE chunks SET state = 'leased' WHERE id = ?",
                    (chunk_id,))
                conn.execute(
                    "INSERT INTO leases (chunk_id, worker_id, heartbeat, "
                    "acquired_at, attempt) VALUES (?, ?, ?, ?, 1)",
                    (chunk_id, worker_id, now, now))
                return chunk_id, payload, 1, None, created_at
            while True:
                row = conn.execute(
                    "SELECT c.id, c.cells, l.worker_id, l.attempt, "
                    "c.created_at "
                    "FROM chunks c JOIN leases l ON l.chunk_id = c.id "
                    "WHERE c.campaign_key = ? AND c.state = 'leased' "
                    "AND l.heartbeat < ? ORDER BY l.heartbeat LIMIT 1",
                    (self.campaign, now - self.lease_ttl_s),
                ).fetchone()
                if row is None:
                    return None
                chunk_id, payload, stolen_from, previous, created_at = row
                if previous >= self.max_attempts:
                    # A chunk that has burned through its attempts is
                    # poison (its cells likely kill the worker process
                    # outright): park it instead of feeding it to yet
                    # another worker, and keep looking for real work.
                    conn.execute(
                        "UPDATE chunks SET state = 'failed', "
                        "done_at = ? WHERE id = ?", (now, chunk_id))
                    conn.execute(
                        "DELETE FROM leases WHERE chunk_id = ?",
                        (chunk_id,))
                    if reg is not None:
                        reg.counter("queue.parked").inc()
                    continue
                attempt = previous + 1
                conn.execute(
                    "UPDATE leases SET worker_id = ?, heartbeat = ?, "
                    "acquired_at = ?, attempt = ? WHERE chunk_id = ?",
                    (worker_id, now, now, attempt, chunk_id))
                return chunk_id, payload, attempt, stolen_from, created_at

        claimed = self._txn("queue.claim", body)
        if claimed is None:
            if reg is not None:
                reg.counter("queue.idle_polls").inc()
            return None
        chunk_id, payload, attempt, stolen_from, created_at = claimed
        self._last_idle_touch = now  # the claim transaction touched us
        if reg is not None:
            reg.counter("queue.claims").inc()
            if stolen_from is not None:
                reg.counter("queue.steals").inc()
            reg.histogram("queue.claim_s").observe(time.perf_counter() - t0)
        return Claim(
            chunk_id=chunk_id,
            cells=tuple(json.loads(payload)),
            attempt=attempt,
            stolen_from=stolen_from,
            created_at=created_at,
        )

    def heartbeat(self, chunk_id: int, worker_id: str) -> bool:
        """Refresh a held lease; ``False`` means it is no longer ours."""
        now = self._clock()

        def body(conn):
            cursor = conn.execute(
                "UPDATE leases SET heartbeat = ? "
                "WHERE chunk_id = ? AND worker_id = ?",
                (now, chunk_id, worker_id))
            self._touch_worker(conn, worker_id, now)
            return cursor.rowcount == 1

        held = self._txn("queue.heartbeat", body)
        if obs_metrics.enabled():
            reg = obs_metrics.registry()
            reg.counter("queue.heartbeats").inc()
            if not held:
                reg.counter("queue.heartbeat_lost").inc()
        return held

    def complete(
        self, chunk_id: int, worker_id: str,
        records: Sequence[dict[str, Any]],
        *,
        batched: bool = False,
        cells_per_s: float | None = None,
    ) -> None:
        """Append the chunk's records and retire it — one transaction.

        This is the exactly-once-recording barrier: if the lease was
        stolen while the worker computed, :class:`LeaseLost` is raised
        and *nothing* is written — the thief's eventual ``complete``
        records the chunk instead.

        ``batched``/``cells_per_s`` are pure telemetry stamped onto the
        retired chunk row (``campaign status`` shows them); they never
        touch the result records themselves.
        """
        now = self._clock()
        stamped = [dict(r, schema=SCHEMA_VERSION) for r in records]
        rows = result_rows(stamped, self.campaign)
        chaos = chaos_policy()
        if chaos is not None:
            chaos.maybe_delay()

        def body(conn):
            holder = conn.execute(
                "SELECT worker_id FROM leases WHERE chunk_id = ?",
                (chunk_id,)).fetchone()
            if holder is None or holder[0] != worker_id:
                conn.execute("ROLLBACK")
                if obs_metrics.enabled():
                    obs_metrics.registry().counter("queue.lease_lost").inc()
                raise LeaseLost(
                    f"chunk {chunk_id} is no longer leased to {worker_id} "
                    f"(holder: {holder[0] if holder else 'nobody'})")
            conn.executemany(INSERT_RESULT_SQL, rows)
            conn.execute(
                "UPDATE chunks SET state = 'done', done_at = ?, "
                "batched = ?, cells_per_s = ? WHERE id = ?",
                (now, 1 if batched else 0, cells_per_s, chunk_id))
            conn.execute("DELETE FROM leases WHERE chunk_id = ?", (chunk_id,))
            conn.execute(
                "UPDATE workers SET cells_done = cells_done + ?, "
                "chunks_done = chunks_done + 1, last_seen = ? "
                "WHERE worker_id = ?",
                (len(rows), now, worker_id))
            if chaos is not None:
                # Dies holding the lease, records rolled back: the chunk
                # orphans and a peer steals it after the TTL.
                chaos.crash_point("before-commit")

        self._txn("queue.complete", body)
        if chaos is not None:
            # Dies with the records durably committed and the lease gone:
            # the exactly-once barrier already did its job.
            chaos.crash_point("after-commit")
        self.store.invalidate_caches()
        if obs_metrics.enabled():
            reg = obs_metrics.registry()
            reg.counter("queue.completes").inc()
            reg.counter("queue.cells_completed").inc(len(rows))

    def release(self, chunk_id: int, worker_id: str) -> bool:
        """Hand a held chunk back to the pending pool (graceful shutdown)."""
        def body(conn):
            cursor = conn.execute(
                "DELETE FROM leases WHERE chunk_id = ? AND worker_id = ?",
                (chunk_id, worker_id))
            if cursor.rowcount == 1:
                conn.execute(
                    "UPDATE chunks SET state = 'pending' WHERE id = ?",
                    (chunk_id,))
            return cursor.rowcount == 1

        return self._txn("queue.release", body)

    # -- telemetry -----------------------------------------------------

    def finished(self) -> bool:
        """Chunks were enqueued and none is still pending or leased.

        A campaign with *no* chunks at all is **not** finished: workers
        started before the enqueue commits (fleet bring-up scripts do
        this) must wait for work to appear, not exit 0 and silently
        strand the campaign.  Parked (``failed``) chunks are terminal —
        a poison chunk must not hang the fleet forever; ``campaign
        status`` surfaces them.
        """
        row = self.store.connection().execute(
            "SELECT COUNT(*), "
            "COALESCE(SUM(state IN ('pending', 'leased')), 0) FROM chunks "
            "WHERE campaign_key = ?",
            (self.campaign,)).fetchone()
        total, open_chunks = int(row[0]), int(row[1])
        return total > 0 and open_chunks == 0

    def parked_cell_keys(self) -> set[str]:
        """Cell keys inside parked (``failed``) chunks of this campaign.

        A parked cell is not necessarily lost: a later enqueue may have
        re-queued it (parked chunks are excluded from the dedupe scan)
        and a worker may have completed or errored it since — compare
        against the store's completed/error keys to find the cells that
        truly never ran.
        """
        parked: set[str] = set()
        for (keys_json,) in self.store.connection().execute(
            "SELECT cell_keys FROM chunks "
            "WHERE campaign_key = ? AND state = 'failed'",
            (self.campaign,),
        ):
            parked.update(json.loads(keys_json))
        return parked

    def ever_enqueued(self) -> bool:
        """Has any chunk (in any state) ever existed for this campaign?"""
        (total,) = self.store.connection().execute(
            "SELECT COUNT(*) FROM chunks WHERE campaign_key = ?",
            (self.campaign,)).fetchone()
        return total > 0

    def counts(self) -> QueueCounts:
        """Chunk/cell totals plus orphan detection (one aggregate query)."""
        now = self._clock()
        conn = self.store.connection()
        by_state = {
            state: (chunks, cells)
            for state, chunks, cells in conn.execute(
                "SELECT state, COUNT(*), COALESCE(SUM(n_cells), 0) "
                "FROM chunks WHERE campaign_key = ? GROUP BY state",
                (self.campaign,))
        }
        (orphaned,) = conn.execute(
            "SELECT COUNT(*) FROM chunks c JOIN leases l ON l.chunk_id = c.id "
            "WHERE c.campaign_key = ? AND c.state = 'leased' "
            "AND l.heartbeat < ?",
            (self.campaign, now - self.lease_ttl_s)).fetchone()
        (max_attempt,) = conn.execute(
            "SELECT COALESCE(MAX(l.attempt), 0) FROM leases l "
            "JOIN chunks c ON c.id = l.chunk_id WHERE c.campaign_key = ?",
            (self.campaign,)).fetchone()
        batched_done, cells_batched = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(n_cells), 0) FROM chunks "
            "WHERE campaign_key = ? AND state = 'done' AND batched = 1",
            (self.campaign,)).fetchone()
        pending = by_state.get("pending", (0, 0))
        leased = by_state.get("leased", (0, 0))
        done = by_state.get("done", (0, 0))
        failed = by_state.get("failed", (0, 0))
        return QueueCounts(
            pending=pending[0], leased=leased[0], orphaned=orphaned,
            done=done[0],
            cells_pending=pending[1], cells_leased=leased[1],
            cells_done=done[1], max_attempt=max_attempt,
            failed=failed[0], cells_failed=failed[1],
            batched_done=batched_done, cells_batched=cells_batched,
        )

    def workers(self) -> list[WorkerInfo]:
        """Every worker that ever polled this campaign, newest beat first."""
        return [
            WorkerInfo(*row)
            for row in self.store.connection().execute(
                "SELECT worker_id, host, pid, started_at, last_seen, "
                "cells_done, chunks_done FROM workers "
                "WHERE campaign_key = ? ORDER BY last_seen DESC, worker_id",
                (self.campaign,))
        ]

    def recent_chunks(self, limit: int = 5) -> list[ChunkInfo]:
        """The most recently retired chunks, newest first (status rows)."""
        return [
            ChunkInfo(chunk_id=row[0], n_cells=row[1], done_at=row[2],
                      batched=bool(row[3]), cells_per_s=row[4])
            for row in self.store.connection().execute(
                "SELECT id, n_cells, done_at, batched, cells_per_s "
                "FROM chunks WHERE campaign_key = ? AND state = 'done' "
                "ORDER BY done_at DESC, id DESC LIMIT ?",
                (self.campaign, limit))
        ]

    def active_leases(self) -> list[LeaseInfo]:
        """Every currently-held lease, oldest acquisition first.

        The live half of straggler detection: a lease whose age dwarfs
        the fleet's median chunk time (:meth:`chunk_seconds`) is either
        a skewed chunk or a dying worker — ``campaign status`` renders
        the hint via :func:`repro.obs.analyze.straggler_hint`.
        """
        return [
            LeaseInfo(chunk_id=row[0], worker_id=row[1], acquired_at=row[2],
                      heartbeat=row[3], attempt=row[4], n_cells=row[5])
            for row in self.store.connection().execute(
                "SELECT l.chunk_id, l.worker_id, l.acquired_at, "
                "l.heartbeat, l.attempt, c.n_cells "
                "FROM leases l JOIN chunks c ON c.id = l.chunk_id "
                "WHERE c.campaign_key = ? AND c.state = 'leased' "
                "ORDER BY l.acquired_at, l.chunk_id",
                (self.campaign,))
        ]

    def chunk_seconds(self) -> list[float]:
        """Estimated wall seconds of every retired chunk (sorted).

        Derived from the per-chunk telemetry the completion transaction
        stamps (``n_cells / cells_per_s``) — the fleet-median baseline
        the straggler hint compares active lease ages against.
        """
        return sorted(
            n_cells / rate
            for n_cells, rate in self.store.connection().execute(
                "SELECT n_cells, cells_per_s FROM chunks "
                "WHERE campaign_key = ? AND state = 'done' "
                "AND cells_per_s IS NOT NULL AND cells_per_s > 0 "
                "AND n_cells > 0",
                (self.campaign,))
        )

    def completion_rate(self, window_s: float = 60.0) -> float | None:
        """Fleet-wide cells/second over the trailing window (None if idle)."""
        now = self._clock()
        (cells,) = self.store.connection().execute(
            "SELECT COALESCE(SUM(n_cells), 0) FROM chunks "
            "WHERE campaign_key = ? AND state = 'done' AND done_at >= ?",
            (self.campaign, now - window_s)).fetchone()
        if not cells:
            return None
        return cells / window_s

    def chunk_rates(self) -> list[float]:
        """Per-chunk ``cells_per_s`` of every retired chunk (sorted).

        The raw distribution behind the ``status``/``campaign metrics``
        cells/s percentiles — per chunk, not per worker, so a straggler
        chunk is visible even on a healthy fleet.
        """
        return sorted(
            rate for (rate,) in self.store.connection().execute(
                "SELECT cells_per_s FROM chunks WHERE campaign_key = ? "
                "AND state = 'done' AND cells_per_s IS NOT NULL",
                (self.campaign,))
        )

    def record_worker_metrics(
        self, worker_id: str, snapshot: dict[str, Any]
    ) -> None:
        """Persist one worker's metrics snapshot (upsert; telemetry only)."""
        self.store.record_metrics_snapshot(worker_id, snapshot)

    def worker_metrics(self) -> list[tuple[str, float, dict[str, Any]]]:
        """Every persisted worker snapshot for this campaign."""
        return self.store.metrics_snapshots()

    def _touch_worker(self, conn, worker_id: str, now: float) -> None:
        # On conflict, refresh identity as well as liveness: a reused
        # worker_id (restarted process, or the same id polling a
        # different campaign in a shared database) must show up in the
        # campaign it is polling *now*.
        conn.execute(
            "INSERT INTO workers (worker_id, campaign_key, host, pid, "
            "started_at, last_seen) VALUES (?, ?, ?, ?, ?, ?) "
            "ON CONFLICT(worker_id) DO UPDATE SET "
            "last_seen = excluded.last_seen, "
            "campaign_key = excluded.campaign_key, "
            "host = excluded.host, pid = excluded.pid",
            (worker_id, self.campaign, socket.gethostname(), os.getpid(),
             now, now))

    def __repr__(self) -> str:
        return (f"WorkQueue({self.store.uri()!r}, campaign={self.campaign!r}, "
                f"lease_ttl_s={self.lease_ttl_s})")
