"""Coordinator verbs and live fleet telemetry — all read from the store.

``campaign enqueue`` (:func:`enqueue_campaign`) expands a spec and
persists its pending cells as claimable chunks; ``campaign status``
(:func:`fleet_status` / :func:`render_status`, ``--watch`` via
:func:`watch_status`) renders what the fleet is doing *right now* from
the same tables the workers write — workers alive, chunks
pending/leased/orphaned/done, cells per second, ETA.  Nothing here holds
state: kill the status process, run it on another host, same picture.

:func:`run_distributed` is the single-host convenience path behind
``campaign run --distributed``: enqueue, spawn N local worker processes,
poll progress, and summarise — the UX of ``campaign run``, the machinery
of the fleet.  Multi-host is the same thing minus the spawn: run
``python -m repro campaign worker`` anywhere that can reach the store.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ...core.errors import ConfigurationError
from ...obs import metrics as obs_metrics
from ...obs.analyze import straggler_hint
from ..executor import CampaignRun, batch_reject_counts
from ..spec import CampaignSpec, CellConfig
from ..stores import ResultStore, open_store
from .queue import (
    DEFAULT_LEASE_TTL_S,
    ChunkInfo,
    EnqueueReport,
    QueueCounts,
    WorkQueue,
    WorkerInfo,
)
from .worker import run_worker


def enqueue_campaign(
    spec: CampaignSpec,
    store: ResultStore | str,
    *,
    cells: Sequence[CellConfig] | None = None,
    chunk_size: int | None = None,
    retry_failed: bool = False,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
) -> tuple[WorkQueue, EnqueueReport]:
    """Expand a spec and enqueue its pending cells as claimable chunks."""
    store = open_store(store, campaign=spec.name)
    queue = WorkQueue(store, lease_ttl_s=lease_ttl_s)
    report = queue.enqueue(
        cells if cells is not None else spec.cell_list(),
        chunk_size=chunk_size, retry_failed=retry_failed)
    return queue, report


@dataclass(frozen=True)
class FleetStatus:
    """One snapshot of a campaign's fleet, read entirely from the store."""

    campaign: str
    store_uri: str
    counts: QueueCounts
    workers: tuple[WorkerInfo, ...]
    alive: int
    cells_completed: int     # distinct completed cell keys in the store
    cells_errored: int       # cells whose only outcome is an error record
    rate_cells_per_s: float | None
    eta_s: float | None
    lease_ttl_s: float
    finished: bool
    #: False when no chunk (in any state) exists for the campaign — the
    #: store may hold pool-mode results, or the enqueue hasn't run yet.
    ever_enqueued: bool = True
    #: The most recently retired chunks (batched flag + cells/s each).
    recent_chunks: tuple[ChunkInfo, ...] = ()
    #: Claim-latency summary (count/p50/p90/p99 seconds) merged from the
    #: workers' persisted metrics snapshots; None when no worker ran
    #: with ``--metrics``.
    claim_latency: dict | None = None
    #: Percentiles of per-chunk cells/s over every retired chunk.
    chunk_rate: dict | None = None
    #: Fraction of done cells that took the vector path (None before
    #: any cell is done).
    batch_share: float | None = None
    #: Per-reason scalar-fallback counts (``executor.batch_reject.*``
    #: counters merged across workers), most frequent first; None when
    #: no worker recorded a rejection (or none ran with ``--metrics``).
    batch_rejects: dict[str, int] | None = None
    #: One-line skew hint: the slowest active lease vs the fleet median
    #: chunk time (:func:`repro.obs.analyze.straggler_hint`); None when
    #: nothing is skewed — the quiet common case.
    straggler: str | None = None


def fleet_status(
    store: ResultStore | str,
    *,
    campaign: str | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    clock: Callable[[], float] = time.time,
) -> FleetStatus:
    """Read the fleet's current state (workers, chunks, throughput, ETA)."""
    queue = WorkQueue(
        store, campaign=campaign, lease_ttl_s=lease_ttl_s, clock=clock)
    now = clock()
    counts = queue.counts()
    workers = tuple(queue.workers())
    alive = sum(1 for w in workers if now - w.last_seen <= lease_ttl_s)
    rate = queue.completion_rate()
    remaining = counts.cells_remaining
    eta = (remaining / rate) if (rate and remaining) else None
    queue.store.invalidate_caches()
    claim_latency = None
    merged = obs_metrics.merge_snapshots(
        snap for _, _, snap in queue.worker_metrics())
    claim_dump = merged.get("queue.claim_s")
    if claim_dump and claim_dump.get("type") == "histogram" \
            and claim_dump.get("count"):
        claim_latency = obs_metrics.summarize_histogram(claim_dump)
    chunk_rate = _rate_percentiles(queue.chunk_rates())
    batch_share = (counts.cells_batched / counts.cells_done
                   if counts.cells_done else None)
    return FleetStatus(
        campaign=queue.campaign,
        store_uri=queue.store.uri(),
        counts=counts,
        workers=workers,
        alive=alive,
        cells_completed=len(queue.store.completed_keys()),
        cells_errored=len(queue.store.error_keys()),
        rate_cells_per_s=rate,
        eta_s=eta,
        lease_ttl_s=lease_ttl_s,
        finished=queue.finished(),
        ever_enqueued=queue.ever_enqueued(),
        recent_chunks=tuple(queue.recent_chunks()),
        claim_latency=claim_latency,
        chunk_rate=chunk_rate,
        batch_share=batch_share,
        batch_rejects=batch_reject_counts(merged) or None,
        straggler=straggler_hint(
            queue.active_leases(), queue.chunk_seconds(), now=now),
    )


def _rate_percentiles(rates: Sequence[float]) -> dict | None:
    """count/p50/p90/p99 summary of a sorted cells/s list (None if empty)."""
    if not rates:
        return None
    return obs_metrics.summarize_histogram({
        "count": len(rates), "sum": sum(rates),
        "min": rates[0], "max": rates[-1], "sample": list(rates),
    })


def store_metrics(
    store: ResultStore | str, *, campaign: str | None = None
) -> tuple[dict[str, dict], dict]:
    """The ``campaign metrics`` data: (merged snapshot, fleet section).

    The snapshot merges every persisted worker/run snapshot for the
    campaign (counters sum, histogram reservoirs pool); the fleet
    section derives cross-worker stats straight from the queue tables —
    per-chunk cells/s percentiles and the batch share.  Requires a
    store backend with telemetry tables (SQLite).
    """
    store = open_store(store, campaign=campaign)
    snapshots_fn = getattr(store, "metrics_snapshots", None)
    if snapshots_fn is None:
        raise ConfigurationError(
            f"store backend {type(store).__name__} ({store.uri()}) does not "
            "persist metrics snapshots — use a SQLite store "
            "(--store sqlite:PATH)")
    rows = snapshots_fn()
    merged = obs_metrics.merge_snapshots(snap for _, _, snap in rows)
    fleet: dict = {}
    if rows:
        fleet["metrics.snapshots"] = len(rows)
    queue = WorkQueue(store)
    chunk_rate = _rate_percentiles(queue.chunk_rates())
    if chunk_rate is not None:
        fleet["chunk.cells_per_s"] = {
            k: chunk_rate[k] for k in ("count", "p50", "p90", "p99")}
    counts = queue.counts()
    if counts.cells_done:
        fleet["batch.share"] = counts.cells_batched / counts.cells_done
    return merged, fleet


def _age(now: float, then: float) -> str:
    delta = max(0.0, now - then)
    if delta < 120:
        return f"{delta:.1f}s ago"
    return f"{delta / 60:.1f}m ago"


def render_batch_rejects(rejects: dict[str, int] | None) -> list[str]:
    """The per-reason scalar-fallback table of ``campaign status``.

    One line per rejection reason (keys of
    :func:`~repro.campaigns.executor.batch_reject_counts`), so a user
    who expected a vectorized sweep can see *why* cells ran scalar —
    e.g. a peeking adversary or a fault plan.  Empty list when nothing
    was rejected.
    """
    if not rejects:
        return []
    total = sum(rejects.values())
    lines = [f"scalar  : {total} cell routing(s) fell back to the scalar "
             "path, by reason:"]
    width = max(len(key) for key in rejects)
    for key, count in rejects.items():
        lines.append(f"  {key:<{width}}  x{count}")
    return lines


def render_status(status: FleetStatus, *, clock: Callable[[], float] = time.time) -> str:
    """Human-readable fleet telemetry (one call of ``campaign status``)."""
    now = clock()
    c = status.counts
    lines = [
        f"== campaign {status.campaign} — fleet status ({status.store_uri})"
    ]
    orphaned = f" ({c.orphaned} orphaned)" if c.orphaned else ""
    failed = (f" / {c.failed} PARKED ({c.cells_failed} cells; re-enqueue "
              "to retry)" if c.failed else "")
    lines.append(
        f"chunks  : {c.pending} pending / {c.leased} leased{orphaned} / "
        f"{c.done} done{failed}  [{c.chunks_total} total"
        + (f", worst attempt {c.max_attempt}" if c.max_attempt > 1 else "")
        + "]")
    rate = (f"{status.rate_cells_per_s:.1f} cells/s"
            if status.rate_cells_per_s else "rate n/a")
    eta = (f"ETA {status.eta_s:.0f}s" if status.eta_s is not None
           else ("done" if status.finished else "ETA n/a"))
    errored = (f" ({status.cells_errored} errored)"
               if status.cells_errored else "")
    lines.append(
        f"cells   : {status.cells_completed} done / "
        f"{c.cells_remaining} queued{errored}   {rate}   {eta}")
    if status.chunk_rate is not None:
        r = status.chunk_rate
        lines.append(
            f"rates   : chunk cells/s p50={r['p50']:.0f} "
            f"p90={r['p90']:.0f} p99={r['p99']:.0f} "
            f"(over {r['count']} done chunks)")
    if status.claim_latency is not None:
        cl = status.claim_latency
        lines.append(
            f"latency : claim p50={cl['p50'] * 1e3:.1f}ms "
            f"p90={cl['p90'] * 1e3:.1f}ms p99={cl['p99'] * 1e3:.1f}ms "
            f"(n={cl['count']})")
    if c.batched_done:
        share = (f", {status.batch_share:.0%} of done cells"
                 if status.batch_share is not None else "")
        lines.append(
            f"batch   : {c.batched_done}/{c.done} done chunks vectorized "
            f"({c.cells_batched} cells{share})")
    lines.extend(render_batch_rejects(status.batch_rejects))
    if status.straggler is not None:
        lines.append(f"slowest : {status.straggler}")
    for chunk in status.recent_chunks:
        per_s = (f"{chunk.cells_per_s:.0f} cells/s"
                 if chunk.cells_per_s else "rate n/a")
        lines.append(
            f"  chunk {chunk.chunk_id:<6} done {_age(now, chunk.done_at):<11} "
            f"{chunk.n_cells} cells  "
            f"batched={'true ' if chunk.batched else 'false'}  {per_s}")
    gone = len(status.workers) - status.alive
    lines.append(
        f"workers : {status.alive} alive"
        + (f" / {gone} gone" if gone else "")
        + f"  (lease TTL {status.lease_ttl_s:g}s)")
    for w in status.workers:
        liveness = "alive" if now - w.last_seen <= status.lease_ttl_s else "gone "
        span = w.last_seen - w.started_at
        avg = (f"  ~{w.cells_done / span:.0f} cells/s"
               if w.cells_done and span > 0 else "")
        lines.append(
            f"  {liveness}  {w.worker_id:<28} last seen {_age(now, w.last_seen):<11} "
            f"chunks={w.chunks_done} cells={w.cells_done}{avg}")
    if not status.workers:
        lines.append("  (no worker has polled yet)")
    if not status.ever_enqueued:
        lines.append(
            "note    : no chunks have been enqueued for this campaign — "
            "the store may hold pool-mode results, or run "
            "'campaign enqueue' first")
    lines.append(f"finished: {'yes' if status.finished else 'no'}")
    return "\n".join(lines)


def watch_status(
    store: ResultStore | str,
    *,
    campaign: str | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    interval_s: float = 2.0,
    out=None,
    max_snapshots: int | None = None,
) -> FleetStatus:
    """Re-render the fleet every ``interval_s`` until the queue finishes.

    Returns the final snapshot; Ctrl-C stops the watch (not the fleet).
    """
    out = out if out is not None else sys.stdout
    snapshots = 0
    while True:
        status = fleet_status(
            store, campaign=campaign, lease_ttl_s=lease_ttl_s)
        print(render_status(status), file=out, flush=True)
        snapshots += 1
        if status.finished:
            return status
        if max_snapshots is not None and snapshots >= max_snapshots:
            return status
        print(file=out)
        time.sleep(interval_s)


# ---------------------------------------------------------------------------
# the single-host distributed path (campaign run --distributed)
# ---------------------------------------------------------------------------

def _local_worker_main(store_uri: str, campaign: str, worker_id: str,
                       lease_ttl_s: float, batch: str | None = None) -> None:
    """Entry point of one spawned local worker process."""
    run_worker(
        store_uri,
        campaign=campaign,
        worker_id=worker_id,
        lease_ttl_s=lease_ttl_s,
        poll_s=0.2,
        batch=batch,
    )


def run_distributed(
    spec: CampaignSpec,
    store: ResultStore | str,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    retry_failed: bool = False,
    debug_invariants: bool | None = None,
    progress: Callable[[int, int], None] | None = None,
    cells: Sequence[CellConfig] | None = None,
    poll_s: float = 0.25,
    batch: str | None = None,
) -> CampaignRun:
    """Enqueue a spec, drain it with N local worker processes, summarise.

    The distributed twin of :func:`~repro.campaigns.executor.run_cells`:
    same progress callback, same :class:`CampaignRun` summary (with
    ``records`` left empty — results live in the store).  The queue
    carries the real state, so Ctrl-C / crashes resume exactly like a
    multi-host fleet would: re-run with the same spec and store.
    """
    start = time.perf_counter()
    cells = list(cells) if cells is not None else spec.cell_list()
    if debug_invariants is not None:
        # Apply before enqueue keys the cells: the flag is part of the
        # content hash (when non-default), and workers execute chunks
        # exactly as enqueued.
        cells = [replace(c, debug_invariants=debug_invariants)
                 for c in cells]
    queue, report = enqueue_campaign(
        spec, store, cells=cells, chunk_size=chunk_size,
        retry_failed=retry_failed, lease_ttl_s=lease_ttl_s)
    store = queue.store
    open_counts = queue.counts()
    open_chunks = open_counts.pending + open_counts.leased
    if open_chunks == 0:
        # Nothing claimable: every cell was already recorded (or queued
        # work was fully drained).  Don't spawn workers that would sit
        # waiting for chunks that will never come.
        return CampaignRun(
            total=report.total,
            skipped=report.skipped_done + report.skipped_failed,
            executed=0, failed=0,
            elapsed_s=time.perf_counter() - start,
            workers=0, records=[],
        )
    if workers is None:
        workers = multiprocessing.cpu_count()
    # Clamp to the chunks actually claimable — including leftovers from a
    # crashed or interrupted earlier run, which a resume drains at full
    # width even though it enqueued nothing new.
    workers = max(1, min(workers, open_chunks))

    records_before, errors_before = store.result_counts()
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    procs = []
    for i in range(workers):
        proc = ctx.Process(
            target=_local_worker_main,
            args=(store.uri(), queue.campaign, f"local-{i}-{os.getpid()}",
                  lease_ttl_s, batch),
            daemon=True,
        )
        proc.start()
        procs.append(proc)

    total = open_counts.cells_remaining   # includes leftovers being resumed
    try:
        while any(p.is_alive() for p in procs):
            if progress is not None and total:
                done_now, _ = store.result_counts()
                progress(min(done_now - records_before, total), total)
            if queue.finished():
                break
            time.sleep(poll_s)
    finally:
        for proc in procs:
            proc.join(timeout=max(2 * lease_ttl_s, 10.0))
            if proc.is_alive():  # pragma: no cover - stuck worker backstop
                proc.terminate()
                proc.join()

    if progress is not None and total:
        done_now, _ = store.result_counts()
        progress(min(done_now - records_before, total), total)
    if not queue.finished():
        raise ConfigurationError(
            f"distributed run of {queue.campaign!r} stopped before the queue "
            "drained (all local workers exited); inspect 'campaign status' "
            "and re-run — completed chunks are not lost")
    final_counts = queue.counts()
    if final_counts.failed:
        # Parked chunks are terminal for finished() so a poison chunk
        # cannot hang the fleet — but a "successful" summary must not
        # hide cells that were never run.  (A re-enqueue may already
        # have re-driven them: only cells with no outcome at all count.)
        store.invalidate_caches()
        never_ran = (queue.parked_cell_keys()
                     - store.completed_keys() - store.error_keys())
        if never_ran:
            raise ConfigurationError(
                f"distributed run of {queue.campaign!r} drained, but "
                f"{len(never_ran)} cell(s) sit in chunks parked after "
                "repeatedly killing their workers and were never "
                "executed; inspect 'campaign status', then "
                "'campaign enqueue' to retry them")
    records_after, errors_after = store.result_counts()
    store.invalidate_caches()
    run_metrics = None
    if obs_metrics.enabled():
        # Each worker upserted its cumulative snapshot; the merged view
        # is the whole fleet's counters and pooled histograms.
        run_metrics = obs_metrics.merge_snapshots(
            snap for _, _, snap in queue.worker_metrics())
    return CampaignRun(
        total=report.total,
        # cells found already queued are drained (executed) by this very
        # run's workers, so only done/failed skips count as skipped
        skipped=report.skipped_done + report.skipped_failed,
        executed=records_after - records_before,
        failed=errors_after - errors_before,
        elapsed_s=time.perf_counter() - start,
        workers=workers,
        records=[],
        metrics=run_metrics,
    )
