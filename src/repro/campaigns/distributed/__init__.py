"""Distributed campaign execution: many hosts, one SQLite store.

The content-hashed cell keys make campaign work idempotent and the
WAL-mode SQLite backend takes concurrent multi-process appends — this
package adds the missing piece: a **lease-based work queue** living in
the same database, so the store itself is the coordinator and a fleet
needs no extra service:

* :mod:`~repro.campaigns.distributed.queue` —
  :class:`WorkQueue`: atomic chunk claim/heartbeat/steal/complete
  transactions (``chunks``/``leases``/``workers`` tables);
* :mod:`~repro.campaigns.distributed.worker` —
  :func:`run_worker`, the loop behind
  ``python -m repro campaign worker --store sqlite:PATH --campaign NAME``;
* :mod:`~repro.campaigns.distributed.status` — ``campaign enqueue`` /
  ``campaign status --watch`` (fleet telemetry: workers alive, chunk
  states, cells/s, ETA) and :func:`run_distributed`, the single-host
  ``campaign run --distributed`` convenience that enqueues and spawns N
  local workers.

Multi-host quickstart (see README)::

    # anywhere (once): expand the spec into claimable chunks
    python -m repro campaign enqueue --spec paper-tables --store sqlite:shared/results.db

    # on every machine that can reach the store:
    python -m repro campaign worker --store sqlite:shared/results.db --campaign paper-tables

    # watch the fleet:
    python -m repro campaign status --spec paper-tables --store sqlite:shared/results.db --watch
"""

from .queue import (
    DEFAULT_LEASE_TTL_S,
    DEFAULT_MAX_ATTEMPTS,
    Claim,
    EnqueueReport,
    LeaseInfo,
    LeaseLost,
    QueueCounts,
    WorkQueue,
    WorkerInfo,
    worker_identity,
)
from .status import (
    FleetStatus,
    enqueue_campaign,
    fleet_status,
    render_batch_rejects,
    render_status,
    run_distributed,
    store_metrics,
    watch_status,
)
from .worker import WorkerReport, run_worker

__all__ = [
    "Claim",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_MAX_ATTEMPTS",
    "EnqueueReport",
    "FleetStatus",
    "LeaseInfo",
    "LeaseLost",
    "QueueCounts",
    "WorkQueue",
    "WorkerInfo",
    "WorkerReport",
    "enqueue_campaign",
    "fleet_status",
    "render_batch_rejects",
    "render_status",
    "run_distributed",
    "run_worker",
    "store_metrics",
    "watch_status",
    "worker_identity",
]
