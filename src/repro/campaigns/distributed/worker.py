"""The distributed campaign worker: claim, run, heartbeat, complete.

``python -m repro campaign worker --store sqlite:PATH --campaign NAME``
runs this loop.  A worker needs nothing but the store URI and the
campaign tag — the chunks carry fully serialised cells — so scaling a
campaign out is literally "run the same command on more machines".

The loop per chunk:

1. :meth:`~repro.campaigns.distributed.queue.WorkQueue.claim` a chunk
   (pending first, else steal an orphaned lease);
2. start a :class:`LeaseKeeper` — a daemon thread with its **own**
   database connection that heartbeats the lease every quarter-TTL
   *while cells compute*, so a single cell slower than the TTL cannot
   get a healthy worker's chunk stolen;
3. run the chunk through the ordinary
   :func:`~repro.campaigns.executor.run_chunk` — eligible cells in one
   vectorized :class:`~repro.core.batch.BatchCore` pass, the rest
   scalar — skipping cells whose key already completed (protects
   against re-enqueues racing a finish); a lost lease (the keeper's
   heartbeat came back ``False``) discards the partial chunk — the
   thief records it;
4. :meth:`~repro.campaigns.distributed.queue.WorkQueue.complete` —
   records and chunk retirement commit atomically, or
   :class:`~repro.campaigns.distributed.queue.LeaseLost` discards.

A worker keeps polling until the campaign's queue is *finished* (no
pending or leased chunk remains), not merely until it is empty-handed:
while another worker still holds a lease, this one stays around to steal
the chunk should that worker die — the crash-safe resume needs no
coordinator process.  Ctrl-C releases the held chunk back to the pending
pool on the way out, so a graceful shutdown costs the fleet nothing (a
SIGKILL costs at most one lease TTL).
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable

from ...obs import metrics as obs_metrics
from ...obs import spans as obs_spans
from .. import executor as executor_module
from ..executor import run_chunk
from ..spec import CellConfig
from ..stores import ResultStore
from .queue import (
    DEFAULT_LEASE_TTL_S,
    DEFAULT_MAX_ATTEMPTS,
    LeaseLost,
    WorkQueue,
    worker_identity,
)


class LeaseKeeper:
    """Heartbeat one claimed chunk from a daemon thread.

    SQLite connections are not shareable across threads, so the keeper
    opens its own :class:`WorkQueue` (hence its own connection) from the
    store's URI.  :attr:`lost` is set the moment a heartbeat reports the
    lease is no longer ours; transient database errors (lock contention)
    are retried on the next beat rather than treated as loss.
    """

    def __init__(self, queue: WorkQueue, chunk_id: int, worker_id: str) -> None:
        self._queue = WorkQueue(
            queue.store.uri(), campaign=queue.campaign or None,
            lease_ttl_s=queue.lease_ttl_s, clock=queue._clock)
        self._chunk_id = chunk_id
        self._worker_id = worker_id
        self._interval = max(queue.lease_ttl_s / 4.0, 0.05)
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-keeper-{chunk_id}", daemon=True)

    def __enter__(self) -> "LeaseKeeper":
        self._thread.start()
        return self

    def _run(self) -> None:
        try:
            while not self._stop.wait(self._interval):
                try:
                    if not self._queue.heartbeat(
                            self._chunk_id, self._worker_id):
                        self.lost.set()
                        return
                except Exception:  # lock contention etc.: retry next beat
                    continue
        finally:
            # SQLite connections are thread-bound: close where we opened.
            self._queue.store.close()

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


@dataclass
class WorkerReport:
    """What one :func:`run_worker` invocation did."""

    worker_id: str
    chunks_done: int = 0
    cells_done: int = 0
    cells_failed: int = 0
    cells_skipped: int = 0
    chunks_stolen: int = 0
    leases_lost: int = 0
    cells_batched: int = 0
    elapsed_s: float = 0.0
    #: This worker's final metrics snapshot (None unless metrics enabled).
    metrics: dict[str, dict] | None = field(default=None, repr=False)

    def summary(self) -> str:
        batched = (f" batched={self.cells_batched}"
                   if self.cells_batched else "")
        return (
            f"worker {self.worker_id}: chunks={self.chunks_done} "
            f"cells={self.cells_done} failed={self.cells_failed} "
            f"skipped={self.cells_skipped}{batched} "
            f"stolen={self.chunks_stolen} "
            f"leases-lost={self.leases_lost} in {self.elapsed_s:.1f}s"
        )


def run_worker(
    store: ResultStore | str,
    *,
    campaign: str | None = None,
    worker_id: str | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    poll_s: float = 0.5,
    max_chunks: int | None = None,
    progress: Callable[[str], None] | None = None,
    clock: Callable[[], float] = time.time,
    batch: str | None = None,
) -> WorkerReport:
    """Drain one campaign's work queue until it is finished.

    ``max_chunks`` bounds how many chunks this worker will complete
    (useful in tests and for batch-scheduler time slices); ``progress``
    receives one human-readable line per claimed/completed chunk.

    Workers execute cells *exactly* as enqueued — configuration
    overrides like ``debug_invariants`` change a cell's content-hash
    key, so they are applied at enqueue time (``campaign enqueue
    --debug-invariants`` / ``run_distributed``), never per worker: a
    worker re-keying cells would record them under keys the queue's
    dedupe and the fleet's resume logic cannot see.  ``batch`` is safe
    per worker precisely because it is *not* configuration: routing
    through :class:`~repro.core.batch.BatchCore` changes neither keys
    nor records, so a mixed fleet (some hosts without NumPy) stays
    coherent.
    """
    queue = WorkQueue(
        store, campaign=campaign, lease_ttl_s=lease_ttl_s,
        max_attempts=max_attempts, clock=clock)
    worker_id = worker_id or worker_identity()
    report = WorkerReport(worker_id=worker_id)
    started = clock()

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    # Observability (no-ops unless enabled by env/CLI): the worker
    # session is one `campaign` span, each claimed chunk a child `chunk`
    # span (cells nest inside, via run_chunk); the span buffer and this
    # worker's metrics snapshot are flushed to the store after every
    # completed chunk so `status`/`campaign metrics` see a live fleet.
    rec = obs_spans.ensure_recorder(
        store=queue.store, campaign=queue.campaign, worker=worker_id)
    session_ctx = (
        rec.span("campaign", queue.campaign or "campaign",
                 worker_id=worker_id)
        if rec is not None else nullcontext()
    )

    def publish_telemetry() -> None:
        if obs_metrics.enabled():
            try:
                queue.record_worker_metrics(worker_id,
                                            obs_metrics.snapshot())
            except Exception:  # telemetry must never kill the worker
                pass
        if rec is not None:
            rec.flush()

    with session_ctx:
        waiting_announced = False
        while max_chunks is None or report.chunks_done < max_chunks:
            claim_t0 = time.perf_counter()
            claim = queue.claim(worker_id)
            claim_s = time.perf_counter() - claim_t0
            if claim is None:
                if queue.finished():
                    break
                if not waiting_announced and not queue.ever_enqueued():
                    # Fleet bring-up: workers may start before the enqueue
                    # commits.  finished() stays False for a never-enqueued
                    # campaign, so we wait here instead of exiting 0 and
                    # silently stranding the campaign.
                    say(f"no chunks enqueued yet for campaign "
                        f"{queue.campaign!r}; waiting")
                    waiting_announced = True
                time.sleep(poll_s)
                continue
            if claim.stolen_from is not None:
                report.chunks_stolen += 1
                say(f"chunk {claim.chunk_id}: reclaimed from "
                    f"{claim.stolen_from} (attempt {claim.attempt})")
            else:
                say(f"chunk {claim.chunk_id}: claimed "
                    f"({len(claim.cells)} cells)")
            # A re-enqueue may race a finishing worker; never re-record a
            # completed cell.  invalidate_caches() makes this one indexed
            # query against the current truth, not a stale snapshot.
            queue.store.invalidate_caches()
            done_keys = queue.store.completed_keys()
            records: list[dict[str, Any]] = []
            n_batched = 0
            skipped = 0
            # The worker — not run_chunk — owns this chunk's span, so the
            # span covers claim → execute → commit and carries the phase
            # timings `campaign trace --critical-path` attributes
            # wall-clock to.  Cell spans still nest under it (recorder
            # stack), so the hierarchy check sees the same tree.
            span_attrs = {"chunk_id": claim.chunk_id,
                          "attempt": claim.attempt}
            if claim.stolen_from is not None:
                span_attrs["stolen_from"] = claim.stolen_from
            chunk_ctx = (
                rec.span("chunk", f"chunk[{len(claim.cells)}]", **span_attrs)
                if rec is not None else nullcontext()
            )
            try:
                with chunk_ctx as chunk_span:
                    if chunk_span is not None:
                        chunk_span.attrs["claim_s"] = round(claim_s, 6)
                        if claim.created_at is not None:
                            chunk_span.attrs["queue_wait_s"] = round(
                                max(0.0, time.time() - claim.created_at), 6)
                    chunk_started = time.perf_counter()
                    with LeaseKeeper(queue, claim.chunk_id,
                                     worker_id) as keeper:
                        todo: list[CellConfig] = []
                        for cell_dict in claim.cells:
                            cell = CellConfig.from_dict(cell_dict)
                            if cell.key() in done_keys:
                                skipped += 1
                            else:
                                todo.append(cell)
                        records, n_batched = run_chunk(
                            todo, batch=batch, abort=keeper.lost.is_set,
                            emit_span=False)
                    chunk_elapsed = time.perf_counter() - chunk_started
                    if keeper.lost.is_set():
                        report.leases_lost += 1
                        if chunk_span is not None:
                            chunk_span.attrs["lease_lost"] = True
                        say(f"chunk {claim.chunk_id}: lease lost mid-chunk; "
                            "discarding")
                        continue
                    cells_per_s = (len(records) / chunk_elapsed
                                   if records and chunk_elapsed > 0 else None)
                    commit_t0 = time.perf_counter()
                    try:
                        queue.complete(
                            claim.chunk_id, worker_id, records,
                            batched=n_batched > 0, cells_per_s=cells_per_s)
                    except LeaseLost:
                        report.leases_lost += 1
                        if chunk_span is not None:
                            chunk_span.attrs["lease_lost"] = True
                        say(f"chunk {claim.chunk_id}: lease lost at "
                            "completion; discarding")
                        continue
                    if chunk_span is not None:
                        chunk_span.attrs["commit_s"] = round(
                            time.perf_counter() - commit_t0, 6)
                        chunk_span.attrs["cells"] = len(records)
                        chunk_span.attrs["batched"] = n_batched
            except (KeyboardInterrupt, SystemExit):
                # Graceful shutdown: hand the chunk straight back so the
                # fleet does not wait a lease TTL for it.  Covers the whole
                # claim-to-complete span; if complete() already committed,
                # release() finds no lease and is a harmless no-op.
                queue.release(claim.chunk_id, worker_id)
                say(f"chunk {claim.chunk_id}: interrupted; released to pending")
                raise
            report.chunks_done += 1
            report.cells_done += len(records)
            report.cells_failed += sum(1 for r in records if "error" in r)
            report.cells_skipped += skipped
            report.cells_batched += n_batched
            publish_telemetry()
            rate = (f", {cells_per_s:.0f} cells/s" if cells_per_s else "")
            say(f"chunk {claim.chunk_id}: done ({len(records)} cells"
                + (f", {n_batched} batched" if n_batched else "") + rate + ")")

    report.elapsed_s = clock() - started
    if obs_metrics.enabled():
        report.metrics = obs_metrics.snapshot()
    publish_telemetry()
    return report
