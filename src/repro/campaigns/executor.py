"""Batch execution of campaign cells: serial, or multiprocessing with chunked work units.

The unit shipped to a worker is a *chunk* of cell dicts, not a single
cell: chunking amortises pickling/IPC over many simulations, and pool
processes are long-lived (no ``maxtasksperchild``), so each worker pays
the interpreter/import cost once and keeps its warm registry state —
resolved factory tables, enum caches — for every cell it runs.

Completed chunks are appended to the :class:`~repro.campaigns.stores.ResultStore`
as they arrive, so an interrupted campaign loses at most the chunks in
flight; :func:`run_cells` consults ``store.completed_keys()`` first and
never re-runs a cell whose key is already present.

The chunking helpers (:func:`default_chunk_size`, :func:`chunk_cells`)
are shared with :mod:`repro.campaigns.distributed`, where a chunk is the
unit of lease-based claiming across *hosts* rather than the unit of IPC
across pool processes; ``run_campaign(distributed=True)`` switches the
whole execution onto that queue.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from ..core.batch import (
    batch_eligible,
    batch_ineligible_key,
    batch_ineligible_reason,
    batch_width,
    numpy_available,
    run_batch_cells,
)
from ..core.errors import ConfigurationError
from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..obs.logs import get_logger
from .aggregate import metrics_from_result
from .registry import build_cell_engine, validate_cell
from .spec import CampaignSpec, CellConfig
from .stores import ResultStore, open_store

_log = get_logger(__name__)

#: Valid values of the execution-routing switch (CLI ``--batch``).
BATCH_MODES = ("auto", "on", "off")

#: Metric-name prefix of the per-reason batch rejection counters.
BATCH_REJECT_PREFIX = "executor.batch_reject."


def batch_reject_counts(snapshot: dict[str, dict] | None) -> dict[str, int]:
    """Per-reason scalar-fallback counts from a metrics snapshot.

    Collapses the ``executor.batch_reject.<key>`` counters (written by
    :func:`run_chunk` whenever a cell that *could* have batched is routed
    scalar) into ``{reason_key: count}``, ordered most-frequent first so
    a rendered table leads with the dominant reason.  Empty dict when the
    snapshot is ``None`` or holds no rejections.
    """
    rejects: dict[str, int] = {}
    for name, dump in (snapshot or {}).items():
        if not name.startswith(BATCH_REJECT_PREFIX):
            continue
        if dump.get("type") != "counter" or not dump.get("value"):
            continue
        rejects[name[len(BATCH_REJECT_PREFIX):]] = int(dump["value"])
    return dict(sorted(rejects.items(), key=lambda kv: (-kv[1], kv[0])))


def execute_cell(cell: CellConfig) -> dict[str, Any]:
    """Run one cell to completion and package the outcome as a store record.

    Every topology takes the same path: the registry builds a facade over
    the unified :class:`~repro.core.sim.SimulationCore`, which returns a
    full :class:`~repro.core.results.RunResult` — so graph cells report
    the identical metric schema (termination modes included) ring cells
    always had.

    When span tracing is active the cell gets a ``cell`` span
    (route=scalar) and its record carries the ``span_id`` so a store row
    can be traced back to the worker/host/chunk that produced it; with
    tracing off, records are byte-identical to the pre-obs schema.
    """
    rec = obs_spans.recorder()
    if rec is None:
        return _execute_cell(cell)
    with rec.span("cell", cell.algorithm, key=cell.key(),
                  route="scalar") as span:
        record = _execute_cell(cell)
        if "error" in record:
            span.status = "error"
            span.attrs["error"] = record["error"]
        record["span_id"] = span.span_id
    return record


def _execute_cell(cell: CellConfig) -> dict[str, Any]:
    start = time.perf_counter()
    timer = obs_metrics.phase_timer()
    try:
        engine = build_cell_engine(cell)
        if timer is not None:
            engine.set_instrument(timer)
        result = engine.run(
            cell.max_rounds, stop_on_exploration=cell.stop_on_exploration
        )
        if timer is not None:
            timer.flush()
        metrics = metrics_from_result(result)
        record = {
            "key": cell.key(),
            "config": cell.to_dict(),
            "metrics": metrics,
            "elapsed_s": round(time.perf_counter() - start, 6),
        }
    except Exception as exc:  # record the failure as an attempted outcome
        # (resumes skip it unless retry_failed re-drives it explicitly)
        record = {
            "key": cell.key(),
            "config": cell.to_dict(),
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": round(time.perf_counter() - start, 6),
        }
    if obs_metrics.enabled():
        reg = obs_metrics.registry()
        reg.counter("executor.cells").inc()
        reg.counter("executor.cells_scalar").inc()
        if "error" in record:
            reg.counter("executor.cells_failed").inc()
        reg.histogram("executor.cell_s").observe(record["elapsed_s"])
    return record


def _effective_batch(cell: CellConfig, override: str | None) -> str:
    """The routing mode one cell runs under: CLI override beats the cell."""
    if override is not None:
        return override
    return getattr(cell, "batch", "auto")


def _wants_batch(cell: CellConfig, override: str | None) -> bool:
    """True when routing *and* eligibility say this cell may batch."""
    return (_effective_batch(cell, override) != "off"
            and numpy_available()
            and batch_eligible(cell))


def run_chunk(
    cells: Sequence[CellConfig],
    *,
    batch: str | None = None,
    abort: Callable[[], bool] | None = None,
    span_attrs: dict[str, Any] | None = None,
    emit_span: bool = True,
) -> tuple[list[dict[str, Any]], int]:
    """Run one chunk of cells, batching the eligible ones in lockstep.

    The single routing point shared by the serial path, the pool workers
    and the distributed worker: eligible cells (shared predicate
    :func:`~repro.core.batch.batch_eligible`, honouring the ``batch``
    override / per-cell ``batch`` field) run through
    :class:`~repro.core.batch.BatchCore`; the rest fall back to
    :func:`execute_cell` one by one.  Records come back in input order
    with the exact schema the scalar path appends, so stores cannot tell
    the paths apart.  Returns ``(records, batched)`` where ``batched``
    counts cells that actually took the vector path.

    ``abort`` (polled between scalar cells) lets a lease-losing worker
    stop early; already-produced records are returned for the caller to
    discard or keep.

    Observability (all no-ops unless enabled): the chunk gets a
    ``chunk`` span (``span_attrs`` lets the caller attach chunk ids or a
    cross-process ``parent_id``); routing decisions feed the
    ``executor.*`` counters — per-reason batch rejections
    (``executor.batch_reject.<key>``) and vector-path degradations
    (``executor.degrade_to_scalar``).  ``emit_span=False`` skips the
    chunk span: the distributed worker owns it instead, so the span can
    cover claim and commit around the execution this function times —
    cell spans still nest correctly under the caller's open span.
    """
    if batch is not None and batch not in BATCH_MODES:
        raise ConfigurationError(
            f"batch must be one of {BATCH_MODES}, got {batch!r}")
    rec = obs_spans.recorder()
    reg = obs_metrics.registry() if obs_metrics.enabled() else None
    chunk_ctx = (
        rec.span("chunk", f"chunk[{len(cells)}]", **(span_attrs or {}))
        if rec is not None and emit_span else nullcontext()
    )
    with chunk_ctx as chunk_span:
        records: list[dict[str, Any] | None] = [None] * len(cells)
        eligible = [(i, c) for i, c in enumerate(cells)
                    if _wants_batch(c, batch)]
        if reg is not None:
            reg.counter("executor.chunks").inc()
            reg.histogram("executor.chunk_cells").observe(len(cells))
            for cell in cells:
                if _effective_batch(cell, batch) == "off":
                    continue
                if not numpy_available():
                    reg.counter("executor.batch_reject.no_numpy").inc()
                    continue
                reason_key = batch_ineligible_key(cell)
                if reason_key is not None:
                    reg.counter(f"executor.batch_reject.{reason_key}").inc()
        batched = 0
        if eligible:
            start = time.perf_counter()
            try:
                results = run_batch_cells([c for _, c in eligible])
            except Exception:
                # Defensive only: the batch path is differentially proven,
                # but a routing bug must degrade to the scalar path, never
                # lose cells.  (The bench guard catches a silent
                # always-fallback.)
                results = None
                _log.warning(
                    "batch path failed for %d cells; degrading to scalar",
                    len(eligible), exc_info=True)
                if reg is not None:
                    reg.counter("executor.degrade_to_scalar").inc()
            if results is not None:
                per_cell = round(
                    (time.perf_counter() - start) / len(eligible), 6)
                for (i, cell), result in zip(eligible, results):
                    records[i] = {
                        "key": cell.key(),
                        "config": cell.to_dict(),
                        "metrics": metrics_from_result(result),
                        "elapsed_s": per_cell,
                    }
                    if rec is not None:
                        records[i]["span_id"] = rec.emit(
                            "cell", cell.algorithm, elapsed_s=per_cell,
                            attrs={"key": cell.key(), "route": "batch"})
                batched = len(eligible)
                if reg is not None:
                    reg.counter("executor.cells").inc(batched)
                    reg.counter("executor.cells_batched").inc(batched)
        for i, cell in enumerate(cells):
            if records[i] is not None:
                continue
            if abort is not None and abort():
                if chunk_span is not None:
                    chunk_span.attrs["aborted"] = True
                break
            records[i] = execute_cell(cell)
        if chunk_span is not None:
            chunk_span.attrs["cells"] = len(cells)
            chunk_span.attrs["batched"] = batched
    return [r for r in records if r is not None], batched


def _run_chunk(
    payload: Sequence[dict[str, Any]], batch: str | None = None,
    parent_span_id: str | None = None,
) -> tuple[list[dict[str, Any]], int, dict | None]:
    """Pool-worker entry point: run a chunk of serialised cells.

    Returns ``(records, batched, metrics_snapshot)``; the snapshot is a
    per-chunk delta (the child registry is drained after each chunk) so
    the parent can merge pool snapshots without double counting.
    """
    obs_spans.ensure_recorder()  # pool children: env-driven JSONL sink
    span_attrs = {"parent_id": parent_span_id} if parent_span_id else None
    records, batched = run_chunk(
        [CellConfig.from_dict(d) for d in payload], batch=batch,
        span_attrs=span_attrs)
    snap: dict | None = None
    if obs_metrics.enabled():
        snap = obs_metrics.snapshot()
        obs_metrics.reset()
    return records, batched, snap


@dataclass
class CampaignRun:
    """What one :func:`run_cells` invocation did."""

    total: int
    skipped: int
    executed: int
    failed: int
    elapsed_s: float
    workers: int
    #: Cells that took the vectorized BatchCore path (0 on scalar runs).
    batched: int = 0
    records: list[dict[str, Any]] = field(default_factory=list, repr=False)
    #: Merged metrics snapshot (None unless metrics were enabled) — the
    #: run's own registry plus every pool/fleet worker's snapshot.
    metrics: dict[str, dict] | None = field(default=None, repr=False)

    def summary(self) -> str:
        batched = f" batched={self.batched}" if self.batched else ""
        rejects = batch_reject_counts(self.metrics)
        scalar = ""
        if rejects:
            pairs = ",".join(f"{k}={v}" for k, v in rejects.items())
            scalar = f" scalar[{pairs}]"
        return (
            f"cells={self.total} skipped={self.skipped} executed={self.executed} "
            f"failed={self.failed}{batched}{scalar} workers={self.workers} "
            f"in {self.elapsed_s:.1f}s"
        )


def default_chunk_size(
    pending: int, workers: int | None = None, *, batch: bool = False
) -> int:
    """Cells per work unit: ~4 chunks per worker balances scheduling slack
    against IPC, capped at 25 so a straggler chunk never dominates.

    With ``batch=True`` (every pending cell qualifies for the vector
    path) the cap rises to :func:`~repro.core.batch.batch_width` (the
    ``REPRO_BATCH_WIDTH``-overridable vector width) and the target
    becomes one chunk per worker: a batched chunk is a single lockstep
    NumPy run, so wide chunks amortise the per-chunk setup and fill the
    vector width instead of slicing it into 25-cell slivers.

    Shared with the distributed queue (where the eventual fleet size is
    unknown at enqueue time and this host's CPU count stands in — small
    chunks are also what makes lease stealing fine-grained).
    """
    if workers is None:
        workers = multiprocessing.cpu_count()
    if batch:
        return max(1, min(batch_width(), -(-pending // workers)))
    return max(1, min(25, -(-pending // (workers * 4))))


def chunk_cells(items: Sequence[Any], size: int) -> list[list[Any]]:
    """Split a work list into chunks of at most ``size`` items."""
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def _serial_groups(
    cells: Sequence[CellConfig], batch: str | None
) -> Iterable[list[CellConfig]]:
    """Group a serial run's cells for :func:`run_chunk`.

    Runs of batch-bound cells coalesce (up to the vector width) so the
    serial path vectorizes too; scalar cells stay singletons, preserving
    the per-cell progress granularity serial runs always had.
    """
    group: list[CellConfig] = []
    width = batch_width()
    for cell in cells:
        if _wants_batch(cell, batch):
            group.append(cell)
            if len(group) >= width:
                yield group
                group = []
        else:
            if group:
                yield group
                group = []
            yield [cell]
    if group:
        yield group


def run_cells(
    cells: Iterable[CellConfig],
    store: ResultStore,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    debug_invariants: bool | None = None,
    retry_failed: bool = False,
    batch: str | None = None,
) -> CampaignRun:
    """Execute every cell not already attempted; return what happened.

    ``batch`` overrides every cell's own ``batch`` field for this run:
    ``"auto"`` routes eligible cells through the vectorized
    :class:`~repro.core.batch.BatchCore` (scalar fallback otherwise),
    ``"off"`` forces the scalar path, ``"on"`` demands the vector path
    and refuses up front if NumPy is missing or any cell is ineligible.
    Routing never changes store keys or record contents.

    ``workers=None`` uses every CPU; ``workers<=1`` runs serially in-process
    (same records, useful under debuggers and in tests).  Results stream
    into ``store`` chunk by chunk, so interrupting and re-invoking with the
    same cells resumes where the run stopped.

    Cells whose only stored outcome is an error record are skipped unless
    ``retry_failed``: re-driving failures is an explicit decision (a fleet
    must not re-execute a deterministically crashing cell forever), made
    per invocation via ``campaign resume --retry-failed``.

    ``debug_invariants`` (``None`` = leave each cell's own flag alone)
    force-overrides the per-round engine audit for every cell of this run;
    campaigns default the audit off, so passing ``True`` is the "paranoid
    sweep" switch (note it changes non-default cells' store keys).
    """
    cells = list(cells)
    if debug_invariants is not None:
        cells = [replace(c, debug_invariants=debug_invariants) for c in cells]
    for cell in cells:
        validate_cell(cell)
    if batch is not None and batch not in BATCH_MODES:
        raise ConfigurationError(
            f"batch must be one of {BATCH_MODES}, got {batch!r}")
    if batch == "on":
        if not numpy_available():
            raise ConfigurationError(
                "--batch on requires NumPy, which is not importable here; "
                "use --batch auto for a scalar fallback")
        ineligible = [(c, batch_ineligible_reason(c)) for c in cells]
        ineligible = [(c, r) for c, r in ineligible if r is not None]
        if ineligible:
            cell, reason = ineligible[0]
            raise ConfigurationError(
                f"--batch on: {len(ineligible)} cell(s) are not "
                f"batch-eligible (first: {reason}); use --batch auto to "
                "run them through the scalar core")
    start = time.perf_counter()
    skip = set(store.completed_keys())
    if not retry_failed:
        skip |= store.error_keys()
    pending = [c for c in cells if c.key() not in skip]
    skipped = len(cells) - len(pending)

    if pending and store.supports_leases:
        # Writing past the lease barrier while a fleet drains the same
        # campaign could record a cell twice (a worker's chunk may hold
        # a pending cell this run would also execute).  Refuse loudly.
        from .distributed.queue import has_live_chunks  # lazy: no cycle

        if has_live_chunks(store):
            raise ConfigurationError(
                f"campaign {store.campaign or '?'!r} has pending or leased "
                "chunks in its distributed work queue; run "
                "'campaign worker' / '--distributed' to join the fleet "
                "(or let it drain) instead of a pool-mode run that could "
                "record cells twice")

    if workers is None:
        workers = multiprocessing.cpu_count()
    workers = max(1, min(workers, len(pending) or 1))

    records: list[dict[str, Any]] = []
    completed = 0
    batched = 0
    pool_snaps: list[dict] = []

    def consume(chunk_records: list[dict[str, Any]]) -> None:
        nonlocal completed
        store.append_many(chunk_records)
        records.extend(chunk_records)
        completed += len(chunk_records)
        if progress is not None:
            progress(completed, len(pending))

    rec = obs_spans.ensure_recorder(store=store,
                                    campaign=store.campaign or "")
    campaign_ctx = (
        rec.span("campaign", store.campaign or "campaign",
                 cells=len(pending), mode="pool")
        if rec is not None else nullcontext()
    )
    all_batchable = bool(pending) and all(
        _wants_batch(c, batch) for c in pending)
    with campaign_ctx as campaign_span:
        if workers <= 1 or len(pending) <= 1:
            workers = 1
            for group in _serial_groups(pending, batch):
                chunk_records, n_batched = run_chunk(group, batch=batch)
                batched += n_batched
                consume(chunk_records)
        else:
            if chunk_size is None:
                chunk_size = default_chunk_size(
                    len(pending), workers, batch=all_batchable)
            chunks = chunk_cells([c.to_dict() for c in pending], chunk_size)
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            runner = functools.partial(
                _run_chunk, batch=batch,
                parent_span_id=(campaign_span.span_id
                                if campaign_span is not None else None))
            with ctx.Pool(processes=workers) as pool:
                for chunk_records, n_batched, snap in pool.imap_unordered(
                        runner, chunks):
                    batched += n_batched
                    if snap:
                        pool_snaps.append(snap)
                    consume(chunk_records)
    if rec is not None:
        rec.flush()

    run_metrics: dict[str, dict] | None = None
    if obs_metrics.enabled():
        run_metrics = obs_metrics.merge_snapshots(
            [obs_metrics.snapshot(), *pool_snaps])
        record_fn = getattr(store, "record_metrics_snapshot", None)
        if record_fn is not None:
            record_fn(f"run-{os.getpid()}", run_metrics)

    failed = sum(1 for r in records if "error" in r)
    return CampaignRun(
        total=len(cells),
        skipped=skipped,
        executed=len(records),
        failed=failed,
        elapsed_s=time.perf_counter() - start,
        workers=workers,
        batched=batched,
        records=records,
        metrics=run_metrics,
    )


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | str,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    debug_invariants: bool | None = None,
    retry_failed: bool = False,
    distributed: bool = False,
    lease_ttl_s: float | None = None,
    batch: str | None = None,
) -> CampaignRun:
    """Expand a spec and execute it against a store (URI, path or instance).

    Strings go through :func:`~repro.campaigns.stores.open_store`, so
    ``"sqlite:results/t2.db"`` selects the SQLite backend and a plain
    path keeps the JSONL default.

    ``distributed=True`` routes through the lease-based work queue
    (:mod:`repro.campaigns.distributed`): the spec's pending cells are
    enqueued as claimable chunks in the (SQLite) store and ``workers``
    local worker processes drain them — the same queue any number of
    extra hosts can join mid-run with ``python -m repro campaign worker``.
    """
    if distributed:
        from .distributed.queue import DEFAULT_LEASE_TTL_S
        from .distributed.status import run_distributed

        return run_distributed(
            spec, store,
            workers=workers, chunk_size=chunk_size,
            lease_ttl_s=(lease_ttl_s if lease_ttl_s is not None
                         else DEFAULT_LEASE_TTL_S),
            retry_failed=retry_failed,
            debug_invariants=debug_invariants,
            progress=progress,
            batch=batch,
        )
    store = open_store(store, campaign=spec.name)
    return run_cells(
        spec.cells(), store,
        workers=workers, chunk_size=chunk_size, progress=progress,
        debug_invariants=debug_invariants, retry_failed=retry_failed,
        batch=batch,
    )
