"""Batch execution of campaign cells: serial, or multiprocessing with chunked work units.

The unit shipped to a worker is a *chunk* of cell dicts, not a single
cell: chunking amortises pickling/IPC over many simulations, and pool
processes are long-lived (no ``maxtasksperchild``), so each worker pays
the interpreter/import cost once and keeps its warm registry state —
resolved factory tables, enum caches — for every cell it runs.

Completed chunks are appended to the :class:`~repro.campaigns.stores.ResultStore`
as they arrive, so an interrupted campaign loses at most the chunks in
flight; :func:`run_cells` consults ``store.completed_keys()`` first and
never re-runs a cell whose key is already present.

The chunking helpers (:func:`default_chunk_size`, :func:`chunk_cells`)
are shared with :mod:`repro.campaigns.distributed`, where a chunk is the
unit of lease-based claiming across *hosts* rather than the unit of IPC
across pool processes; ``run_campaign(distributed=True)`` switches the
whole execution onto that queue.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from ..core.errors import ConfigurationError
from .aggregate import metrics_from_result
from .registry import build_cell_engine, validate_cell
from .spec import CampaignSpec, CellConfig
from .stores import ResultStore, open_store


def execute_cell(cell: CellConfig) -> dict[str, Any]:
    """Run one cell to completion and package the outcome as a store record.

    Every topology takes the same path: the registry builds a facade over
    the unified :class:`~repro.core.sim.SimulationCore`, which returns a
    full :class:`~repro.core.results.RunResult` — so graph cells report
    the identical metric schema (termination modes included) ring cells
    always had.
    """
    start = time.perf_counter()
    try:
        engine = build_cell_engine(cell)
        result = engine.run(
            cell.max_rounds, stop_on_exploration=cell.stop_on_exploration
        )
        metrics = metrics_from_result(result)
        return {
            "key": cell.key(),
            "config": cell.to_dict(),
            "metrics": metrics,
            "elapsed_s": round(time.perf_counter() - start, 6),
        }
    except Exception as exc:  # record the failure as an attempted outcome
        # (resumes skip it unless retry_failed re-drives it explicitly)
        return {
            "key": cell.key(),
            "config": cell.to_dict(),
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": round(time.perf_counter() - start, 6),
        }


def _run_chunk(payload: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    """Worker entry point: run a chunk of serialised cells."""
    return [execute_cell(CellConfig.from_dict(d)) for d in payload]


@dataclass
class CampaignRun:
    """What one :func:`run_cells` invocation did."""

    total: int
    skipped: int
    executed: int
    failed: int
    elapsed_s: float
    workers: int
    records: list[dict[str, Any]] = field(default_factory=list, repr=False)

    def summary(self) -> str:
        return (
            f"cells={self.total} skipped={self.skipped} executed={self.executed} "
            f"failed={self.failed} workers={self.workers} in {self.elapsed_s:.1f}s"
        )


def default_chunk_size(pending: int, workers: int | None = None) -> int:
    """Cells per work unit: ~4 chunks per worker balances scheduling slack
    against IPC, capped at 25 so a straggler chunk never dominates.

    Shared with the distributed queue (where the eventual fleet size is
    unknown at enqueue time and this host's CPU count stands in — small
    chunks are also what makes lease stealing fine-grained).
    """
    if workers is None:
        workers = multiprocessing.cpu_count()
    return max(1, min(25, -(-pending // (workers * 4))))


def chunk_cells(items: Sequence[Any], size: int) -> list[list[Any]]:
    """Split a work list into chunks of at most ``size`` items."""
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def run_cells(
    cells: Iterable[CellConfig],
    store: ResultStore,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    debug_invariants: bool | None = None,
    retry_failed: bool = False,
) -> CampaignRun:
    """Execute every cell not already attempted; return what happened.

    ``workers=None`` uses every CPU; ``workers<=1`` runs serially in-process
    (same records, useful under debuggers and in tests).  Results stream
    into ``store`` chunk by chunk, so interrupting and re-invoking with the
    same cells resumes where the run stopped.

    Cells whose only stored outcome is an error record are skipped unless
    ``retry_failed``: re-driving failures is an explicit decision (a fleet
    must not re-execute a deterministically crashing cell forever), made
    per invocation via ``campaign resume --retry-failed``.

    ``debug_invariants`` (``None`` = leave each cell's own flag alone)
    force-overrides the per-round engine audit for every cell of this run;
    campaigns default the audit off, so passing ``True`` is the "paranoid
    sweep" switch (note it changes non-default cells' store keys).
    """
    cells = list(cells)
    if debug_invariants is not None:
        cells = [replace(c, debug_invariants=debug_invariants) for c in cells]
    for cell in cells:
        validate_cell(cell)
    start = time.perf_counter()
    skip = set(store.completed_keys())
    if not retry_failed:
        skip |= store.error_keys()
    pending = [c for c in cells if c.key() not in skip]
    skipped = len(cells) - len(pending)

    if pending and store.supports_leases:
        # Writing past the lease barrier while a fleet drains the same
        # campaign could record a cell twice (a worker's chunk may hold
        # a pending cell this run would also execute).  Refuse loudly.
        from .distributed.queue import has_live_chunks  # lazy: no cycle

        if has_live_chunks(store):
            raise ConfigurationError(
                f"campaign {store.campaign or '?'!r} has pending or leased "
                "chunks in its distributed work queue; run "
                "'campaign worker' / '--distributed' to join the fleet "
                "(or let it drain) instead of a pool-mode run that could "
                "record cells twice")

    if workers is None:
        workers = multiprocessing.cpu_count()
    workers = max(1, min(workers, len(pending) or 1))

    records: list[dict[str, Any]] = []
    completed = 0

    def consume(chunk_records: list[dict[str, Any]]) -> None:
        nonlocal completed
        store.append_many(chunk_records)
        records.extend(chunk_records)
        completed += len(chunk_records)
        if progress is not None:
            progress(completed, len(pending))

    if workers <= 1 or len(pending) <= 1:
        workers = 1
        for cell in pending:
            consume([execute_cell(cell)])
    else:
        if chunk_size is None:
            chunk_size = default_chunk_size(len(pending), workers)
        chunks = chunk_cells([c.to_dict() for c in pending], chunk_size)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        with ctx.Pool(processes=workers) as pool:
            for chunk_records in pool.imap_unordered(_run_chunk, chunks):
                consume(chunk_records)

    failed = sum(1 for r in records if "error" in r)
    return CampaignRun(
        total=len(cells),
        skipped=skipped,
        executed=len(records),
        failed=failed,
        elapsed_s=time.perf_counter() - start,
        workers=workers,
        records=records,
    )


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | str,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    debug_invariants: bool | None = None,
    retry_failed: bool = False,
    distributed: bool = False,
    lease_ttl_s: float | None = None,
) -> CampaignRun:
    """Expand a spec and execute it against a store (URI, path or instance).

    Strings go through :func:`~repro.campaigns.stores.open_store`, so
    ``"sqlite:results/t2.db"`` selects the SQLite backend and a plain
    path keeps the JSONL default.

    ``distributed=True`` routes through the lease-based work queue
    (:mod:`repro.campaigns.distributed`): the spec's pending cells are
    enqueued as claimable chunks in the (SQLite) store and ``workers``
    local worker processes drain them — the same queue any number of
    extra hosts can join mid-run with ``python -m repro campaign worker``.
    """
    if distributed:
        from .distributed.queue import DEFAULT_LEASE_TTL_S
        from .distributed.status import run_distributed

        return run_distributed(
            spec, store,
            workers=workers, chunk_size=chunk_size,
            lease_ttl_s=(lease_ttl_s if lease_ttl_s is not None
                         else DEFAULT_LEASE_TTL_S),
            retry_failed=retry_failed,
            debug_invariants=debug_invariants,
            progress=progress,
        )
    store = open_store(store, campaign=spec.name)
    return run_cells(
        spec.cells(), store,
        workers=workers, chunk_size=chunk_size, progress=progress,
        debug_invariants=debug_invariants, retry_failed=retry_failed,
    )
