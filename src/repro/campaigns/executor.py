"""Batch execution of campaign cells: serial, or multiprocessing with chunked work units.

The unit shipped to a worker is a *chunk* of cell dicts, not a single
cell: chunking amortises pickling/IPC over many simulations, and pool
processes are long-lived (no ``maxtasksperchild``), so each worker pays
the interpreter/import cost once and keeps its warm registry state —
resolved factory tables, enum caches — for every cell it runs.

Completed chunks are appended to the :class:`~repro.campaigns.stores.ResultStore`
as they arrive, so an interrupted campaign loses at most the chunks in
flight; :func:`run_cells` consults ``store.completed_keys()`` first and
never re-runs a cell whose key is already present.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from .aggregate import metrics_from_result
from .registry import build_cell_engine, validate_cell
from .spec import CampaignSpec, CellConfig
from .stores import ResultStore, open_store


def execute_cell(cell: CellConfig) -> dict[str, Any]:
    """Run one cell to completion and package the outcome as a store record.

    Every topology takes the same path: the registry builds a facade over
    the unified :class:`~repro.core.sim.SimulationCore`, which returns a
    full :class:`~repro.core.results.RunResult` — so graph cells report
    the identical metric schema (termination modes included) ring cells
    always had.
    """
    start = time.perf_counter()
    try:
        engine = build_cell_engine(cell)
        result = engine.run(
            cell.max_rounds, stop_on_exploration=cell.stop_on_exploration
        )
        metrics = metrics_from_result(result)
        return {
            "key": cell.key(),
            "config": cell.to_dict(),
            "metrics": metrics,
            "elapsed_s": round(time.perf_counter() - start, 6),
        }
    except Exception as exc:  # record the failure; a resume retries it
        return {
            "key": cell.key(),
            "config": cell.to_dict(),
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": round(time.perf_counter() - start, 6),
        }


def _run_chunk(payload: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    """Worker entry point: run a chunk of serialised cells."""
    return [execute_cell(CellConfig.from_dict(d)) for d in payload]


@dataclass
class CampaignRun:
    """What one :func:`run_cells` invocation did."""

    total: int
    skipped: int
    executed: int
    failed: int
    elapsed_s: float
    workers: int
    records: list[dict[str, Any]] = field(default_factory=list, repr=False)

    def summary(self) -> str:
        return (
            f"cells={self.total} skipped={self.skipped} executed={self.executed} "
            f"failed={self.failed} workers={self.workers} in {self.elapsed_s:.1f}s"
        )


def _chunked(items: Sequence[Any], size: int) -> list[list[Any]]:
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def run_cells(
    cells: Iterable[CellConfig],
    store: ResultStore,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    debug_invariants: bool | None = None,
) -> CampaignRun:
    """Execute every cell not already in the store; return what happened.

    ``workers=None`` uses every CPU; ``workers<=1`` runs serially in-process
    (same records, useful under debuggers and in tests).  Results stream
    into ``store`` chunk by chunk, so interrupting and re-invoking with the
    same cells resumes where the run stopped.

    ``debug_invariants`` (``None`` = leave each cell's own flag alone)
    force-overrides the per-round engine audit for every cell of this run;
    campaigns default the audit off, so passing ``True`` is the "paranoid
    sweep" switch (note it changes non-default cells' store keys).
    """
    cells = list(cells)
    if debug_invariants is not None:
        cells = [replace(c, debug_invariants=debug_invariants) for c in cells]
    for cell in cells:
        validate_cell(cell)
    start = time.perf_counter()
    done = store.completed_keys()
    pending = [c for c in cells if c.key() not in done]
    skipped = len(cells) - len(pending)

    if workers is None:
        workers = multiprocessing.cpu_count()
    workers = max(1, min(workers, len(pending) or 1))

    records: list[dict[str, Any]] = []
    completed = 0

    def consume(chunk_records: list[dict[str, Any]]) -> None:
        nonlocal completed
        store.append_many(chunk_records)
        records.extend(chunk_records)
        completed += len(chunk_records)
        if progress is not None:
            progress(completed, len(pending))

    if workers <= 1 or len(pending) <= 1:
        workers = 1
        for cell in pending:
            consume([execute_cell(cell)])
    else:
        if chunk_size is None:
            # ~4 chunks per worker balances scheduling slack against IPC.
            chunk_size = max(1, min(25, -(-len(pending) // (workers * 4))))
        chunks = _chunked([c.to_dict() for c in pending], chunk_size)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        with ctx.Pool(processes=workers) as pool:
            for chunk_records in pool.imap_unordered(_run_chunk, chunks):
                consume(chunk_records)

    failed = sum(1 for r in records if "error" in r)
    return CampaignRun(
        total=len(cells),
        skipped=skipped,
        executed=len(records),
        failed=failed,
        elapsed_s=time.perf_counter() - start,
        workers=workers,
        records=records,
    )


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | str,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    debug_invariants: bool | None = None,
) -> CampaignRun:
    """Expand a spec and execute it against a store (URI, path or instance).

    Strings go through :func:`~repro.campaigns.stores.open_store`, so
    ``"sqlite:results/t2.db"`` selects the SQLite backend and a plain
    path keeps the JSONL default.
    """
    store = open_store(store, campaign=spec.name)
    return run_cells(
        spec.cells(), store,
        workers=workers, chunk_size=chunk_size, progress=progress,
        debug_invariants=debug_invariants,
    )
