"""Live Exploration of Dynamic Rings — a full reproduction.

Implements the model, every algorithm, every impossibility/lower-bound
adversary, and the analysis tooling of:

    G. Di Luna, S. Dobrev, P. Flocchini, N. Santoro,
    "Live Exploration of Dynamic Rings", ICDCS 2016
    (extended version: arXiv:1512.05306v4).

Quick start::

    from repro import run_exploration
    from repro.algorithms.fsync import KnownUpperBound

    result = run_exploration(KnownUpperBound(bound=12), ring_size=12,
                             positions=[0, 5], max_rounds=100)
    assert result.explored and result.all_terminated

See README.md for the tour, DESIGN.md for the paper-to-module map, and
EXPERIMENTS.md for the reproduced tables and figures.
"""

from .api import build_engine, run_campaign, run_cell, run_exploration
from .core import (
    Engine,
    Orientation,
    Ring,
    RunResult,
    TerminationMode,
    Trace,
    TransportModel,
)

__version__ = "1.2.0"

__all__ = [
    "Engine",
    "Orientation",
    "Ring",
    "RunResult",
    "TerminationMode",
    "Trace",
    "TransportModel",
    "build_engine",
    "run_campaign",
    "run_cell",
    "run_exploration",
    "__version__",
]
