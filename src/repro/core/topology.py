"""The paper's dynamic ring as a :class:`~repro.core.interfaces.Topology`.

:class:`RingTopology` adapts the invariant ring structure
(:class:`~repro.core.ring.Ring`) to the topology-generic core
(:mod:`repro.core.sim`).  Port tokens are the two
:class:`~repro.core.directions.GlobalDirection` members (``PLUS`` = the
port toward ``node + 1``), identity-stable enum values the hot loop
compares with ``is`` — exactly what the pre-refactor ring engine used.

The ring's 1-interval connectivity is structural: removing any single
edge of a ring leaves a connected path, so ``validate_edge`` only range-
checks the adversary's choice and multi-edge removal is rejected outright
(two missing ring edges always disconnect the footprint).
"""

from __future__ import annotations

from typing import Sequence

from .agent import AgentState
from .directions import GlobalDirection, LocalDirection
from .errors import AdversaryViolation
from .ring import Ring
from .snapshot import Snapshot, intern_snapshot

_PLUS = GlobalDirection.PLUS
_MINUS = GlobalDirection.MINUS
_LEFT = LocalDirection.LEFT
_RIGHT = LocalDirection.RIGHT


class RingTopology:
    """Ring structure + ring Look semantics for the unified core.

    Composition over the frozen :class:`Ring` (kept reachable as
    ``.ring`` and via the engine facade, so adversaries keep their full
    ring algebra — ``distance``, ``edge_endpoints``, ``to_networkx``).
    Edge ``e_i`` joins ``v_i`` and ``v_{i+1 mod n}``; nodes handled here
    are already normalized by the engine, so the arithmetic below skips
    the defensive ``% size`` of the public :class:`Ring` API (it is the
    exact inline arithmetic of the pre-refactor hot loop).
    """

    oriented = True

    __slots__ = ("ring", "size", "landmark")

    def __init__(self, ring: Ring) -> None:
        self.ring = ring
        self.size = ring.size
        self.landmark = ring.landmark

    # -- structure -----------------------------------------------------

    def normalize(self, node: int) -> int:
        return node % self.size

    def edge_from(self, node: int, port: GlobalDirection) -> int:
        """Moving PLUS from ``v_i`` crosses ``e_i``; MINUS crosses ``e_{i-1}``."""
        if port is _PLUS:
            return node
        return (node - 1) % self.size

    def neighbor(self, node: int, port: GlobalDirection) -> int:
        return (node + int(port)) % self.size

    # -- adversary validation -------------------------------------------

    def canonical_edge(self, edge):
        return edge

    def validate_edge(self, edge) -> None:
        if not isinstance(edge, int) or not 0 <= edge < self.size:
            raise AdversaryViolation(
                f"adversary removed invalid edge {edge!r} on ring of size {self.size}"
            )

    def validate_missing(self, missing: set) -> None:
        for edge in missing:
            self.validate_edge(edge)
        if len(missing) > 1:
            raise AdversaryViolation(
                "adversary disconnected the footprint (1-interval connectivity): "
                f"a ring loses connectivity with {len(missing)} edges missing"
            )

    def removable(self, edge) -> bool:
        return isinstance(edge, int) and 0 <= edge < self.size

    def edge_label(self, edge) -> str:
        return str(edge)

    # -- Look semantics -------------------------------------------------

    def snapshot(self, agent: AgentState, interior: int, holders: dict) -> Snapshot:
        """O(1) Look from the occupancy-index entry of the agent's node."""
        port = agent.port
        if port is None:
            on_port = None
            interior -= 1  # don't count the observer itself
        elif port is agent.left_global:
            on_port = _LEFT
        else:
            on_port = _RIGHT
        plus_holder = holders.get(_PLUS)
        minus_holder = holders.get(_MINUS)
        if agent.left_global is _PLUS:
            left_holder, right_holder = plus_holder, minus_holder
        else:
            left_holder, right_holder = minus_holder, plus_holder
        index = agent.index
        memory = agent.memory
        return intern_snapshot(
            on_port,
            interior,
            left_holder is not None and left_holder != index,
            right_holder is not None and right_holder != index,
            agent.node == self.landmark,
            memory.moved,
            memory.failed,
        )

    def snapshot_scan(
        self, agent: AgentState, agents: Sequence[AgentState]
    ) -> Snapshot:
        """Reference Look: the original O(k) scan over the team."""
        others_in_node = 0
        left_port = agent.orientation.to_global(LocalDirection.LEFT)
        other_left = False
        other_right = False
        for other in agents:
            if other.index == agent.index or other.node != agent.node:
                continue
            if other.port is None:
                others_in_node += 1
            elif other.port is left_port:
                other_left = True
            else:
                other_right = True
        return Snapshot(
            on_port=agent.local_port(),
            others_in_node=others_in_node,
            other_on_left_port=other_left,
            other_on_right_port=other_right,
            is_landmark=self.ring.is_landmark(agent.node),
            moved=agent.memory.moved,
            failed=agent.memory.failed,
        )

    def __repr__(self) -> str:
        return f"RingTopology({self.ring!r})"
