"""Lockstep batch execution: many ring cells as one NumPy program.

``BENCH_engine.json`` shows the scalar round loop is bound by the
per-agent Python work itself once the occupancy index made each step
O(1): throughput per *cell* falls roughly linearly with agent count.
Campaign chunks, however, are hundreds of cells that differ only along
the seed / adversary-arg / ring-size axes — same algorithm, same agent
count, same round structure.  :class:`BatchCore` exploits that shape by
executing a whole chunk in lockstep: agent positions, ports, phases and
counters become ``(cells, agents)`` integer/bool arrays, the adversary's
edge removals a per-cell vector, and every round a fixed sequence of
whole-array Look/Compute/Move operations.  Cells that halt simply leave
the active mask; the survivors keep stepping.

PR 6 covered the narrowest corner (``known-bound``/``unconscious``,
NS/FSYNC).  The frontier now spans the paper's whole oblivious matrix:

* **every registry algorithm** — the hand-written kernels remain for the
  two originals, and :mod:`repro.core.batch_kernels` runs the other nine
  through a masked columnar twin of ``StateMachineAlgorithm``;
* **PT and ET transports** — a PT agent left on a port by the scheduler
  *rides* the edge when it is present (one extra masked traverse per
  round); ET differs from NS only through its scheduler;
* **SSYNC activation masks** — ``round-robin``/``random-fair``/
  ``et-fair`` draws are pure functions of (round, cell RNG, public agent
  state), not interleaved with engine queries, so each running cell's
  scheduler is replayed in-loop into a per-round ``act[C, K]`` mask and
  everything downstream stays lockstep;
* **landmark cells** — the landmark is one more per-cell column
  (``lm``/``lm_seen``/``lm_first_net``/``size``/``Ntime``), maintained
  for every cell so LExplore observations match the scalar engine even
  for algorithms that ignore them.

Eligibility — the single predicate shared by the executor, the
distributed worker and the test suite (:func:`batch_eligible`) — still
excludes what genuinely has no array form:

* *peeking* adversaries (``block-agent``, ``figure2``, ``theorem19``,
  ``zigzag``, ``ns-starvation``, stochastic edge processes):
  ``peek_intended_action`` is a per-agent speculative Compute against a
  cloned memory;
* *fault plans*: the injector hooks the scalar round structure;
* non-ring topologies, invalid configurations the scalar path rejects
  (so the fallback reproduces the identical error record), and the
  per-round invariant audit.

Equivalence with :class:`~repro.core.sim.SimulationCore` is not argued,
it is tested: ``tests/core/test_batch_equivalence.py`` drives both paths
over a differential grid plus Hypothesis-generated batches and asserts
cell-by-cell result *and* per-round state equality, and the golden ring
traces replay through this core too.

Scale: the visited bitmap is bit-packed (``n_max / 8`` bytes per cell),
the split caps count packed bytes, and ``REPRO_BATCH_WIDTH`` overrides
the default lane width — a 10^5-node ring batches a thousand cells wide
within the default cap.

NumPy is a declared dependency but its absence only disables batching:
:data:`HAVE_NUMPY` gates the routing (``REPRO_NO_NUMPY=1`` forces the
scalar path, which is also how CI tests the fallback).
"""

from __future__ import annotations

import os
import random
import time
from typing import TYPE_CHECKING, Sequence

from ..obs import metrics as obs_metrics
from .batch_kernels import K_ENTER, K_MOVE, K_TERM, Look, build_program
from .errors import ConfigurationError
from .results import AgentStats, RunResult
from .sim import MAX_ROUNDS_LIMIT

if TYPE_CHECKING:  # pragma: no cover
    from ..campaigns.spec import CellConfig

try:  # pragma: no cover - exercised via REPRO_NO_NUMPY in CI
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: Whether the batch path is available in this process.  Module-level so
#: tests can monkeypatch it; consult :func:`numpy_available` from other
#: modules (it reads this attribute dynamically).
HAVE_NUMPY = _np is not None and os.environ.get("REPRO_NO_NUMPY", "") != "1"

#: Default number of cells per lockstep batch — also the chunk-size cap
#: :func:`repro.campaigns.executor.default_chunk_size` uses when every
#: pending cell qualifies (fill the vector width instead of 25-cell IPC
#: chunks).  Override per process with ``REPRO_BATCH_WIDTH`` (validated
#: by :func:`batch_width`).
BATCH_WIDTH = 256

#: Upper bound a ``REPRO_BATCH_WIDTH`` override may request.
MAX_BATCH_WIDTH = 1 << 16

#: Algorithms with a vectorized Compute kernel (bespoke here, or a
#: :class:`~repro.core.batch_kernels.VectorProgram`).
BATCH_ALGORITHMS = frozenset({
    "known-bound",
    "unconscious",
    "landmark-chirality",
    "landmark-no-chirality",
    "start-from-landmark",
    "pt-bound",
    "pt-landmark",
    "pt-bound-3",
    "pt-landmark-3",
    "et-unconscious",
    "et-exact",
})

#: Adversaries whose edge choice is a function of (round, own RNG) only.
BATCH_ADVERSARIES = frozenset({"none", "fixed", "periodic", "random"})

#: Transport models with an array form (ET's guarantees live in its
#: scheduler, so its move phase is NS's; PT adds the port ride).
BATCH_TRANSPORTS = frozenset({"ns", "pt", "et"})

#: Schedulers whose activation draws are replayable without engine
#: callbacks ("auto" resolves per transport via the registry).
BATCH_SCHEDULERS = frozenset(
    {"auto", "fsync", "round-robin", "random-fair", "et-fair"})

#: Scalar-path minimum ``bound`` per algorithm (ctor-enforced); an
#: explicit smaller bound must fall back so the scalar error reproduces.
_MIN_BOUND = {"known-bound": 3, "pt-bound": 3, "pt-bound-3": 2, "et-exact": 3}

#: Cap on the pairwise occupancy tensor (cells * agents^2 bools) and the
#: *packed* visited bitmap (cells * ring-size/8 bytes) per batch; bigger
#: groups are split by :func:`run_batch_cells`.
_MAX_PAIRWISE = 1 << 22
_MAX_VISITED_BYTES = 1 << 26


def numpy_available() -> bool:
    """Dynamic read of :data:`HAVE_NUMPY` (monkeypatch-friendly)."""
    return HAVE_NUMPY


def batch_width() -> int:
    """The configured lane width (``REPRO_BATCH_WIDTH`` or the default).

    Raises :class:`ConfigurationError` on a non-integer, non-positive or
    absurd override — silently clamping would hide the typo that turned
    a million-cell sweep into width-1 batches.
    """
    raw = os.environ.get("REPRO_BATCH_WIDTH", "").strip()
    if not raw:
        return BATCH_WIDTH
    try:
        width = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_BATCH_WIDTH={raw!r} is not an integer") from None
    if not 1 <= width <= MAX_BATCH_WIDTH:
        raise ConfigurationError(
            f"REPRO_BATCH_WIDTH={width} outside [1, {MAX_BATCH_WIDTH}]")
    return width


def _batch_ineligibility(cell: "CellConfig") -> tuple[str, str] | None:
    """``(key, reason)`` why ``cell`` must run scalar (``None`` = batchable).

    The contract: for an eligible cell, :class:`BatchCore` produces the
    exact :class:`~repro.core.results.RunResult` the scalar engine would.
    Configurations the scalar path *rejects* (bad bound, out-of-range
    fixed edge or landmark, invalid flip vector...) are therefore
    ineligible too, so the fallback path reproduces the identical error
    record.

    ``key`` is a short stable identifier the executor uses to label
    rejection-reason counters (``executor.batch_reject.<key>``);
    ``reason`` is the human message.
    """
    if cell.topology != "ring":
        return "topology", f"topology {cell.topology!r} is not the ring"
    if cell.algorithm not in BATCH_ALGORITHMS:
        return "algorithm", f"algorithm {cell.algorithm!r} has no vectorized kernel"
    if cell.adversary not in BATCH_ADVERSARIES:
        return "adversary", f"adversary {cell.adversary!r} peeks or schedules"
    if cell.faults:
        return "faults", f"fault plan {cell.faults!r} needs the scalar fault hook"
    if cell.transport not in BATCH_TRANSPORTS:
        return "transport", f"transport {cell.transport!r} has no array form"
    if cell.scheduler not in BATCH_SCHEDULERS:
        return ("scheduler",
                f"scheduler {cell.scheduler!r} interleaves with the engine")
    if cell.landmark is not None and not 0 <= cell.landmark < cell.ring_size:
        return ("landmark",
                f"landmark {cell.landmark} outside ring of size "
                f"{cell.ring_size} (scalar path rejects it)")
    if cell.debug_invariants:
        return "debug_invariants", "per-round invariant audit requested"
    if not 0 < cell.max_rounds <= MAX_ROUNDS_LIMIT:
        return ("max_rounds",
                f"max_rounds {cell.max_rounds} outside (0, {MAX_ROUNDS_LIMIT}]")
    min_bound = _MIN_BOUND.get(cell.algorithm)
    if (min_bound is not None and cell.bound is not None
            and cell.bound < min_bound):
        return ("bound",
                f"bound {cell.bound} < {min_bound} (scalar path rejects it)")
    if cell.adversary in ("fixed", "periodic") and not 0 <= cell.edge < cell.ring_size:
        return "edge", f"edge {cell.edge} outside ring of size {cell.ring_size}"
    if cell.chirality and cell.flipped:
        return "chirality", "chirality with flipped agents (scalar path rejects it)"
    if any(not 0 <= i < cell.agents for i in cell.flipped):
        return "flipped", "flipped index out of range (scalar path rejects it)"
    if cell.placement == "explicit":
        if cell.positions is None:
            return ("placement",
                    "explicit placement without positions (scalar path rejects it)")
    else:
        if cell.positions is not None:
            return "placement", "positions given for a non-explicit placement"
        if cell.placement not in ("spread", "offset-spread", "thirds", "origin"):
            return "placement", f"unknown placement {cell.placement!r}"
    return None


def batch_ineligible_reason(cell: "CellConfig") -> str | None:
    """Human-readable reason ``cell`` must run scalar (``None`` = batchable)."""
    verdict = _batch_ineligibility(cell)
    return None if verdict is None else verdict[1]


def batch_ineligible_key(cell: "CellConfig") -> str | None:
    """Short stable rejection key for metrics (``None`` = batchable)."""
    verdict = _batch_ineligibility(cell)
    return None if verdict is None else verdict[0]


def batch_eligible(cell: "CellConfig") -> bool:
    """Can ``cell`` run on :class:`BatchCore`? (shared routing predicate)"""
    return _batch_ineligibility(cell) is None


_ADV_CODE = {"none": 0, "fixed": 1, "periodic": 2, "random": 3}
_SCHED_CODE = {"fsync": 0, "round-robin": 1, "random-fair": 2, "et-fair": 3}
_S_FSYNC, _S_RR, _S_RF, _S_ETF = 0, 1, 2, 3

# The random-fair scheduler's construction defaults (mirrored from
# repro.schedulers.ssync; the registry builds them with defaults only).
_RF_P = 0.5
_RF_STARVATION_CAP = 64
_ETF_PATIENCE = 8

# State codes of the two bespoke kernels.  known-bound:
# Init/Bounce/Forward (Terminate is an action, not a resident state).
# unconscious: Init/Reverse/Keep/Bounce/Forward.
_INIT, _BOUNCE_KB, _FORWARD_KB = 0, 1, 2
_REVERSE, _KEEP, _BOUNCE_UN, _FORWARD_UN = 1, 2, 3, 4


class BatchCore:
    """Lockstep execution of same-shape eligible cells.

    Array layout (``C`` cells x ``K`` agents, all int64/bool):

    ======================  =====================================================
    ``pos[C,K]``            agent node
    ``on_port``/``port``    standing on a port / its global sign (+1 toward
                            ``v+1``); ``port`` is meaningful only under
                            ``on_port``
    ``left[C,K]``           the global sign each agent labels *left*
                            (-1 canonical, +1 mirrored)
    ``term``/``term_round`` terminated flag / round of termination (-1 = never)
    counters                ``Ttime Tsteps Etime Esteps Btime net min_net
                            max_net Ntime`` plus ``moved``/``failed`` —
                            exactly :class:`~repro.core.memory.AgentMemory`'s
                            slots
    landmark                ``lm[C]`` (node or -1), ``lm_seen``/
                            ``lm_first_net``/``size[C,K]`` (-1 = unknown)
    ``state[C,K]``          the state-machine state; ``entered``/``last_dir``
                            for the generic driver, or the bespoke extras
                            (``bound[C]``; ``G``/``ldir``/``fwd[C,K]``)
    scheduling              ``sched[C]`` code, ``rsa[C,K]`` rounds since
                            active, per-cell scheduler RNGs / RR offsets /
                            ET debt
    ``visited_bits``        packed bitmap ``[C, ceil(n_max/8)]`` +
                            ``visited_count``/``explo_round``
    ``running[C]``          cells still stepping; halted cells freeze
    ======================  =====================================================

    Each :meth:`advance` replays one scalar round exactly — adversary
    choice, scheduler activation (FSYNC constant or the SSYNC replica),
    Look (pairwise same-node occupancy tensors), the vectorized Compute
    kernel (state transitions with the driver's entered-state timing),
    port mutual exclusion (denial = port held at round start, winner =
    lowest index, ``Btime`` reset for every requester), the Move phase
    (with PT port rides and landmark observation) and the end-of-round
    tick — preceded by the scalar ``run()`` stop-condition check in its
    exact priority order (all-terminated > explored > horizon).
    """

    def __init__(self, cells: Sequence["CellConfig"]) -> None:
        if not HAVE_NUMPY:
            raise ConfigurationError("BatchCore requires numpy (HAVE_NUMPY is false)")
        if not cells:
            raise ConfigurationError("BatchCore needs at least one cell")
        algorithms = {c.algorithm for c in cells}
        agent_counts = {c.agents for c in cells}
        if len(algorithms) != 1 or len(agent_counts) != 1:
            raise ConfigurationError(
                "a BatchCore batch must share one algorithm and agent count "
                f"(got {sorted(algorithms)} x {sorted(agent_counts)}); "
                "run_batch_cells groups heterogeneous batches")
        for cell in cells:
            reason = batch_ineligible_reason(cell)
            if reason is not None:
                raise ConfigurationError(f"cell is not batch-eligible: {reason}")
        # Late imports: spec is import-light; the registry is the single
        # source of truth for auto-scheduler / landmark / placement
        # resolution and is loaded by every campaign caller anyway.
        from ..campaigns.registry import ALGORITHMS, AUTO_SCHEDULER
        from ..campaigns.spec import resolve_positions
        from .engine import TransportModel

        np = _np
        self.cells = list(cells)
        C = len(cells)
        K = cells[0].agents
        self._C, self._K = C, K
        if obs_metrics.enabled():
            reg = obs_metrics.registry()
            reg.counter("batch.cores").inc()
            reg.histogram("batch.width").observe(C)
            reg.histogram("batch.agents").observe(K)
        self.algorithm = cells[0].algorithm
        entry = ALGORITHMS[self.algorithm]

        self.n = np.array([c.ring_size for c in cells], dtype=np.int64)
        self.max_rounds = np.array([c.max_rounds for c in cells], dtype=np.int64)
        self.stop_expl = np.array(
            [c.stop_on_exploration for c in cells], dtype=bool)

        placement = entry.placement_override
        pos = np.empty((C, K), dtype=np.int64)
        left = np.empty((C, K), dtype=np.int64)
        for ci, cell in enumerate(cells):
            effective = placement or cell.placement
            placed = resolve_positions(
                effective,
                ring_size=cell.ring_size,
                agents=K,
                positions=cell.positions if effective == "explicit" else None,
            )
            pos[ci] = [p % cell.ring_size for p in placed]
            if cell.chirality:
                left[ci] = -1
            else:
                flipped = set(cell.flipped)
                left[ci] = [1 if i in flipped else -1 for i in range(K)]
        self.pos = pos
        self.left = left

        def zeros(dtype):
            return np.zeros((C, K), dtype=dtype)

        self.on_port = zeros(bool)
        self.port = zeros(np.int64)
        self.term = zeros(bool)
        self.term_round = np.full((C, K), -1, dtype=np.int64)
        self.Ttime = zeros(np.int64)
        self.Tsteps = zeros(np.int64)
        self.Etime = zeros(np.int64)
        self.Esteps = zeros(np.int64)
        self.Btime = zeros(np.int64)
        self.net = zeros(np.int64)
        self.min_net = zeros(np.int64)
        self.max_net = zeros(np.int64)
        self.moved = zeros(bool)
        self.failed = zeros(bool)

        # -- landmark tracking (maintained for every cell; lm = -1 means
        # the cell has no landmark and none of it ever fires) ----------
        self.lm = np.array(
            [c.landmark if c.landmark is not None
             else (0 if entry.needs_landmark else -1) for c in cells],
            dtype=np.int64)
        self.lm_seen = pos == self.lm[:, None]
        self.lm_first_net = zeros(np.int64)
        self.size = np.full((C, K), -1, dtype=np.int64)
        self.Ntime = zeros(np.int64)
        self._any_lm = bool((self.lm >= 0).any())

        # -- transport / scheduler columns ------------------------------
        self.is_pt = np.array([c.transport == "pt" for c in cells], dtype=bool)
        self._any_pt = bool(self.is_pt.any())
        sched_names = [
            c.scheduler if c.scheduler != "auto"
            else AUTO_SCHEDULER[TransportModel(c.transport)]
            for c in cells
        ]
        self.sched = np.array(
            [_SCHED_CODE[name] for name in sched_names], dtype=np.int64)
        self._all_fsync = bool((self.sched == _S_FSYNC).all())
        self._rr_offset = np.zeros(C, dtype=np.int64)
        self._sched_rngs = [
            random.Random(c.seed + 1) if code in (_S_RF, _S_ETF) else None
            for c, code in zip(cells, self.sched)
        ]
        self.rsa = zeros(np.int64)          # rounds_since_active
        self._et_debt = zeros(np.int64)

        # -- Compute kernel ---------------------------------------------
        self._program = build_program(self.algorithm, cells)
        if self._program is not None:
            self.state = np.full(
                (C, K), self._program.initial_code, dtype=np.int64)
            self.entered = zeros(bool)
            self.last_dir = np.full((C, K), -1, dtype=np.int64)
            if self.algorithm in ("pt-bound", "pt-bound-3"):
                self.pbound = np.array(
                    [c.bound if c.bound is not None else c.ring_size
                     for c in cells], dtype=np.int64)
            elif self.algorithm == "et-exact":
                self.pbound = np.array(
                    [(c.bound if c.bound is not None else c.ring_size) - 1
                     for c in cells], dtype=np.int64)
            self._program.setup(self)
        else:
            self.state = zeros(np.int64)
            if self.algorithm == "known-bound":
                self.bound = np.array(
                    [c.bound if c.bound is not None else c.ring_size
                     for c in cells], dtype=np.int64)
            else:
                self.G = np.full((C, K), 2, dtype=np.int64)
                self.ldir = np.full((C, K), -1, dtype=np.int64)  # LEFT=-1
                self.fwd = zeros(np.int64)

        self.adv = np.array([_ADV_CODE[c.adversary] for c in cells], dtype=np.int64)
        self.adv_edge = np.array([c.edge for c in cells], dtype=np.int64)
        self._rngs = [
            random.Random(c.seed) if c.adversary == "random" else None
            for c in cells
        ]

        self._n_max = int(self.n.max())
        self._n_bytes = (self._n_max + 7) >> 3
        self.visited_bits = np.zeros((C, self._n_bytes), dtype=np.uint8)
        cells_i = np.repeat(np.arange(C), K)
        nodes_i = pos.ravel()
        np.bitwise_or.at(
            self.visited_bits, (cells_i, nodes_i >> 3),
            (1 << (nodes_i & 7)).astype(np.uint8))
        start_flat = np.unique(cells_i * self._n_max + nodes_i)
        self.visited_count = np.bincount(
            start_flat // self._n_max, minlength=C).astype(np.int64)
        self.explo_round = np.where(
            self.visited_count >= self.n, 0, -1).astype(np.int64)

        self.round_no = np.zeros(C, dtype=np.int64)
        self.running = np.ones(C, dtype=bool)
        self.halted: list[str | None] = [None] * C
        self._t = 0
        self._tril = np.tril(np.ones((K, K), dtype=bool), -1)  # [i,j]: j < i
        self._eye = np.eye(K, dtype=bool)

    # ------------------------------------------------------------------
    # the lockstep loop
    # ------------------------------------------------------------------

    def advance(self) -> bool:
        """Halt-check every running cell, then execute one lockstep round.

        Returns ``False`` once every cell has halted.  The halt check
        mirrors ``SimulationCore.run`` exactly: conditions are evaluated
        *before* each step, in the order all-terminated > explored >
        horizon, so round counts and halt reasons match the scalar path.
        """
        np = _np
        running = self.running
        if not running.any():
            return False
        all_term = self.term.all(axis=1)
        explored_stop = self.stop_expl & (self.visited_count >= self.n)
        halt_term = running & all_term
        halt_expl = running & ~all_term & explored_stop
        halt_hor = (running & ~all_term & ~explored_stop
                    & (self.round_no >= self.max_rounds))
        for ci in np.nonzero(halt_term)[0]:
            self.halted[ci] = "all-terminated"
        for ci in np.nonzero(halt_expl)[0]:
            self.halted[ci] = "explored"
        for ci in np.nonzero(halt_hor)[0]:
            self.halted[ci] = "horizon"
        running &= ~(halt_term | halt_expl | halt_hor)
        if not running.any():
            return False
        self._step(running)
        self.round_no[running] += 1
        self._t += 1
        return True

    def run(self) -> list[RunResult]:
        """Drive every cell to its halt condition; return per-cell results."""
        while self.advance():
            pass
        return self.results()

    def _activation(self, run, missing):
        """This round's activation mask — the scalar scheduler, replayed.

        FSYNC rows activate every live agent.  SSYNC rows replicate
        their scheduler object exactly: same RNG stream (one
        ``Random(seed + 1)`` per cell), same iteration order over
        ``live_indexes``/``agents``, same starvation and ET-debt
        bookkeeping — so the chosen sets are byte-identical to what the
        scalar engine's ``scheduler.select`` would produce round by
        round.
        """
        np = _np
        act = run[:, None] & ~self.term
        if self._all_fsync:
            return act
        for ci in np.nonzero(run & (self.sched != _S_FSYNC))[0]:
            code = int(self.sched[ci])
            termrow = self.term[ci]
            live = [i for i in range(self._K) if not termrow[i]]
            if code == _S_RR:
                chosen = {live[int(self._rr_offset[ci]) % len(live)]}
                self._rr_offset[ci] += 1
            else:
                rng = self._sched_rngs[ci]
                chosen = {i for i in live if rng.random() < _RF_P}
                for i in live:
                    if self.rsa[ci, i] >= _RF_STARVATION_CAP:
                        chosen.add(i)
                if not chosen:
                    chosen = {rng.choice(live)}
                if code == _S_ETF:
                    n = int(self.n[ci])
                    gone = int(missing[ci])
                    for i in range(self._K):
                        if termrow[i] or not self.on_port[ci, i]:
                            self._et_debt[ci, i] = 0
                            continue
                        node = int(self.pos[ci, i])
                        edge = node if self.port[ci, i] == 1 else (node - 1) % n
                        present = edge != gone
                        if i in chosen:
                            if present:
                                self._et_debt[ci, i] = 0
                            continue
                        if present:
                            self._et_debt[ci, i] += 1
                            if self._et_debt[ci, i] >= _ETF_PATIENCE:
                                chosen.add(i)
                                self._et_debt[ci, i] = 0
            row = np.zeros(self._K, dtype=bool)
            row[list(chosen)] = True
            act[ci] = row
        return act

    def _step(self, run) -> None:
        np = _np
        t = self._t

        # 1. adversary: the missing edge per cell (-1 = none).  Running
        # cells all sit at round t, so the oblivious adversaries are pure
        # functions of t (and, for "random", of the cell's own RNG, which
        # advances by exactly one randrange per stepped round — the same
        # draw sequence the scalar engine consumes).
        missing = np.full(self._C, -1, dtype=np.int64)
        mask = run & (self.adv == 1)
        missing[mask] = self.adv_edge[mask]
        if t % 4 < 2:  # the registry's periodic adversary: period=4, duty=2
            mask = run & (self.adv == 2)
            missing[mask] = self.adv_edge[mask]
        mask = run & (self.adv == 3)
        if mask.any():
            for ci in np.nonzero(mask)[0]:
                missing[ci] = self._rngs[ci].randrange(int(self.n[ci]))

        # 2. activation (FSYNC: every live agent; SSYNC: replayed draws).
        act = self._activation(run, missing)

        # 3. Look (simultaneous, against round-start state).  Pairwise
        # same-node tensors answer every occupancy question the ring
        # snapshot asks; terminated agents stay visible, the observer
        # excludes itself.
        pos = self.pos
        same = pos[:, :, None] == pos[:, None, :]
        others = same & ~self._eye
        on_port = self.on_port
        others_interior = (others & ~on_port[:, None, :]).sum(axis=2)
        holds_plus = on_port & (self.port == 1)
        holds_minus = on_port & (self.port == -1)
        other_plus = (others & holds_plus[:, None, :]).any(axis=2)
        other_minus = (others & holds_minus[:, None, :]).any(axis=2)
        snap_failed = self.failed.copy()
        snap_moved = self.moved.copy()
        self.failed[act] = False
        look = Look(snap_moved, snap_failed, others_interior,
                    other_plus, other_minus,
                    is_lm=(pos == self.lm[:, None]))

        # 4. Compute (vectorized state-machine kernel).
        enter = None
        if self._program is not None:
            kind, local_dir = self._program.run(self, act, look)
            g = -local_dir * self.left
            term_now = act & (kind == K_TERM)
            wants_move = act & (kind == K_MOVE)
            enter = act & (kind == K_ENTER) & self.on_port
        elif self.algorithm == "known-bound":
            term_now, g = self._compute_known_bound(
                act, snap_failed, snap_moved, others_interior,
                other_plus, other_minus)
            wants_move = act & ~term_now
        else:
            term_now, g = self._compute_unconscious(
                act, snap_moved, others_interior, other_plus, other_minus)
            wants_move = act & ~term_now

        # 5. Resolve: terminations, port releases, then port mutual
        # exclusion.  A port held at the *start* of the round (by anyone,
        # terminated agents included — and still by agents who stepped
        # off it this round, the scalar ``_released`` rule) is denied to
        # requesters all round; unheld ports go to the lowest-index
        # requester; every requester's Btime restarts.
        self.term |= term_now
        self.term_round[term_now] = t
        if enter is not None and enter.any():
            self.on_port[enter] = False
            self.Btime[enter] = 0
        direct = wants_move & on_port & (self.port == g)
        request = wants_move & ~direct
        occupied = np.where(g == 1, other_plus, other_minus)
        beaten = (same & request[:, None, :]
                  & (g[:, :, None] == g[:, None, :])
                  & self._tril[None, :, :]).any(axis=2)
        winner = request & ~occupied & ~beaten
        denied = request & ~winner
        self.Btime[request] = 0
        self.on_port[winner] = True
        self.port[winner] = g[winner]
        self.failed[denied] = True
        self.moved[denied] = False
        movers = direct | winner

        # 6. Move: PLUS ports cross edge v, MINUS ports edge v-1; a
        # missing edge blocks (Btime accumulates), otherwise traverse.
        # Under PT, a non-activated agent standing on a present edge's
        # port rides it (a passive traverse, no clocks).
        n_col = self.n[:, None]
        edge = np.where(self.port == 1, self.pos, (self.pos - 1) % n_col)
        blocked = movers & (edge == missing[:, None])
        self.moved[blocked] = False
        self.Btime[blocked] += 1
        traverse = movers & ~blocked
        if self._any_pt:
            ride = (run[:, None] & self.is_pt[:, None] & ~self.term & ~act
                    & self.on_port & (edge != missing[:, None]))
            traverse = traverse | ride
        dest = (self.pos + self.port) % n_col
        local = np.where(self.port == self.left, -1, 1)  # -1 LEFT, +1 RIGHT
        self.Tsteps[traverse] += 1
        self.Esteps[traverse] += 1
        self.net[traverse] += local[traverse]
        np.maximum(self.max_net, self.net, out=self.max_net, where=traverse)
        np.minimum(self.min_net, self.net, out=self.min_net, where=traverse)
        self.moved[traverse] = True
        self.Btime[traverse] = 0
        self.on_port[traverse] = False
        self.pos[traverse] = dest[traverse]

        # Landmark observation happens on arrival, after the net update
        # (the scalar ``_traverse`` order): the first stand records the
        # displacement, a later stand at a different displacement pins
        # the ring size.
        if self._any_lm:
            arrived = traverse & (dest == self.lm[:, None])
            if arrived.any():
                learn = (arrived & self.lm_seen & (self.size < 0)
                         & (self.net != self.lm_first_net))
                first = arrived & ~self.lm_seen
                self.size[learn] = np.abs(
                    self.net[learn] - self.lm_first_net[learn])
                self.lm_seen[first] = True
                self.lm_first_net[first] = self.net[first]

        tc, tk = np.nonzero(traverse)
        if tc.size:
            flat = np.unique(tc * self._n_max + dest[tc, tk])
            cells_f = flat // self._n_max
            nodes_f = flat % self._n_max
            byte = nodes_f >> 3
            bit = (1 << (nodes_f & 7)).astype(np.uint8)
            fresh = (self.visited_bits[cells_f, byte] & bit) == 0
            if fresh.any():
                np.bitwise_or.at(
                    self.visited_bits,
                    (cells_f[fresh], byte[fresh]), bit[fresh])
                np.add.at(self.visited_count, cells_f[fresh], 1)
                done = (run & (self.explo_round < 0)
                        & (self.visited_count >= self.n))
                # Exploration completing during round t is "time t + 1"
                # (the scalar engine's accounting).
                self.explo_round[done] = t + 1

        # 7. End of round: clocks tick for active agents that did not
        # terminate this round; idle live agents age toward the
        # starvation cap.
        alive = run[:, None] & ~self.term
        tick = alive & act
        self.Ttime[tick] += 1
        self.Etime[tick] += 1
        self.Ntime[tick & (self.size >= 0)] += 1
        if not self._all_fsync:
            self.rsa[tick] = 0
            self.rsa[alive & ~act] += 1

    # ------------------------------------------------------------------
    # bespoke Compute kernels (the PR 6 originals)
    # ------------------------------------------------------------------
    # Both kernels replicate the StateMachineAlgorithm driver timing: the
    # predicates of the *current* state read the pre-round counters
    # (Btime as min(Btime, Etime)); at most one transition fires per
    # round (first matching rule); the entered state's preamble runs
    # before its Explore reset (Etime = Esteps = 0); the agent moves in
    # the new state's direction immediately but the new state's guards
    # wait for the next Look.

    def _compute_known_bound(self, act, snap_failed, snap_moved,
                             others_interior, other_plus, other_minus):
        np = _np
        N = self.bound[:, None]
        btime_eff = np.minimum(self.Btime, self.Etime)
        warm = self.Ttime >= 2 * N - 4
        bounce_now = (warm & (btime_eff >= N - 1)) | snap_failed
        other_on_left = np.where(self.left == 1, other_plus, other_minus)
        catches_left = ~self.on_port & other_on_left
        caught = self.on_port & ~snap_moved & (others_interior > 0)

        init = act & (self.state == _INIT)
        to_bounce = init & (bounce_now | catches_left)
        to_forward = init & ~to_bounce & (caught | warm)
        settled = act & (self.state != _INIT)
        term_now = settled & (self.Ttime >= 3 * N - 6)

        # Local moving direction: LEFT (-1) for Init/Forward, RIGHT (+1)
        # for Bounce — including the round Bounce is entered.
        local = np.full((self._C, self._K), -1, dtype=np.int64)
        local[settled & (self.state == _BOUNCE_KB)] = 1
        local[to_bounce] = 1

        trans = to_bounce | to_forward
        self.Etime[trans] = 0
        self.Esteps[trans] = 0
        self.state[to_bounce] = _BOUNCE_KB
        self.state[to_forward] = _FORWARD_KB
        return term_now, -local * self.left

    def _compute_unconscious(self, act, snap_moved, others_interior,
                             other_plus, other_minus):
        np = _np
        G = self.G
        btime_eff = np.minimum(self.Btime, self.Etime)
        over = self.Etime >= 2 * G
        phase = act & (self.state <= _KEEP)
        g_dir = -self.ldir * self.left  # global sign of the moving direction
        other_ahead = np.where(g_dir == 1, other_plus, other_minus)
        catches = ~self.on_port & other_ahead
        caught = self.on_port & ~snap_moved & (others_interior > 0)

        # Ordered rules of every phase state: over&blocked -> Reverse,
        # over -> Keep, catches -> Bounce, caught -> Forward.
        to_rev = phase & over & (btime_eff > G)
        to_keep = phase & over & ~to_rev
        calm = phase & ~over
        to_bnc = calm & catches
        to_fwd = calm & ~to_bnc & caught

        # Preambles run before the Explore reset; Bounce/Forward fix
        # ``fwd`` to the direction held at the moment of transition.
        self.ldir[to_rev] = -self.ldir[to_rev]
        self.G[to_keep] *= 2
        self.fwd[to_bnc] = self.ldir[to_bnc]
        self.fwd[to_fwd] = self.ldir[to_fwd]
        trans = to_rev | to_keep | to_bnc | to_fwd
        self.Etime[trans] = 0
        self.Esteps[trans] = 0
        self.state[to_rev] = _REVERSE
        self.state[to_keep] = _KEEP
        self.state[to_bnc] = _BOUNCE_UN
        self.state[to_fwd] = _FORWARD_UN

        # Directions from the post-transition state: phase states follow
        # ``dir`` (Reverse already flipped it), Bounce opposes ``fwd``,
        # Forward follows it.  The algorithm never terminates.
        local = np.where(self.state <= _KEEP, self.ldir,
                         np.where(self.state == _BOUNCE_UN, -self.fwd, self.fwd))
        term_now = np.zeros((self._C, self._K), dtype=bool)
        return term_now, -local * self.left

    # ------------------------------------------------------------------
    # results + introspection
    # ------------------------------------------------------------------

    def _visited_nodes(self, ci: int) -> set[int]:
        np = _np
        n = int(self.n[ci])
        row = np.unpackbits(self.visited_bits[ci], bitorder="little")[:n]
        return {int(v) for v in np.nonzero(row)[0]}

    def results(self) -> list[RunResult]:
        """Per-cell :class:`RunResult`s, identical to the scalar engine's."""
        out = []
        for ci, _cell in enumerate(self.cells):
            n = int(self.n[ci])
            explo = int(self.explo_round[ci])
            stats = [
                AgentStats(
                    index=i,
                    moves=int(self.Tsteps[ci, i]),
                    terminated=bool(self.term[ci, i]),
                    termination_round=(int(self.term_round[ci, i])
                                       if self.term_round[ci, i] >= 0 else None),
                    final_node=int(self.pos[ci, i]),
                    waiting_on_port=bool(self.on_port[ci, i]),
                )
                for i in range(self._K)
            ]
            out.append(RunResult(
                ring_size=n,
                rounds=int(self.round_no[ci]),
                explored=int(self.visited_count[ci]) >= n,
                exploration_round=explo if explo >= 0 else None,
                visited=self._visited_nodes(ci),
                agents=stats,
                halted_reason=self.halted[ci] or "horizon",
            ))
        return out

    def debug_state(self, ci: int) -> dict:
        """Observable per-agent state of one cell (for lockstep tests).

        Mirrors what the scalar engine exposes through ``AgentState`` +
        ``AgentMemory`` so the differential suite can compare the two
        cores round by round, not only at the end.
        """
        agents = []
        for i in range(self._K):
            agents.append({
                "node": int(self.pos[ci, i]),
                "port": int(self.port[ci, i]) if self.on_port[ci, i] else None,
                "terminated": bool(self.term[ci, i]),
                "Ttime": int(self.Ttime[ci, i]),
                "Tsteps": int(self.Tsteps[ci, i]),
                "Etime": int(self.Etime[ci, i]),
                "Esteps": int(self.Esteps[ci, i]),
                "Btime": int(self.Btime[ci, i]),
                "moved": bool(self.moved[ci, i]),
                "failed": bool(self.failed[ci, i]),
                "net": int(self.net[ci, i]),
                "min_net": int(self.min_net[ci, i]),
                "max_net": int(self.max_net[ci, i]),
                "size": (int(self.size[ci, i])
                         if self.size[ci, i] >= 0 else None),
                "Ntime": int(self.Ntime[ci, i]),
            })
        return {
            "round": int(self.round_no[ci]),
            "running": bool(self.running[ci]),
            "visited_count": int(self.visited_count[ci]),
            "agents": agents,
        }


def _split_batches(indexed_cells):
    """Split one (algorithm, agents) group so no batch's tensors blow up.

    The visited cap counts *packed* bytes (``ceil(n/8)`` per cell), so a
    10^5-node ring still batches a thousand cells wide; the pairwise cap
    is unchanged (bools don't pack — the tensor is transient anyway).
    """
    width = batch_width()
    batches = []
    current: list = []
    k = indexed_cells[0][1].agents
    n_max = 0
    for idx, cell in indexed_cells:
        n_next = max(n_max, cell.ring_size)
        count = len(current) + 1
        if current and (count * k * k > _MAX_PAIRWISE
                        or count * ((n_next + 7) // 8) > _MAX_VISITED_BYTES
                        or count > width):
            batches.append(current)
            current = []
            n_next = cell.ring_size
        current.append((idx, cell))
        n_max = n_next
    if current:
        batches.append(current)
    return batches


def run_batch_cells(cells: Sequence["CellConfig"]) -> list[RunResult]:
    """Run eligible cells in lockstep; results align with the input order.

    Heterogeneous inputs are grouped by (algorithm, agent count) — the
    two axes :class:`BatchCore` requires to be uniform; transport,
    scheduler, adversary and landmark mix freely within a batch — and
    each group is split so the pairwise occupancy tensor and the packed
    visited bitmap stay modest.  Raises :class:`ConfigurationError` if
    NumPy is unavailable or any cell is ineligible; routing callers are
    expected to have filtered with :func:`batch_eligible` already.
    """
    if not HAVE_NUMPY:
        raise ConfigurationError("run_batch_cells requires numpy")
    results: list[RunResult | None] = [None] * len(cells)
    groups: dict[tuple[str, int], list] = {}
    for idx, cell in enumerate(cells):
        reason = batch_ineligible_reason(cell)
        if reason is not None:
            raise ConfigurationError(f"cell {idx} is not batch-eligible: {reason}")
        groups.setdefault((cell.algorithm, cell.agents), []).append((idx, cell))
    for group in groups.values():
        for batch in _split_batches(group):
            core = BatchCore([cell for _, cell in batch])
            core_t0 = time.perf_counter()
            batch_results = core.run()
            if obs_metrics.enabled():
                obs_metrics.registry().histogram("batch.core_s").observe(
                    time.perf_counter() - core_t0)
            for (idx, _), result in zip(batch, batch_results):
                results[idx] = result
    return results  # type: ignore[return-value]


__all__ = [
    "BATCH_ADVERSARIES",
    "BATCH_ALGORITHMS",
    "BATCH_SCHEDULERS",
    "BATCH_TRANSPORTS",
    "BATCH_WIDTH",
    "BatchCore",
    "HAVE_NUMPY",
    "MAX_BATCH_WIDTH",
    "batch_eligible",
    "batch_ineligible_key",
    "batch_ineligible_reason",
    "batch_width",
    "numpy_available",
    "run_batch_cells",
]
