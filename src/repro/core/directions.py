"""Direction and orientation primitives for agents on a ring.

The paper distinguishes two frames of reference:

* the *global* frame of the ring: every node ``v_i`` has a ``MINUS`` port
  toward ``v_{i-1}`` and a ``PLUS`` port toward ``v_{i+1}`` (indices mod
  ``n``).  Edge ``e_i`` joins ``v_i`` and ``v_{i+1}``.
* the *local* frame of each agent: a private, internally consistent
  labelling of the two ports of every node as ``left`` and ``right``
  (the function ``lambda_j`` of Section 2.1).

An :class:`Orientation` is the bridge between the two frames.  *Chirality*
(Section 2.1) holds when all agents share the same orientation and know it;
in this library that simply means constructing all agents with the same
:class:`Orientation` value and running an algorithm that is allowed to rely
on the assumption.
"""

from __future__ import annotations

import enum


class GlobalDirection(enum.IntEnum):
    """Direction in the ring's global frame.

    ``PLUS`` moves from ``v_i`` to ``v_{i+1}``; ``MINUS`` moves from
    ``v_i`` to ``v_{i-1}``.  The integer values (+1/-1) are the index
    deltas, so ``node_after(i, d, n) == (i + d) % n``.
    """

    PLUS = 1
    MINUS = -1

    @property
    def opposite(self) -> "GlobalDirection":
        return GlobalDirection(-self.value)


class LocalDirection(enum.Enum):
    """Direction in an agent's private frame (the paper's left/right)."""

    LEFT = "left"
    RIGHT = "right"

    @property
    def opposite(self) -> "LocalDirection":
        if self is LocalDirection.LEFT:
            return LocalDirection.RIGHT
        return LocalDirection.LEFT


LEFT = LocalDirection.LEFT
RIGHT = LocalDirection.RIGHT
PLUS = GlobalDirection.PLUS
MINUS = GlobalDirection.MINUS


class Orientation:
    """A private, consistent port labelling: which global direction is 'left'.

    The paper allows each agent a consistent private orientation
    ``lambda_j`` that may differ between agents.  On a ring, a consistent
    labelling is fully determined by the single choice of which global
    direction the agent calls *left*.
    """

    __slots__ = ("_left",)

    def __init__(self, left: GlobalDirection = GlobalDirection.MINUS) -> None:
        self._left = GlobalDirection(left)

    @property
    def left_global(self) -> GlobalDirection:
        """The global direction this agent labels ``left``."""
        return self._left

    @property
    def right_global(self) -> GlobalDirection:
        """The global direction this agent labels ``right``."""
        return self._left.opposite

    def to_global(self, local: LocalDirection) -> GlobalDirection:
        """Translate one of the agent's local directions to the global frame."""
        if local is LocalDirection.LEFT:
            return self._left
        return self._left.opposite

    def to_local(self, global_dir: GlobalDirection) -> LocalDirection:
        """Translate a global direction into this agent's local frame."""
        if GlobalDirection(global_dir) is self._left:
            return LocalDirection.LEFT
        return LocalDirection.RIGHT

    def flipped(self) -> "Orientation":
        """The mirror orientation (what a disagreeing agent would use)."""
        return Orientation(self._left.opposite)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Orientation):
            return NotImplemented
        return self._left is other._left

    def __hash__(self) -> int:
        return hash(self._left)

    def __repr__(self) -> str:
        return f"Orientation(left={self._left.name})"


#: Conventional orientation: local left == global MINUS (counter-clockwise),
#: matching the proof of Lemma 2 ("left corresponds to counter-clockwise").
CANONICAL = Orientation(GlobalDirection.MINUS)

#: The mirror of :data:`CANONICAL`.
MIRRORED = Orientation(GlobalDirection.PLUS)


def orientations_for(count: int, *, chirality: bool, flipped: tuple[int, ...] = ()) -> list[Orientation]:
    """Build per-agent orientations for a team of ``count`` agents.

    With ``chirality=True`` every agent receives :data:`CANONICAL`.
    Without chirality the adversary chooses orientations; callers name the
    agents whose orientation is mirrored via ``flipped`` (indices into the
    team).  ``flipped`` must be empty when ``chirality`` is requested.
    """
    if count < 1:
        raise ValueError("a team needs at least one agent")
    if chirality:
        if flipped:
            raise ValueError("chirality means all agents share an orientation")
        return [CANONICAL for _ in range(count)]
    flipped_set = set(flipped)
    bad = [i for i in flipped_set if not 0 <= i < count]
    if bad:
        raise ValueError(f"flipped indices out of range: {bad}")
    return [MIRRORED if i in flipped_set else CANONICAL for i in range(count)]
