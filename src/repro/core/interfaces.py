"""Structural interfaces tying the engine to its pluggable parts.

Three parties interact with the engine every round, in this order:

1. the **edge adversary** picks the (at most one) missing edge — it is
   adaptive and omniscient, exactly like the adversaries in the paper's
   proofs, and may even simulate agents' next decisions through
   :meth:`repro.core.engine.Engine.peek_intended_action`;
2. the **activation scheduler** picks the non-empty set of active agents
   (FSYNC: everyone), knowing the adversary's edge choice — this matches
   the paper, where the same adversary controls both; and
3. the **algorithm**, run once per active agent, maps a local snapshot and
   the agent's memory to an action.

These are :class:`typing.Protocol` classes: implementations in
:mod:`repro.adversary`, :mod:`repro.schedulers` and :mod:`repro.algorithms`
only need the methods, not an import of a base class (duck typing keeps the
core free of dependency cycles).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from .actions import Action
from .memory import AgentMemory
from .snapshot import Snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import Engine


@runtime_checkable
class EdgeAdversary(Protocol):
    """Chooses which single edge (if any) is missing each round."""

    def reset(self, engine: "Engine") -> None:
        """Called once before round 0 with the fully built engine."""

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        """Return the missing edge index for this round, or ``None``."""


@runtime_checkable
class ActivationScheduler(Protocol):
    """Chooses the non-empty activation set each round."""

    def reset(self, engine: "Engine") -> None:
        """Called once before round 0 with the fully built engine."""

    def select(self, engine: "Engine") -> set[int]:
        """Indices of agents active this round (non-terminated subset)."""


@runtime_checkable
class Algorithm(Protocol):
    """A deterministic exploration protocol, identical for all agents.

    Implementations must keep *all* per-agent state inside
    ``memory.vars`` — the algorithm object itself is shared between agents
    and must stay stateless, which is what makes adversarial look-ahead
    (``peek``) and deterministic replay possible.
    """

    name: str

    def setup(self, memory: AgentMemory) -> None:
        """Initialise ``memory.vars`` for one agent before round 0."""

    def compute(self, snapshot: Snapshot, memory: AgentMemory) -> Action:
        """The Compute step: map a Look snapshot to an action."""
