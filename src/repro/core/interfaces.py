"""Structural interfaces tying the engine to its pluggable parts.

Three parties interact with the engine every round, in this order:

1. the **edge adversary** picks the (at most one) missing edge — it is
   adaptive and omniscient, exactly like the adversaries in the paper's
   proofs, and may even simulate agents' next decisions through
   :meth:`repro.core.engine.Engine.peek_intended_action`;
2. the **activation scheduler** picks the non-empty set of active agents
   (FSYNC: everyone), knowing the adversary's edge choice — this matches
   the paper, where the same adversary controls both; and
3. the **algorithm**, run once per active agent, maps a local snapshot and
   the agent's memory to an action.

These are :class:`typing.Protocol` classes: implementations in
:mod:`repro.adversary`, :mod:`repro.schedulers` and :mod:`repro.algorithms`
only need the methods, not an import of a base class (duck typing keeps the
core free of dependency cycles).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Protocol, Sequence, runtime_checkable

from .actions import Action
from .memory import AgentMemory
from .snapshot import Snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .agent import AgentState
    from .engine import Engine


@runtime_checkable
class Topology(Protocol):
    """The static structure one simulation runs on (ring, torus, ...).

    The topology-generic core (:class:`repro.core.sim.SimulationCore`)
    owns the round loop, the occupancy index, the peek cache, tracing and
    the invariant audit; everything it needs to know about the *shape* of
    the network goes through this protocol.  Two implementations ship:
    :class:`repro.core.topology.RingTopology` (the paper's dynamic ring,
    ports are :class:`~repro.core.directions.GlobalDirection` tokens) and
    :class:`repro.extensions.dynamic_graph.GraphTopology` (arbitrary
    port-labelled graphs, ports are integers ``0..deg-1``).

    Port tokens must be hashable and identity-stable (the core compares
    them with ``is``/``==`` and uses them as dict keys); edge ids must be
    hashable (ints on the ring, ``frozenset({u, v})`` on graphs).

    ``oriented`` declares whether agents carry the left/right orientation
    algebra: on oriented topologies MOVE actions name a local direction
    (resolved through the agent's orientation), on unoriented ones they
    name a port token directly.
    """

    #: number of nodes (exploration completes when all are visited)
    size: int
    #: the unique observable node, or ``None`` (Section 2.1's landmark)
    landmark: Any
    #: whether agents' orientation algebra applies (rings: yes)
    oriented: bool

    def normalize(self, node: Any) -> Any:
        """Map a caller-supplied start position onto a node id."""

    def edge_from(self, node: Any, port: Hashable) -> Hashable:
        """The edge id behind ``port`` of ``node``."""

    def neighbor(self, node: Any, port: Hashable) -> Any:
        """The node reached by traversing ``port`` of ``node``."""

    def canonical_edge(self, edge: Any) -> Hashable:
        """Normalise an adversary-supplied edge id (graphs: frozenset)."""

    def validate_edge(self, edge: Any) -> None:
        """Raise ``AdversaryViolation`` unless removing ``edge`` this
        round is legal (it exists and the footprint stays connected)."""

    def validate_missing(self, missing: set) -> None:
        """Raise ``AdversaryViolation`` unless removing the whole edge
        set leaves the footprint connected (1-interval connectivity)."""

    def removable(self, edge: Any) -> bool:
        """Whether removing ``edge`` alone keeps the footprint connected
        (used by adversaries to stay inside the model's constraint)."""

    def edge_label(self, edge: Any) -> str:
        """Human-readable edge name for trace details."""

    def snapshot(self, agent: "AgentState", interior: int, holders: dict) -> Any:
        """Build the agent's Look snapshot from its node's occupancy-index
        entry (``interior`` head-count *including* the observer when it
        stands in the interior; ``holders`` maps port -> agent index)."""

    def snapshot_scan(self, agent: "AgentState", agents: Sequence["AgentState"]) -> Any:
        """Reference Look: an O(k) scan over the team (``optimized=False``)."""


@runtime_checkable
class EdgeAdversary(Protocol):
    """Chooses which single edge (if any) is missing each round.

    Adversaries that remove *sets* of edges per round (general dynamic
    graphs) instead expose ``missing_edges(engine) -> iterable`` — the
    core auto-detects which of the two methods an adversary implements.
    """

    def reset(self, engine: "Engine") -> None:
        """Called once before round 0 with the fully built engine."""

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        """Return the missing edge index for this round, or ``None``."""


@runtime_checkable
class ActivationScheduler(Protocol):
    """Chooses the non-empty activation set each round."""

    def reset(self, engine: "Engine") -> None:
        """Called once before round 0 with the fully built engine."""

    def select(self, engine: "Engine") -> set[int]:
        """Indices of agents active this round (non-terminated subset)."""


@runtime_checkable
class Algorithm(Protocol):
    """A deterministic exploration protocol, identical for all agents.

    Implementations must keep *all* per-agent state inside
    ``memory.vars`` — the algorithm object itself is shared between agents
    and must stay stateless, which is what makes adversarial look-ahead
    (``peek``) and deterministic replay possible.
    """

    name: str

    def setup(self, memory: AgentMemory) -> None:
        """Initialise ``memory.vars`` for one agent before round 0."""

    def compute(self, snapshot: Snapshot, memory: AgentMemory) -> Action:
        """The Compute step: map a Look snapshot to an action."""
