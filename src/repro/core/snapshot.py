"""Local-frame snapshots produced by the Look step.

Section 2.1: "The agent determines its own position within the node (i.e.,
whether or not it is on a port, and if so on which one), and the position of
the other agents (if any) at that node."

Snapshots are expressed in the *observing agent's* local frame, so two
agents standing at the same node but with opposite orientations see the two
ports under swapped names — exactly the asymmetry the no-chirality results
rely on.  Nothing in a snapshot identifies nodes or agents: the network and
the agents are anonymous (the landmark flag is the single exception allowed
by the model).
"""

from __future__ import annotations

from dataclasses import dataclass

from .directions import LocalDirection


@dataclass(frozen=True)
class Snapshot:
    """What one agent sees during its Look step.

    Attributes:
        on_port: where the observing agent itself stands — ``None`` for the
            node interior, otherwise the local direction of the port it
            occupies (it got there via a failed move or port acquisition).
        others_in_node: how many *other* agents stand in the node interior.
        other_on_left_port: an(other) agent occupies the port this agent
            calls *left*.
        other_on_right_port: an(other) agent occupies the port this agent
            calls *right*.
        is_landmark: this node is the landmark (always ``False`` on
            anonymous rings).
        moved: the private flag set by the agent's previous Move phase
            (``True`` iff its last traversal attempt succeeded).
        failed: the agent's previous port-acquisition attempt failed (the
            ``failed`` predicate of Section 3.1).
    """

    on_port: LocalDirection | None
    others_in_node: int
    other_on_left_port: bool
    other_on_right_port: bool
    is_landmark: bool
    moved: bool
    failed: bool

    @property
    def in_interior(self) -> bool:
        """The observing agent stands in the node interior."""
        return self.on_port is None

    def other_on_port(self, direction: LocalDirection) -> bool:
        """An(other) agent occupies the port in local ``direction``."""
        if direction is LocalDirection.LEFT:
            return self.other_on_left_port
        return self.other_on_right_port

    # -- the three predicates of Section 3 ---------------------------------

    def meeting(self) -> bool:
        """Both (or more) agents stand together in the node interior."""
        return self.in_interior and self.others_in_node > 0

    def catches(self, moving_direction: LocalDirection) -> bool:
        """Another agent sits on the port of my moving direction.

        The paper evaluates ``catches`` for an agent that is in the node and
        about to move; an agent already on a port cannot catch (the port in
        its moving direction is the one it occupies itself).
        """
        return self.in_interior and self.other_on_port(moving_direction)

    def caught(self) -> bool:
        """I am on a port after a failed move and another agent is in the node."""
        return self.on_port is not None and not self.moved and self.others_in_node > 0


#: Interning pool for :func:`intern_snapshot`.  The snapshot value space is
#: tiny — 3 positions x (k+1) neighbour counts x 2^5 flags — so the pool
#: stays bounded by the largest team ever simulated in the process, while
#: the engine's Look phase stops allocating a frozen dataclass per agent
#: per round.  Safe to share across engines: snapshots are immutable and
#: compare by value.
_INTERNED: dict[tuple, Snapshot] = {}


def intern_snapshot(
    on_port: LocalDirection | None,
    others_in_node: int,
    other_on_left_port: bool,
    other_on_right_port: bool,
    is_landmark: bool,
    moved: bool,
    failed: bool,
) -> Snapshot:
    """A shared :class:`Snapshot` instance for the given field values.

    Behaviourally identical to calling ``Snapshot(...)`` (equality, hashing
    and every predicate agree); only object identity is shared.  Algorithms
    receive snapshots read-only, so reuse is invisible to them.
    """
    key = (on_port, others_in_node, other_on_left_port, other_on_right_port,
           is_landmark, moved, failed)
    snap = _INTERNED.get(key)
    if snap is None:
        snap = Snapshot(*key)
        _INTERNED[key] = snap
    return snap
