"""Actions an agent's Compute step can return to the engine.

The paper's Compute step yields ``direction in {left, right, nil}`` plus an
implicit terminal state.  One extra action is needed to express the
communication dance of Figure 4 ("Move from the port to the node, i.e.
staying at the same node"): :data:`ENTER_NODE` steps off a port back into
the node interior without traversing anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .directions import LocalDirection


class ActionKind(enum.Enum):
    MOVE = "move"          # try to leave through a port (the paper's left/right)
    STAY = "stay"          # the paper's ``nil``: do nothing, keep position
    ENTER_NODE = "enter"   # step from a port back into the node interior
    TERMINATE = "terminate"  # enter the terminal state; never acts again


@dataclass(frozen=True)
class Action:
    """A resolved Compute result."""

    kind: ActionKind
    direction: LocalDirection | None = None

    def __post_init__(self) -> None:
        if self.kind is ActionKind.MOVE and self.direction is None:
            raise ValueError("MOVE actions need a direction")
        if self.kind is not ActionKind.MOVE and self.direction is not None:
            raise ValueError(f"{self.kind} actions must not carry a direction")


#: The two possible MOVE actions, interned: ``compute`` returns an action
#: per agent per round, so the hot loop reuses these frozen instances
#: instead of re-validating and re-allocating an identical ``Action``.
_MOVES: dict[LocalDirection, Action] = {
    d: Action(ActionKind.MOVE, d) for d in LocalDirection
}


def move(direction: LocalDirection) -> Action:
    """Attempt to traverse the edge in the agent's local ``direction``."""
    return _MOVES[LocalDirection(direction)]


#: The paper's ``nil``: stay exactly where you are (even on a port).
STAY = Action(ActionKind.STAY)

#: Step from a port into the node interior (Figure 4's FComm move).
ENTER_NODE = Action(ActionKind.ENTER_NODE)

#: Enter the terminal state: the agent stops forever.
TERMINATE = Action(ActionKind.TERMINATE)
