"""Actions an agent's Compute step can return to the engine.

The paper's Compute step yields ``direction in {left, right, nil}`` plus an
implicit terminal state.  One extra action is needed to express the
communication dance of Figure 4 ("Move from the port to the node, i.e.
staying at the same node"): :data:`ENTER_NODE` steps off a port back into
the node interior without traversing anything.

A MOVE names its port in one of two ways:

* ``direction`` — the agent's local left/right, resolved through its
  orientation by the engine (the ring algebra of Section 2.1); or
* ``port`` — a topology port token used verbatim (the port-labelled model
  of :mod:`repro.extensions.dynamic_graph`, where ports are integers
  ``0..deg-1``).

Exactly one of the two must be set; ring algorithms use ``direction``,
graph explorers use ``port`` (via :func:`move_to_port`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Hashable

from .directions import LocalDirection


class ActionKind(enum.Enum):
    MOVE = "move"          # try to leave through a port (the paper's left/right)
    STAY = "stay"          # the paper's ``nil``: do nothing, keep position
    ENTER_NODE = "enter"   # step from a port back into the node interior
    TERMINATE = "terminate"  # enter the terminal state; never acts again


@dataclass(frozen=True)
class Action:
    """A resolved Compute result."""

    kind: ActionKind
    direction: LocalDirection | None = None
    port: Any = None

    def __post_init__(self) -> None:
        if self.kind is ActionKind.MOVE:
            if (self.direction is None) == (self.port is None):
                raise ValueError(
                    "MOVE actions need exactly one of direction or port")
        elif self.direction is not None or self.port is not None:
            raise ValueError(f"{self.kind} actions must not carry a target")


#: The two possible direction MOVE actions, interned: ``compute`` returns
#: an action per agent per round, so the hot loop reuses these frozen
#: instances instead of re-validating and re-allocating an identical
#: ``Action``.  Port MOVEs are interned the same way (the port space of a
#: bounded-degree topology is tiny).
_MOVES: dict[LocalDirection, Action] = {
    d: Action(ActionKind.MOVE, d) for d in LocalDirection
}

_PORT_MOVES: dict[Hashable, Action] = {}


def move(direction: LocalDirection) -> Action:
    """Attempt to traverse the edge in the agent's local ``direction``."""
    return _MOVES[LocalDirection(direction)]


def move_to_port(port: Hashable) -> Action:
    """Attempt to traverse the edge behind topology port ``port``."""
    action = _PORT_MOVES.get(port)
    if action is None:
        action = Action(ActionKind.MOVE, port=port)
        _PORT_MOVES[port] = action
    return action


#: The paper's ``nil``: stay exactly where you are (even on a port).
STAY = Action(ActionKind.STAY)

#: Step from a port into the node interior (Figure 4's FComm move).
ENTER_NODE = Action(ActionKind.ENTER_NODE)

#: Enter the terminal state: the agent stops forever.
TERMINATE = Action(ActionKind.TERMINATE)
