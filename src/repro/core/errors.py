"""Exception hierarchy for the dynamic-ring exploration library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A simulation was configured inconsistently (bad sizes, counts, ...)."""


class ProtocolViolation(ReproError):
    """An algorithm performed an action the model forbids.

    Examples: moving after entering the terminal state, requesting a port
    from a node the agent is not at, or chaining state transitions without
    ever producing an action (a same-round transition loop).
    """


class InvariantViolation(ReproError):
    """The engine's internal consistency checks failed.

    Raised only when the engine itself is buggy (e.g. two agents on one
    port); never caused by user algorithms.
    """


class AdversaryViolation(ReproError):
    """An adversary broke the rules of the model.

    Examples: removing more than one edge in a round (violating
    1-interval connectivity) or an SSYNC scheduler activating no agent.
    """
