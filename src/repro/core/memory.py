"""Runtime counters each agent maintains (Sections 3 and 4 of the paper).

The paper's algorithms consult a small set of bookkeeping variables:

* ``Ttime`` / ``Tsteps`` — activations completed / successful edge
  traversals since the start of the protocol.  Under FSYNC an agent is
  active every round, so ``Ttime`` equals the number of elapsed rounds.
* ``Etime`` / ``Esteps`` — the same, but counted since the last call of
  procedure ``Explore`` (i.e. since the current state was entered).  The
  ``ExploreNoResetEsteps`` variant of Figure 18 keeps ``Esteps`` across a
  transition; the framework implements that by skipping the reset.
* ``Btime`` — consecutive activations spent waiting on a port after a
  failed traversal.
* ``Tnodes`` — the perceived exploration span.  We maintain the signed net
  displacement (in the agent's local frame; +1 per successful *right* move)
  and define ``Tnodes = max(net) - min(net)``, the number of *edges* the
  agent has provably covered.  See DESIGN.md ("Model semantics pinned
  down") for why the edge-span reading is the one that makes every use in
  the paper simultaneously sound.
* landmark tracking (the ``LExplore`` additions of Section 3.2.2) — net
  displacement at the first landmark visit; ``size`` becomes the ring size
  the first time the agent stands at the landmark with a different net
  displacement (it has necessarily closed a full loop); ``Ntime`` counts
  activations since ``size`` became known.

Every counter is a pure function of the agent's own observation history, so
the engine maintains them centrally instead of trusting each algorithm to
re-implement the bookkeeping.  Algorithms read them through
:class:`AgentMemory` and own only their private variables (state, guesses,
IDs, ...) in :attr:`AgentMemory.vars`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .directions import LocalDirection


@dataclass(slots=True)
class AgentMemory:
    """Counters plus algorithm-private storage for a single agent.

    Slotted: one instance lives per agent for the whole run and its
    counters are read/written every round by both the engine and the
    algorithms' predicates, so fixed-slot attribute access (and the
    smaller footprint) is worth giving up ``__dict__``.
    """

    # -- protocol-wide counters -------------------------------------------
    Ttime: int = 0
    Tsteps: int = 0

    # -- per-Explore-call counters ----------------------------------------
    Etime: int = 0
    Esteps: int = 0

    # -- blocking / move-attempt bookkeeping -------------------------------
    Btime: int = 0
    moved: bool = False
    failed: bool = False

    # -- perceived exploration span ----------------------------------------
    net: int = 0
    min_net: int = 0
    max_net: int = 0

    # -- landmark tracking (LExplore) ---------------------------------------
    landmark_seen: bool = False
    landmark_first_net: int = 0
    size: int | None = None
    Ntime: int = 0

    # -- algorithm-private variables ----------------------------------------
    vars: dict[str, Any] = field(default_factory=dict)

    # -- derived quantities --------------------------------------------------

    @property
    def Tnodes(self) -> int:
        """Perceived covered span, in edges (see module docstring)."""
        return self.max_net - self.min_net

    @property
    def size_known(self) -> bool:
        """The paper's "n is known" predicate."""
        return self.size is not None

    # -- copying -------------------------------------------------------------

    def clone(self) -> "AgentMemory":
        """A cheap copy safe to hand to a speculative ``Compute``.

        The engine's ``peek_intended_action`` (and through it every
        omniscient adversary) simulates an agent's next Compute against a
        throwaway memory — ``copy.deepcopy`` there dominated the peek hot
        path before the engine's peek cache existed, and cache misses
        still take this path.  The counters are immutable scalars, so a
        slot-by-slot copy covers them; ``vars`` gets a fresh dict with
        one level of container copying, which isolates everything the
        paper's algorithms do to it (they rebind keys, and the only
        non-scalar values — direction enums, ``DirectionSchedule`` — are
        immutable after construction).  An algorithm that nests *mutable*
        state deeper than one container level must not mutate it in
        place during Compute.
        """
        clone = AgentMemory.__new__(AgentMemory)
        for name in _SCALAR_SLOTS:
            setattr(clone, name, getattr(self, name))
        clone.vars = {
            key: value.copy() if isinstance(value, (dict, list, set)) else value
            for key, value in self.vars.items()
        }
        return clone

    # -- updates driven by the engine ---------------------------------------

    def record_traversal(self, direction: LocalDirection | None) -> None:
        """Account for one successful edge traversal (active or passive).

        ``direction`` is the traversal in the agent's local frame; on
        unoriented topologies (no left/right algebra) it is ``None`` and
        the net-displacement tracking is skipped — ``Tnodes`` stays 0,
        every step/clock counter still advances.
        """
        self.Tsteps += 1
        self.Esteps += 1
        if direction is not None:
            if direction is LocalDirection.RIGHT:
                self.net += 1
            else:
                self.net -= 1
            if self.net > self.max_net:
                self.max_net = self.net
            elif self.net < self.min_net:
                self.min_net = self.net
        self.moved = True
        self.Btime = 0

    def record_blocked(self) -> None:
        """Account for an activation spent waiting on a missing edge."""
        self.moved = False
        self.Btime += 1

    def tick(self) -> None:
        """Advance the per-activation clocks (end of an active round)."""
        self.Ttime += 1
        self.Etime += 1
        if self.size is not None:
            self.Ntime += 1

    def observe_landmark(self) -> None:
        """Record standing at the landmark node (interior or port)."""
        if not self.landmark_seen:
            self.landmark_seen = True
            self.landmark_first_net = self.net
            return
        if self.size is None and self.net != self.landmark_first_net:
            self.size = abs(self.net - self.landmark_first_net)

    # -- updates driven by the algorithm framework ---------------------------

    def reset_explore(self, *, keep_esteps: bool = False) -> None:
        """A new ``Explore`` call begins (state entry).

        ``keep_esteps=True`` implements ``ExploreNoResetEsteps``
        (Figure 18): the step counter survives the transition while the
        clock still restarts.
        """
        self.Etime = 0
        if not keep_esteps:
            self.Esteps = 0


#: Every slot ``clone`` copies verbatim (all fields except ``vars``,
#: which needs its one-level container copy).  Computed once at import.
_SCALAR_SLOTS = tuple(
    f.name for f in AgentMemory.__dataclass_fields__.values() if f.name != "vars"
)
