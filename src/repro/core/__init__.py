"""Core substrate: dynamic ring, agents, engine, snapshots, results."""

from .actions import Action, ActionKind, ENTER_NODE, STAY, TERMINATE, move
from .agent import AgentState
from .directions import (
    CANONICAL,
    GlobalDirection,
    LEFT,
    LocalDirection,
    MINUS,
    MIRRORED,
    Orientation,
    PLUS,
    RIGHT,
    orientations_for,
)
from .engine import Engine, TransportModel
from .sim import MAX_ROUNDS_LIMIT, SimulationCore
from .topology import RingTopology
from .errors import (
    AdversaryViolation,
    ConfigurationError,
    InvariantViolation,
    ProtocolViolation,
    ReproError,
)
from .memory import AgentMemory
from .results import AgentStats, RunResult, TerminationMode
from .ring import MIN_RING_SIZE, Ring
from .snapshot import Snapshot
from .trace import Event, EventKind, Trace

__all__ = [
    "Action",
    "ActionKind",
    "AgentMemory",
    "AgentState",
    "AgentStats",
    "AdversaryViolation",
    "CANONICAL",
    "ConfigurationError",
    "ENTER_NODE",
    "Engine",
    "Event",
    "EventKind",
    "GlobalDirection",
    "InvariantViolation",
    "LEFT",
    "LocalDirection",
    "MAX_ROUNDS_LIMIT",
    "MIN_RING_SIZE",
    "MINUS",
    "MIRRORED",
    "Orientation",
    "PLUS",
    "ProtocolViolation",
    "ReproError",
    "RIGHT",
    "Ring",
    "RingTopology",
    "RunResult",
    "SimulationCore",
    "Snapshot",
    "STAY",
    "TERMINATE",
    "TerminationMode",
    "Trace",
    "TransportModel",
    "move",
    "orientations_for",
]
