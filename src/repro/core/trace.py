"""Structured event tracing for simulations.

Tracing is optional: the engine only emits events when a :class:`Trace`
is attached, so large parameter sweeps pay nothing.  Events are small
tuples-with-names designed for debugging algorithm/adversary interplay and
for the narrated timelines printed by the examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator


class EventKind(enum.Enum):
    ROUND = "round"              # round began: payload = missing edge, active set
    MOVE = "move"                # agent traversed an edge
    BLOCKED = "blocked"          # agent waited on the missing edge
    PORT_DENIED = "port-denied"  # port acquisition failed (mutual exclusion)
    TRANSPORT = "transport"      # PT model moved a sleeping agent
    ENTER_NODE = "enter-node"    # agent stepped from a port into the interior
    TRANSITION = "transition"    # algorithm state change
    TERMINATE = "terminate"      # agent entered the terminal state
    CRASH = "crash"              # agent crashed (fault injection)
    EXPLORED = "explored"        # every node has now been visited


@dataclass(frozen=True)
class Event:
    round: int
    kind: EventKind
    agent: int | None = None
    detail: Any = None

    def __str__(self) -> str:
        who = f" a{self.agent}" if self.agent is not None else ""
        what = f" {self.detail}" if self.detail is not None else ""
        return f"[r{self.round:>5}]{who} {self.kind.value}{what}"


class Trace:
    """An append-only event log with an optional size cap.

    When ``limit`` is reached the trace silently stops recording (the
    ``truncated`` flag reports it); simulations never fail because a trace
    filled up.
    """

    def __init__(self, limit: int | None = 100_000) -> None:
        self._events: list[Event] = []
        self._limit = limit
        self.truncated = False

    def emit(self, event: Event) -> None:
        if self._limit is not None and len(self._events) >= self._limit:
            self.truncated = True
            return
        self._events.append(event)

    @property
    def events(self) -> list[Event]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self._events if e.kind is kind]

    def for_agent(self, agent: int) -> list[Event]:
        return [e for e in self._events if e.agent == agent]

    def render(self, *, last: int | None = None) -> str:
        """Multi-line text rendering (optionally only the ``last`` events)."""
        events = self._events if last is None else self._events[-last:]
        lines = [str(e) for e in events]
        if self.truncated:
            lines.append("... trace truncated ...")
        return "\n".join(lines)
