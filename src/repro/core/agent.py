"""Engine-side record of a single mobile agent.

Agents in the model are anonymous and all run the same protocol; the
``index`` stored here exists purely for the engine, schedulers and
adversaries (which *are* allowed to distinguish agents) and is never exposed
to the algorithm through a snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .directions import GlobalDirection, LocalDirection, Orientation
from .memory import AgentMemory


@dataclass
class AgentState:
    """Position, orientation and memory of one agent.

    ``port`` is ``None`` while the agent stands in the node interior;
    otherwise it is the *global* direction of the port of ``node`` the
    agent occupies (``PLUS`` = the port toward ``node + 1``).
    """

    index: int
    orientation: Orientation
    node: int
    port: GlobalDirection | None = None
    terminated: bool = False
    memory: AgentMemory = field(default_factory=AgentMemory)

    # Scheduler bookkeeping: rounds since last activation (fairness).
    rounds_since_active: int = 0
    activations: int = 0

    @property
    def on_port(self) -> bool:
        return self.port is not None

    def local_port(self) -> LocalDirection | None:
        """The occupied port expressed in this agent's own frame."""
        if self.port is None:
            return None
        return self.orientation.to_local(self.port)

    def global_direction(self, local: LocalDirection) -> GlobalDirection:
        return self.orientation.to_global(local)

    def describe(self) -> str:
        """Human-readable position (for traces and examples)."""
        if self.terminated:
            state = "terminated"
        elif self.port is GlobalDirection.PLUS:
            state = "on +port"
        elif self.port is GlobalDirection.MINUS:
            state = "on -port"
        else:
            state = "in node"
        return f"agent{self.index}@v{self.node} ({state})"
