"""Engine-side record of a single mobile agent.

Agents in the model are anonymous and all run the same protocol; the
``index`` stored here exists purely for the engine, schedulers and
adversaries (which *are* allowed to distinguish agents) and is never exposed
to the algorithm through a snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .directions import GlobalDirection, LocalDirection, Orientation
from .memory import AgentMemory


@dataclass(slots=True)
class AgentState:
    """Position, orientation and memory of one agent.

    ``port`` is ``None`` while the agent stands in the node interior;
    otherwise it is the *global* direction of the port of ``node`` the
    agent occupies (``PLUS`` = the port toward ``node + 1``).

    ``left_global``/``right_global`` cache the agent's fixed frame mapping:
    the Look phase consults them once per snapshot, so the orientation
    algebra runs once per agent instead of once per observation.  The class
    is slotted — every field is hot-path state touched each round.
    """

    index: int
    orientation: Orientation
    node: int
    port: GlobalDirection | None = None
    terminated: bool = False
    # Fault injection: a crashed agent is removed from the configuration
    # (no snapshot sees it, no scheduler activates it) but stays in
    # ``agents`` so indexes remain stable.
    crashed: bool = False
    memory: AgentMemory = field(default_factory=AgentMemory)

    # Scheduler bookkeeping: rounds since last activation (fairness).
    rounds_since_active: int = 0
    activations: int = 0

    # Frame cache (derived from the immutable orientation).
    left_global: GlobalDirection = field(init=False)
    right_global: GlobalDirection = field(init=False)

    def __post_init__(self) -> None:
        self.left_global = self.orientation.to_global(LocalDirection.LEFT)
        self.right_global = self.left_global.opposite

    @property
    def on_port(self) -> bool:
        return self.port is not None

    def local_port(self) -> LocalDirection | None:
        """The occupied port expressed in this agent's own frame."""
        if self.port is None:
            return None
        return LocalDirection.LEFT if self.port is self.left_global else LocalDirection.RIGHT

    def global_direction(self, local: LocalDirection) -> GlobalDirection:
        return self.orientation.to_global(local)

    def describe(self) -> str:
        """Human-readable position (for traces and examples)."""
        if self.crashed:
            state = "crashed"
        elif self.terminated:
            state = "terminated"
        elif self.port is GlobalDirection.PLUS:
            state = "on +port"
        elif self.port is GlobalDirection.MINUS:
            state = "on -port"
        else:
            state = "in node"
        return f"agent{self.index}@v{self.node} ({state})"
