"""The topology-generic simulation core.

One round loop runs every topology.  The computational model is the
paper's (Section 2.1), with the ring specialised out into a
:class:`~repro.core.interfaces.Topology` implementation:

* discrete rounds; the adversary removes an edge set that keeps the
  footprint connected (on the ring: at most one edge — 1-interval
  connectivity by construction; on general graphs the topology validates
  connectivity explicitly);
* a non-empty subset of agents activated per round (FSYNC = all of them),
  chosen by a scheduler that may itself be adversarial;
* per active agent: Look (simultaneous local snapshots), Compute (the
  algorithm), Move (port mutual exclusion, traversal, blocking);
* the three SSYNC transport models — NS, PT, ET — governing what happens
  to an agent that sleeps while positioned on a port.

Round anatomy (ordering decisions documented in DESIGN.md):

1. the adversary picks the missing edge set (single-edge adversaries
   implement ``choose_missing_edge``, set adversaries ``missing_edges``;
   the topology validates the choice);
2. the scheduler picks the activation set (it already sees the edge
   choice, like the single adversary of the paper that controls both);
3. every active agent Looks at the configuration *as of the start of the
   round* and Computes an action — decisions are simultaneous;
4. actions resolve: terminations, port releases (``ENTER_NODE``) and port
   acquisitions in mutual exclusion — a port occupied at the start of the
   round is denied to new requesters for the whole round, contention among
   new requesters is broken by a pluggable policy (default: lowest index);
5. Move: every active agent standing on the port it requested traverses if
   the edge is present, otherwise it stays blocked on the port; under PT
   every *sleeping* agent on a port of a present edge is passively
   transported across;
6. bookkeeping: counters tick for active agents, landmark observations and
   visited-set updates happen for agents that arrived at a node.

Agents that crossed the same edge in opposite directions simply swap —
the model says they "might not be able to detect each other", and no
snapshot ever exposes the encounter.

Hot path (see ARCHITECTURE.md, "Engine hot path")
-------------------------------------------------

The round loop is built around an **incrementally maintained occupancy
index** ``_occ`` (``node -> [interior count, {port: holder}]``), updated
at every position change, so a Look snapshot is O(1) per agent instead of
an O(k) scan over the team.  On top of it sit a **peek cache** (an
adversary's ``peek_intended_action`` result stays valid until the agent's
memory or position, or its node's occupancy, changes), **snapshot
interning** (the Look phase reuses frozen snapshot instances — the
topology owns the snapshot type), and an allocation-audited round loop
(scratch containers are reused, trace details are only built when a
trace is attached, the live-agent set is maintained instead of rebuilt).
``optimized=False`` keeps the original scan-per-snapshot semantics as an
executable reference; the equivalence tests in
``tests/core/test_hotpath_equivalence.py`` assert both paths produce
identical event streams and results, and the golden fixture in
``tests/core/golden_ring_traces.json`` pins ring behaviour to the
pre-refactor engine byte for byte.
"""

from __future__ import annotations

import enum
import os
import sys
from typing import Any, Callable, Iterable, Sequence

from .actions import Action, ActionKind, STAY
from .agent import AgentState
from .directions import LocalDirection, Orientation, CANONICAL
from .errors import AdversaryViolation, ConfigurationError, InvariantViolation
from .interfaces import ActivationScheduler, Algorithm, Topology
from .memory import AgentMemory
from .results import AgentStats, RunResult
from .trace import Event, EventKind

_LEFT = LocalDirection.LEFT
_RIGHT = LocalDirection.RIGHT


class TransportModel(enum.Enum):
    """What happens to an agent sleeping on a port (Section 2.1).

    ``NS`` — no simultaneity: a sleeping agent never moves.
    ``PT`` — passive transport: a sleeping agent on a port of a present
    edge is carried across during that round.
    ``ET`` — eventual transport: like NS, but the *scheduler* must
    guarantee that an agent sleeping on a port of an infinitely-often
    present edge is eventually activated in a round where the edge is
    present (see :class:`repro.schedulers.ssync.ETFairScheduler`).

    Under FSYNC nobody ever sleeps, so the choice is irrelevant there.
    """

    NS = "ns"
    PT = "pt"
    ET = "et"


#: Safety valve for same-round state-transition chains inside algorithms.
MAX_ROUNDS_LIMIT = 100_000_000


def _default_tie_break(contenders: Sequence[int]) -> int:
    """Default port-contention winner: the lowest agent index."""
    return min(contenders)


def _default_debug_invariants() -> bool:
    """Per-round invariant checking defaults on under pytest, off elsewhere.

    Campaigns pass the flag explicitly per cell
    (:attr:`repro.campaigns.spec.CellConfig.debug_invariants`), so sweep
    throughput never pays for the audit unless a cell asks for it.
    """
    return "PYTEST_CURRENT_TEST" in os.environ or "pytest" in sys.modules


class SimulationCore:
    """A single simulation of one algorithm on one dynamic topology.

    The facades — :class:`repro.core.engine.Engine` (ring) and
    :class:`repro.extensions.dynamic_graph.DynamicGraphEngine` (arbitrary
    port-labelled graphs) — are thin constructors over this class; every
    scheduler, transport model, termination mode, adversary hook and both
    Look paths live here once, for all topologies.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        positions: Sequence[Any],
        *,
        orientations: Sequence[Orientation] | None = None,
        scheduler: ActivationScheduler,
        adversary,
        transport: TransportModel = TransportModel.NS,
        trace=None,
        port_tie_break: Callable[[Sequence[int]], int] = _default_tie_break,
        debug_invariants: bool | None = None,
        optimized: bool = True,
    ) -> None:
        if not positions:
            raise ConfigurationError("at least one agent is required")
        if orientations is None:
            orientations = [CANONICAL] * len(positions)
        if len(orientations) != len(positions):
            raise ConfigurationError(
                f"{len(positions)} positions but {len(orientations)} orientations"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.adversary = adversary
        self.transport = TransportModel(transport)
        self.trace = trace
        # Optional obs PhaseTimer; attach via set_instrument().  The
        # plain `step` never consults it — the instrumented twin is
        # swapped in per instance, so the disabled path stays
        # byte-identical to the uninstrumented engine.
        self.instrument = None
        self._tie_break = port_tie_break
        self._optimized = bool(optimized)
        self._debug = (
            _default_debug_invariants() if debug_invariants is None
            else bool(debug_invariants)
        )
        self._landmark = topology.landmark
        self._oriented = bool(topology.oriented)
        # Adversaries declare their interface by method: single-edge
        # (``choose_missing_edge``) or edge-set (``missing_edges``).
        self._multi_adversary = hasattr(adversary, "missing_edges")

        # -- occupancy index + hot-path state (invariants in ARCHITECTURE.md):
        # _occ[node] == [interior count, {port: holder index}] for every
        # node hosting at least one agent (terminated agents stay in the
        # index: the Look phase still sees them); _node_version[node]
        # increases monotonically on every occupancy change at that node
        # and is never reset, so peek-cache entries can never alias across
        # visits; _live mirrors {a.index : not a.terminated}.
        self._occ: dict[Any, list] = {}
        self._node_version: dict[Any, int] = {}
        self._live: set[int] = set()
        self._peek_cache: dict[int, tuple] = {}
        # Fault injection (repro.resilience.faults): attach via
        # set_fault_plan().  ``None`` keeps every fault branch dead so
        # fault-free runs execute exactly the pre-resilience loop.
        self.faults = None
        self._crashed: set[int] = set()
        # Reused per-round scratch containers (allocation audit).
        self._decisions: dict[int, Action] = {}
        self._requests: dict[tuple, list[int]] = {}
        self._movers: set[int] = set()
        self._released: set[tuple] = set()
        self._missing: set = set()

        self.agents: list[AgentState] = []
        for index, (node, orientation) in enumerate(zip(positions, orientations)):
            agent = AgentState(
                index=index,
                orientation=orientation,
                node=topology.normalize(node),
                memory=AgentMemory(),
            )
            self.agents.append(agent)
            self._live.add(index)
            entry = self._occ.get(agent.node)
            if entry is None:
                self._occ[agent.node] = [1, {}]
            else:
                entry[0] += 1
            self._node_version[agent.node] = self._node_version.get(agent.node, 0) + 1

        self.round_no = 0
        self.missing_edge = None
        self.visited: set = set()
        self.exploration_round: int | None = None
        self.termination_rounds: dict[int, int] = {}
        self.last_active: set[int] = set()

        for agent in self.agents:
            self.algorithm.setup(agent.memory)
            self.visited.add(agent.node)
            if agent.node == self._landmark:
                agent.memory.observe_landmark()
        if len(self.visited) == self.topology.size:
            self.exploration_round = 0
        self.adversary.reset(self)
        self.scheduler.reset(self)

    # ------------------------------------------------------------------
    # read API (used by adversaries, schedulers, analysis)
    # ------------------------------------------------------------------

    @property
    def exploration_complete(self) -> bool:
        return len(self.visited) == self.topology.size

    @property
    def live_agents(self) -> list[AgentState]:
        return [a for a in self.agents if not a.terminated and not a.crashed]

    @property
    def live_indexes(self) -> set[int]:
        """Indexes of non-terminated agents (maintained; do not mutate)."""
        return self._live

    @property
    def all_terminated(self) -> bool:
        return not self._live

    def set_fault_plan(self, injector) -> None:
        """Attach (or detach) a fault injector to the round loop.

        ``injector`` is a :class:`repro.resilience.faults.FaultInjector`
        (one per run — it owns the stochastic clause's RNG stream).  With
        no injector attached the loop never touches a fault branch, so
        fault-free runs stay byte-identical to the pre-resilience engine.
        """
        self.faults = injector

    @property
    def missing_edges(self) -> set:
        """This round's missing edge set (empty when nothing is removed).

        ``missing_edge`` remains the scalar view for single-edge rounds
        (the paper's ring model); this is the general form schedulers and
        adversaries should consult via :meth:`edge_present`.
        """
        return self._missing

    def edge_present(self, edge) -> bool:
        """Whether ``edge`` is present in this round's footprint."""
        return edge not in self._missing

    def port_edge(self, agent: AgentState):
        """The edge the agent's occupied port leads to (``None`` if in a node)."""
        if agent.port is None:
            return None
        return self.topology.edge_from(agent.node, agent.port)

    def snapshot_for(self, agent: AgentState):
        """Build the agent's Look snapshot of the current configuration.

        On the optimized path this is an O(1) read of the occupancy index;
        ``optimized=False`` keeps the original O(k) scan as the executable
        reference the equivalence tests compare against.  The snapshot
        *type* is topology-owned (ring: :class:`~repro.core.snapshot.Snapshot`,
        graphs: :class:`~repro.extensions.dynamic_graph.GraphSnapshot`).
        """
        if not self._optimized:
            return self._snapshot_for_scan(agent)
        interior, holders = self._occ[agent.node]
        return self.topology.snapshot(agent, interior, holders)

    def _snapshot_for_scan(self, agent: AgentState):
        """Reference implementation: O(k) scan over the team (pre-index)."""
        agents = self.agents
        if self._crashed:
            # A crashed agent vanished from the configuration; the scan
            # must agree with the occupancy index it is checked against.
            agents = [a for a in agents if not a.crashed]
        return self.topology.snapshot_scan(agent, agents)

    def peek_intended_action(self, index: int) -> Action:
        """Simulate the agent's next Compute without side effects.

        This is the omniscience the paper's adversaries enjoy: protocols
        are deterministic, so an adversary that knows the algorithm can
        always work out what an agent would do if activated now.

        Adversaries call this for every agent every round, so results are
        cached: a peek is a pure function of the agent's snapshot and
        memory, so a cached action stays valid until the agent's memory or
        position changes (the engine drops entries for agents that were
        active or passively transported) or the occupancy of its node
        changes (detected via the node's monotonic version counter).  A
        cache miss still pays one :meth:`AgentMemory.clone` plus one
        speculative Compute — see ``benchmarks/bench_engine_hotpath.py``
        for what the cache is worth under the peek-heavy adversaries.
        """
        agent = self.agents[index]
        if agent.terminated or agent.crashed:
            return STAY
        if not self._optimized:
            snapshot = self.snapshot_for(agent)
            return self.algorithm.compute(snapshot, agent.memory.clone())
        return self._peek_entry(agent)[0]

    def peek_intended_edge(self, index: int):
        """The edge the agent would try to traverse if activated now.

        ``None`` when the agent is terminated or its intended action is
        not a MOVE.  This is the derived quantity every look-ahead
        adversary actually wants (see :mod:`repro.adversary.blocking`,
        :mod:`repro.adversary.impossibility`,
        :mod:`repro.adversary.worst_case` and
        :mod:`repro.analysis.model_check`); the edge is resolved once per
        cached peek instead of per call.
        """
        agent = self.agents[index]
        if agent.terminated or agent.crashed:
            return None
        if not self._optimized:
            intent = self.peek_intended_action(index)
            if intent.kind is not ActionKind.MOVE:
                return None
            return self.topology.edge_from(
                agent.node, self._move_target(agent, intent))
        return self._peek_entry(agent)[4]

    def _move_target(self, agent: AgentState, action: Action):
        """The port a MOVE action aims at (local direction or port token)."""
        direction = action.direction
        if direction is not None:
            return agent.left_global if direction is _LEFT else agent.right_global
        return action.port

    def _peek_entry(self, agent: AgentState) -> tuple:
        """The agent's cached ``(action, node, port, version, edge)`` peek.

        Valid while the agent's position and its node's occupancy version
        are unchanged (memory changes drop the entry, see
        :meth:`_end_of_round` and :meth:`_move_phase`).
        """
        index = agent.index
        node = agent.node
        version = self._node_version.get(node, 0)
        entry = self._peek_cache.get(index)
        if (
            entry is not None
            and entry[1] == node
            and entry[2] is agent.port
            and entry[3] == version
        ):
            return entry
        snapshot = self.snapshot_for(agent)
        action = self.algorithm.compute(snapshot, agent.memory.clone())
        if action.kind is ActionKind.MOVE:
            edge = self.topology.edge_from(node, self._move_target(agent, action))
        else:
            edge = None
        entry = (action, node, agent.port, version, edge)
        self._peek_cache[index] = entry
        return entry

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one round; returns ``False`` if no live agent remains."""
        if not self._live:
            return False
        if self.faults is not None:
            self._apply_round_faults()
            if not self._live:
                return False

        missing = self._choose_missing()
        active = self._validated_activation(self.scheduler.select(self))
        self.last_active = active
        if self.trace is not None:
            detail = (
                self.missing_edge if len(missing) <= 1
                else tuple(sorted(missing, key=repr))
            )
            self._emit(EventKind.ROUND, None, (detail, tuple(sorted(active))))

        decisions = self._look_compute(active)
        movers = self._resolve_actions(decisions)
        self._move_phase(movers)
        self._end_of_round(active, movers)
        self.round_no += 1
        return True

    def _look_compute(self, active: set[int]) -> dict[int, Action]:
        """Look (simultaneous) + Compute for every active agent.

        Agent decisions are mutually independent — a Compute only
        mutates its own agent's memory and no snapshot reads any memory
        but the observer's — so the optimized path fuses Look and
        Compute per agent; the reference path keeps the original
        two-pass shape.
        """
        decisions = self._decisions
        decisions.clear()
        algorithm = self.algorithm
        agents = self.agents
        if self._optimized:
            for i in active:
                agent = agents[i]
                snapshot = self.snapshot_for(agent)
                agent.memory.failed = False
                decisions[i] = algorithm.compute(snapshot, agent.memory)
        else:
            snapshots = {i: self.snapshot_for(agents[i]) for i in active}
            for i in active:
                agent = agents[i]
                agent.memory.failed = False
                decisions[i] = algorithm.compute(snapshots[i], agent.memory)
        return decisions

    def set_instrument(self, instrument) -> None:
        """Attach (or detach) an obs ``PhaseTimer`` to the round loop.

        Instrumentation swaps :meth:`step` for :meth:`_step_instrumented`
        on this *instance*, so an engine without an instrument executes
        exactly the code it executed before observability existed —
        that is the "near-zero cost when disabled" contract the
        ``obs_overhead`` bench guard enforces.
        """
        self.instrument = instrument
        if instrument is not None:
            self.step = self._step_instrumented
        else:
            self.__dict__.pop("step", None)

    def _step_instrumented(self) -> bool:
        """`step` twin with per-phase wall-clock accounting.

        Must mirror :meth:`step` exactly (asserted by
        ``tests/obs/test_instrumented_step.py``); timings accumulate as
        plain floats on the :class:`~repro.obs.metrics.PhaseTimer` and
        are folded into histograms once per run by the executor.
        """
        from time import perf_counter

        if not self._live:
            return False
        if self.faults is not None:
            self._apply_round_faults()
            if not self._live:
                return False

        instr = self.instrument
        t0 = perf_counter()
        missing = self._choose_missing()
        active = self._validated_activation(self.scheduler.select(self))
        self.last_active = active
        if self.trace is not None:
            detail = (
                self.missing_edge if len(missing) <= 1
                else tuple(sorted(missing, key=repr))
            )
            self._emit(EventKind.ROUND, None, (detail, tuple(sorted(active))))
        t1 = perf_counter()
        instr.adversary += t1 - t0

        decisions = self._look_compute(active)
        t2 = perf_counter()
        instr.look_compute += t2 - t1

        movers = self._resolve_actions(decisions)
        self._move_phase(movers)
        t3 = perf_counter()
        instr.move += t3 - t2

        self._end_of_round(active, movers)
        instr.end_of_round += perf_counter() - t3
        instr.rounds += 1
        self.round_no += 1
        return True

    def run(
        self,
        max_rounds: int,
        *,
        stop_on_exploration: bool = False,
        stop_when: Callable[["SimulationCore"], bool] | None = None,
    ) -> RunResult:
        """Run until everyone terminated, a stop condition, or the horizon."""
        if not 0 < max_rounds <= MAX_ROUNDS_LIMIT:
            raise ConfigurationError(f"max_rounds must be in (0, {MAX_ROUNDS_LIMIT}]")
        reason = "horizon"
        for _ in range(max_rounds):
            if self.all_terminated:
                reason = self._halt_reason()
                break
            if stop_on_exploration and self.exploration_complete:
                reason = "explored"
                break
            if stop_when is not None and stop_when(self):
                reason = "stop-condition"
                break
            self.step()
        else:
            if self.all_terminated:
                reason = self._halt_reason()
            elif stop_on_exploration and self.exploration_complete:
                reason = "explored"
        return self._build_result(reason)

    def _halt_reason(self) -> str:
        """Why the live set emptied: survivor census semantics.

        Termination re-anchors on the surviving agents — a run whose
        every *survivor* terminated halts ``all-terminated`` exactly as
        a fault-free run would; a run that crashed its whole team halts
        ``all-crashed`` (nobody is left to certify anything).
        """
        if self._crashed and len(self._crashed) == len(self.agents):
            return "all-crashed"
        return "all-terminated"

    # ------------------------------------------------------------------
    # occupancy-index maintenance
    # ------------------------------------------------------------------
    # Exactly three kinds of position change exist, each with one helper;
    # every helper bumps the touched nodes' version counters so cached
    # peeks of co-located agents are invalidated.

    def _occ_acquire_port(self, agent: AgentState, target) -> None:
        """Interior (or the other port) -> ``target`` port, same node."""
        node = agent.node
        entry = self._occ[node]
        holders = entry[1]
        old_port = agent.port
        if old_port is None:
            entry[0] -= 1
        else:
            del holders[old_port]
            self._released.add((node, old_port))
        holders[target] = agent.index
        versions = self._node_version
        versions[node] = versions.get(node, 0) + 1

    def _occ_vacate_port(self, agent: AgentState) -> None:
        """Port -> interior of the same node (``ENTER_NODE``)."""
        node = agent.node
        entry = self._occ[node]
        del entry[1][agent.port]
        entry[0] += 1
        self._released.add((node, agent.port))
        versions = self._node_version
        versions[node] = versions.get(node, 0) + 1

    def _occ_traverse(self, agent: AgentState, new_node) -> None:
        """Port of ``agent.node`` -> interior of ``new_node``."""
        node = agent.node
        entry = self._occ[node]
        holders = entry[1]
        del holders[agent.port]
        if entry[0] == 0 and not holders:
            del self._occ[node]
        dest = self._occ.get(new_node)
        if dest is None:
            self._occ[new_node] = [1, {}]
        else:
            dest[0] += 1
        versions = self._node_version
        versions[node] = versions.get(node, 0) + 1
        versions[new_node] = versions.get(new_node, 0) + 1

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def _apply_round_faults(self) -> None:
        """Crash the agents the fault plan dooms at this round's start.

        Runs before the adversary moves and before the scheduler selects
        (a dead agent can neither be activated nor observed), with the
        live set passed in sorted order so the stochastic clause's draw
        sequence is deterministic.
        """
        doomed = self.faults.crashes_at_round(self.round_no, sorted(self._live))
        for i in doomed:
            self._crash(self.agents[i])

    def _crash(self, agent: AgentState) -> None:
        """Remove one agent from the configuration, permanently.

        A crashed agent releases its occupancy (a dead robot must not
        hold a port against the mutual-exclusion rule forever), leaves
        the live set, and is invisible to every later Look snapshot —
        on both the indexed and the reference scan path.
        """
        node = agent.node
        entry = self._occ[node]
        if agent.port is None:
            entry[0] -= 1
        else:
            del entry[1][agent.port]
        if entry[0] == 0 and not entry[1]:
            del self._occ[node]
        versions = self._node_version
        versions[node] = versions.get(node, 0) + 1
        agent.crashed = True
        agent.port = None
        index = agent.index
        self._live.discard(index)
        self._crashed.add(index)
        self._peek_cache.pop(index, None)
        if self.trace is not None:
            self._emit(EventKind.CRASH, index, f"at v{node}")

    # ------------------------------------------------------------------
    # round phases
    # ------------------------------------------------------------------

    def _choose_missing(self) -> set:
        """Consult the adversary and validate its removal against the model."""
        missing = self._missing
        missing.clear()
        topology = self.topology
        if self._multi_adversary:
            for edge in self.adversary.missing_edges(self):
                missing.add(topology.canonical_edge(edge))
            if missing:
                topology.validate_missing(missing)
        else:
            edge = self.adversary.choose_missing_edge(self)
            if edge is not None:
                topology.validate_edge(edge)
                missing.add(edge)
        self.missing_edge = next(iter(missing)) if len(missing) == 1 else None
        return missing

    def _resolve_actions(self, decisions: dict[int, Action]) -> set[int]:
        """Apply terminations/releases and resolve port mutual exclusion.

        Returns the set of agents positioned on the port they asked to
        traverse this round (the Move-phase participants).

        Port denial rule: a port occupied at the *start* of the round is
        denied to new requesters all round.  The optimized path answers
        "occupied at start?" from the live index plus ``_released`` (the
        ports vacated earlier in this very call — explicitly by
        ``ENTER_NODE`` or implicitly by an agent winning the opposite
        port); the reference path snapshots the start set up front.
        """
        optimized = self._optimized
        self._released.clear()
        if optimized:
            occupied_at_start = None
        else:
            occupied_at_start = {
                (a.node, a.port) for a in self.agents if a.port is not None
            }
        movers = self._movers
        movers.clear()
        requests = self._requests
        requests.clear()
        trace = self.trace

        for i, action in decisions.items():
            agent = self.agents[i]
            kind = action.kind
            if kind is ActionKind.STAY:
                continue
            if kind is ActionKind.MOVE:
                direction = action.direction
                if direction is not None:
                    target = (
                        agent.left_global if direction is _LEFT else agent.right_global
                    )
                else:
                    target = action.port
                if agent.port is target:
                    movers.add(i)  # already holds the right port; Btime keeps counting
                else:
                    key = (agent.node, target)
                    group = requests.get(key)
                    if group is None:
                        requests[key] = [i]
                    else:
                        group.append(i)
                continue
            if kind is ActionKind.TERMINATE:
                agent.terminated = True
                self._live.discard(i)
                self.termination_rounds[i] = self.round_no
                if trace is not None:
                    self._emit(EventKind.TERMINATE, i, f"at v{agent.node}")
                continue
            # ENTER_NODE
            if agent.port is not None:
                self._occ_vacate_port(agent)
                agent.port = None
                agent.memory.Btime = 0
                if trace is not None:
                    self._emit(EventKind.ENTER_NODE, i, f"v{agent.node}")

        for (node, target), contenders in requests.items():
            if optimized:
                entry = self._occ.get(node)
                occupied = (
                    entry is not None and target in entry[1]
                ) or (node, target) in self._released
            else:
                occupied = (node, target) in occupied_at_start
            if occupied:
                winner = -1
            else:
                winner = self._tie_break(contenders)
                if winner not in contenders:
                    raise InvariantViolation("tie-break returned a non-contender")
            for i in contenders:
                agent = self.agents[i]
                # A fresh traversal attempt either way: the consecutive-wait
                # clock restarts (it only accumulates while pushing on the
                # same port across rounds).
                agent.memory.Btime = 0
                if i == winner:
                    self._occ_acquire_port(agent, target)
                    agent.port = target  # may implicitly vacate its other port
                    movers.add(i)
                else:
                    # Section 2.1: "otherwise it sets moved = false".
                    agent.memory.failed = True
                    agent.memory.moved = False
                    if trace is not None:
                        self._emit(
                            EventKind.PORT_DENIED, i,
                            f"v{node} toward {getattr(target, 'name', target)}",
                        )
        return movers

    def _move_phase(self, movers: set[int]) -> None:
        trace = self.trace
        missing = self._missing
        topology = self.topology
        faults = self.faults
        for i in sorted(movers):
            agent = self.agents[i]
            assert agent.port is not None
            edge = topology.edge_from(agent.node, agent.port)
            if edge in missing:
                if faults is not None and faults.lost_on_removal(i):
                    # Lost-on-removal: the agent waiting on the removed
                    # edge is gone with it (crash-on-edge-removal model).
                    self._crash(agent)
                    continue
                agent.memory.record_blocked()
                if trace is not None:
                    self._emit(
                        EventKind.BLOCKED, i,
                        f"v{agent.node} edge e{topology.edge_label(edge)}",
                    )
            else:
                self._traverse(agent, EventKind.MOVE)

        if self.transport is TransportModel.PT:
            last_active = self.last_active
            peek_cache = self._peek_cache
            for agent in self.agents:
                if (
                    agent.terminated
                    or agent.index in last_active
                    or agent.port is None
                ):
                    continue
                edge = topology.edge_from(agent.node, agent.port)
                if edge not in missing:
                    self._traverse(agent, EventKind.TRANSPORT)
                    # A transported agent's memory changed without it being
                    # active: its cached peek is stale.
                    peek_cache.pop(agent.index, None)

    def _traverse(self, agent: AgentState, kind: EventKind) -> None:
        assert agent.port is not None
        origin = agent.node
        port = agent.port
        if self._oriented:
            local = _LEFT if port is agent.left_global else _RIGHT
        else:
            local = None
        destination = self.topology.neighbor(origin, port)
        self._occ_traverse(agent, destination)
        agent.node = destination
        agent.port = None
        agent.memory.record_traversal(local)
        if destination == self._landmark:
            agent.memory.observe_landmark()
        visited = self.visited
        if self.trace is not None:
            self._emit(kind, agent.index, f"v{origin}->v{destination}")
        if destination not in visited:
            visited.add(destination)
            if self.exploration_round is None and len(visited) == self.topology.size:
                # Exploration completes during round `round_no`; by the
                # paper's accounting that is "time round_no + 1" (rounds
                # are 0-indexed).
                self.exploration_round = self.round_no + 1
                if self.trace is not None:
                    self._emit(
                        EventKind.EXPLORED, None, f"after {self.round_no + 1} rounds"
                    )

    def _end_of_round(self, active: set[int], movers: set[int]) -> None:
        peek_cache = self._peek_cache
        for agent in self.agents:
            if agent.terminated or agent.crashed:
                continue
            if agent.index in active:
                agent.memory.tick()
                agent.rounds_since_active = 0
                agent.activations += 1
                # Active agents Computed against their real memory (and may
                # have moved/blocked/been denied): drop their cached peeks.
                peek_cache.pop(agent.index, None)
            else:
                agent.rounds_since_active += 1
        if self._debug:
            self._check_invariants()

    # ------------------------------------------------------------------
    # validation / bookkeeping
    # ------------------------------------------------------------------

    def _validated_activation(self, selected: Iterable[int]) -> set[int]:
        live = self._live
        active = {i for i in selected if i in live}
        if not active:
            raise AdversaryViolation(
                "scheduler activated no live agent (activation sets must be non-empty)"
            )
        return active

    def _check_invariants(self) -> None:
        seen: set[tuple] = set()
        for agent in self.agents:
            if agent.port is None:
                continue
            key = (agent.node, agent.port)
            if key in seen:
                raise InvariantViolation(f"two agents share port {key}")
            seen.add(key)
        # The occupancy index and live set must equal a fresh recount
        # (crashed agents left the configuration and count for neither).
        expected: dict[Any, list] = {}
        for agent in self.agents:
            if agent.crashed:
                continue
            entry = expected.setdefault(agent.node, [0, {}])
            if agent.port is None:
                entry[0] += 1
            else:
                entry[1][agent.port] = agent.index
        if expected != self._occ:
            raise InvariantViolation(
                f"occupancy index drifted: have {self._occ}, expected {expected}"
            )
        live = {a.index for a in self.agents
                if not a.terminated and not a.crashed}
        if live != self._live:
            raise InvariantViolation(
                f"live set drifted: have {self._live}, expected {live}"
            )

    def _emit(self, kind: EventKind, agent: int | None, detail) -> None:
        if self.trace is not None:
            self.trace.emit(Event(self.round_no, kind, agent, detail))

    def _build_result(self, reason: str) -> RunResult:
        stats = [
            AgentStats(
                index=a.index,
                moves=a.memory.Tsteps,
                terminated=a.terminated,
                termination_round=self.termination_rounds.get(a.index),
                final_node=a.node,
                waiting_on_port=a.port is not None,
                crashed=a.crashed,
            )
            for a in self.agents
        ]
        return RunResult(
            ring_size=self.topology.size,
            rounds=self.round_no,
            explored=self.exploration_complete,
            exploration_round=self.exploration_round,
            visited=set(self.visited),
            agents=stats,
            halted_reason=reason,
            # Only fault-plan runs report a census; fault-free records
            # stay byte-identical to the pre-resilience format.
            crashed_count=len(self._crashed) if self.faults is not None else None,
        )
