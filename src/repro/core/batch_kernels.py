"""Vectorized state-machine kernels for :mod:`repro.core.batch`.

PR 6's ``BatchCore`` hand-wrote one NumPy kernel per algorithm
(``known-bound``, ``unconscious``).  This module generalises that into a
small masked *state-machine driver* (:class:`VectorProgram`) that mirrors
``StateMachineAlgorithm.compute`` exactly, column-wise:

* per-agent columns ``state`` (int code), ``entered`` (has the current
  state's on-enter/reset already run) and ``last_dir`` (the last direction
  handed to ``move``) replace the scalar ``vars`` dict;
* each :class:`VState` is the columnar twin of a ``StateSpec``: a
  direction (constant or column function), ordered transition rules,
  an optional vector ``on_enter`` preamble and an optional vector
  ``custom`` body;
* :meth:`VectorProgram.run` repeats masked passes over the states until
  every activated agent has produced an action, which reproduces the
  scalar driver's transition *chaining* (an agent can cross several
  states in one activation) without data-dependent Python loops on the
  hot path.

The per-round action is returned as two arrays: ``kind`` (one of
``K_STAY``/``K_MOVE``/``K_TERM``/``K_ENTER``) and ``local`` (the local
direction for ``K_MOVE`` rows).  ``BatchCore`` owns the Look/resolve/move
phases; this module owns only Compute.

Scalar equivalence notes (pinned by ``tests/core/test_batch_equivalence``
and ``analysis/differential.py``):

* an ``on_enter`` that *redirects* does not reset ``Etime``/``Esteps`` and
  leaves ``entered`` False — exactly like the scalar driver, the reset
  belongs to the state finally entered;
* ``last_dir`` is recorded before rules are evaluated, so a state entered
  later in the same round sees the direction of the state that chained
  into it (``remember_forward`` depends on this);
* a state entered this round moves straight away (rules skipped) — the
  ``entered_this_round`` fast path.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by batch.py's gate
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

from .errors import ProtocolViolation

# Action kinds emitted by a kernel, one int8 per agent.
K_STAY = 0
K_MOVE = 1
K_TERM = 2
K_ENTER = 3

#: State code of the scalar driver's "Terminate" pseudo-state.
TERMINAL_CODE = 127

#: Mirror of ``StateMachineAlgorithm.MAX_CHAIN``: an agent still pending
#: after this many passes is looping through transitions.
MAX_PASSES = 32

_LEFT = -1
_RIGHT = 1


class Look:
    """Round-start observation tensors shared by every kernel.

    All arrays are ``[C, K]`` and frozen for the round: positions only
    change in the move phase, so Compute for every agent sees the same
    snapshot — the same guarantee the scalar engine's Look phase gives.
    """

    __slots__ = (
        "snap_moved",
        "snap_failed",
        "others_interior",
        "other_plus",
        "other_minus",
        "is_lm",
    )

    def __init__(self, snap_moved, snap_failed, others_interior,
                 other_plus, other_minus, is_lm=None):
        self.snap_moved = snap_moved
        self.snap_failed = snap_failed
        self.others_interior = others_interior
        self.other_plus = other_plus
        self.other_minus = other_minus
        self.is_lm = is_lm


# ---------------------------------------------------------------------------
# Predicate library (ctx.* in the scalar world).  Signature:
# pred(core, u, look, d) -> bool[C, K]; ``u`` is the still-undecided mask
# (vector predicates may ignore it), ``d`` the current state's direction.
# ---------------------------------------------------------------------------

def p_catches(core, u, look, d):
    """ctx.catches(direction): interior, other agent holds the port ahead."""
    g = -d * core.left
    ahead = _np.where(g == 1, look.other_plus, look.other_minus)
    return ~core.on_port & ahead


def p_caught(core, u, look, d):
    """ctx.caught: on a port, did not move, company arrived."""
    return core.on_port & ~look.snap_moved & (look.others_interior > 0)


def p_meeting(core, u, look, d):
    """ctx.meeting: interior and sharing the node with another agent."""
    return ~core.on_port & (look.others_interior > 0)


def p_blocked(core, u, look, d):
    """ctx.Btime > 0 (the scalar ctx clamps Btime to Etime)."""
    return _np.minimum(core.Btime, core.Etime) > 0


def p_size_known(core, u, look, d):
    return core.size >= 0


def p_is_lm(core, u, look, d):
    return look.is_lm


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

class VState:
    """Columnar twin of ``StateSpec``."""

    __slots__ = ("code", "direction", "dir_fn", "rules", "on_enter",
                 "custom", "keep_esteps")

    def __init__(self, code, *, direction=None, dir_fn=None, rules=(),
                 on_enter=None, custom=None, keep_esteps=False):
        self.code = code
        self.direction = direction
        self.dir_fn = dir_fn
        self.rules = tuple(rules)
        self.on_enter = on_enter
        self.custom = custom
        self.keep_esteps = keep_esteps


class VectorProgram:
    """An ordered set of :class:`VState` plus per-batch column setup."""

    __slots__ = ("states", "initial_code", "_setup")

    def __init__(self, states: Sequence[VState], initial_code: int,
                 setup: Optional[Callable] = None):
        self.states = tuple(states)
        self.initial_code = initial_code
        self._setup = setup

    def setup(self, core) -> None:
        """Allocate this program's private columns on ``core``."""
        if self._setup is not None:
            self._setup(core)

    def run(self, core, act, look) -> Tuple["_np.ndarray", "_np.ndarray"]:
        """Compute for every agent in ``act``; returns ``(kind, local)``."""
        np = _np
        shape = core.pos.shape
        kind = np.zeros(shape, dtype=np.int8)
        local = np.full(shape, _LEFT, dtype=np.int64)
        pending = act.copy()
        etr = np.zeros(shape, dtype=bool)  # entered_this_round

        for _ in range(MAX_PASSES):
            if not pending.any():
                return kind, local
            terminal = pending & (core.state == TERMINAL_CODE)
            if terminal.any():
                kind[terminal] = K_TERM
                pending &= ~terminal
            for st in self.states:
                m = pending & (core.state == st.code)
                if not m.any():
                    continue

                # -- on_enter preamble + reset_explore -----------------
                ne = m & ~core.entered
                if ne.any():
                    if st.on_enter is not None:
                        redirect, term_mask = st.on_enter(core, ne, look)
                        if term_mask is not None:
                            tm = ne & term_mask
                            if tm.any():
                                kind[tm] = K_TERM
                                core.state[tm] = TERMINAL_CODE
                                pending &= ~tm
                                m &= ~tm
                                ne &= ~tm
                        if redirect is not None:
                            rm = ne & (redirect >= 0)
                            if rm.any():
                                core.state[rm] = redirect[rm]
                                etr |= rm
                                m &= ~rm
                                ne &= ~rm
                    if ne.any():
                        core.Etime[ne] = 0
                        if not st.keep_esteps:
                            core.Esteps[ne] = 0
                        core.entered |= ne

                if not m.any():
                    continue

                # -- custom body ---------------------------------------
                if st.custom is not None:
                    ck, cd, credir = st.custom(core, m, look)
                    rm = m & (credir >= 0)
                    if rm.any():
                        core.state[rm] = credir[rm]
                        core.entered[rm] = False
                        etr |= rm
                        m &= ~rm
                    if m.any():
                        kind[m] = ck[m]
                        mv = m & (ck == K_MOVE)
                        local[mv] = cd[mv]
                        tm = m & (ck == K_TERM)
                        core.state[tm] = TERMINAL_CODE
                        pending &= ~m
                    continue

                # -- normal state: direction, fast path, rules ---------
                if st.dir_fn is not None:
                    d = st.dir_fn(core, look)
                else:
                    d = np.full(shape, st.direction, dtype=np.int64)
                core.last_dir[m] = d[m]

                fast = m & etr
                if fast.any():
                    kind[fast] = K_MOVE
                    local[fast] = d[fast]
                    pending &= ~fast
                    m &= ~fast

                u = m
                for pred, target in st.rules:
                    if not u.any():
                        break
                    fired = u & pred(core, u, look, d)
                    if fired.any():
                        core.state[fired] = target
                        core.entered[fired] = False
                        etr |= fired
                        u &= ~fired
                if u.any():
                    kind[u] = K_MOVE
                    local[u] = d[u]
                    pending &= ~u

        raise ProtocolViolation(
            "vector kernel: agents still chaining transitions after "
            f"{MAX_PASSES} passes (states {sorted(set(core.state[pending].tolist()))})")


# ---------------------------------------------------------------------------
# Shared on_enter helpers
# ---------------------------------------------------------------------------

def _oe_remember_forward(core, ne, look):
    """vars.setdefault('fwd', vars.get('last_dir', LEFT)) — columnar."""
    upd = ne & ~core.v_fwd_set
    core.v_fwd[upd] = core.last_dir[upd]
    core.v_fwd_set[upd] = True
    return None, None


def _d_var(core, look):
    return core.v_dir


def _d_fwd(core, look):
    return core.v_fwd


def _d_against_fwd(core, look):
    return -core.v_fwd


# ---------------------------------------------------------------------------
# PT family: 2-agent chirality protocols (pt-bound / pt-landmark)
# ---------------------------------------------------------------------------

def _make_pt2(done_pred) -> VectorProgram:
    # States: 0 Init(LEFT) / 1 Bounce(RIGHT) / 2 Reverse(LEFT).
    def oe_bounce(core, ne, look):
        core.v_left_steps[ne] = core.Esteps[ne]
        term = ne & (core.v_right_steps >= 0) & \
            (core.v_right_steps >= core.Esteps)
        return None, term

    def oe_reverse(core, ne, look):
        core.v_right_steps[ne] = core.Esteps[ne]
        return None, None

    def setup(core):
        np = _np
        shape = core.pos.shape
        core.v_left_steps = np.full(shape, -1, dtype=np.int64)
        core.v_right_steps = np.full(shape, -1, dtype=np.int64)

    return VectorProgram(
        [
            VState(0, direction=_LEFT,
                   rules=((done_pred, TERMINAL_CODE), (p_catches, 1))),
            VState(1, direction=_RIGHT, on_enter=oe_bounce,
                   rules=((done_pred, TERMINAL_CODE), (p_blocked, 2))),
            VState(2, direction=_LEFT, on_enter=oe_reverse,
                   rules=((done_pred, TERMINAL_CODE), (p_catches, 1))),
        ],
        initial_code=0, setup=setup)


def _p_done_span(core, u, look, d):
    """ctx.Tnodes >= bound (bound pinned per cell in ``core.pbound``)."""
    return (core.max_net - core.min_net) >= core.pbound[:, None]


# ---------------------------------------------------------------------------
# PT family: 3-agent no-chirality protocols (pt-bound-3 / pt-landmark-3 /
# et-exact — the latter with strict distance checks)
# ---------------------------------------------------------------------------

def _make_pt3(done_pred, *, strict: bool) -> VectorProgram:
    # States: 0 Init(L) / 1 Bounce(R) / 2 Reverse(L) /
    #         3 MeetingR(L, keep_esteps) / 4 MeetingB(R, keep_esteps).
    def _stopped(core):
        if strict:
            return core.Esteps < core.v_d
        return core.Esteps <= core.v_d

    def oe_check_d(core, ne, look):
        # CheckD: a leg that stopped growing terminates; a longer leg
        # becomes the new ``d``; an unset ``d`` stays unset here.
        has = core.v_d > 0
        stopped = _stopped(core)
        term = ne & has & stopped
        grew = ne & has & ~stopped
        core.v_d[grew] = core.Esteps[grew]
        return None, term

    def oe_enter_reverse(core, ne, look):
        # The first Bounce -> Reverse change seeds ``d``; after that it
        # is CheckD.
        first = ne & (core.v_d == 0)
        core.v_d[first] = core.Esteps[first]
        return oe_check_d(core, ne & ~first, look)

    def oe_meeting(core, ne, look):
        term = ne & (core.v_d > 0) & _stopped(core)
        return None, term

    def setup(core):
        core.v_d = _np.zeros(core.pos.shape, dtype=_np.int64)

    return VectorProgram(
        [
            VState(0, direction=_LEFT,
                   rules=((done_pred, TERMINAL_CODE), (p_catches, 1))),
            VState(1, direction=_RIGHT, on_enter=oe_check_d,
                   rules=((done_pred, TERMINAL_CODE), (p_meeting, 4),
                          (p_catches, 2))),
            VState(2, direction=_LEFT, on_enter=oe_enter_reverse,
                   rules=((done_pred, TERMINAL_CODE), (p_meeting, 3),
                          (p_catches, 1))),
            VState(3, direction=_LEFT, on_enter=oe_meeting, keep_esteps=True,
                   rules=((done_pred, TERMINAL_CODE), (p_catches, 1))),
            VState(4, direction=_RIGHT, on_enter=oe_meeting, keep_esteps=True,
                   rules=((done_pred, TERMINAL_CODE), (p_catches, 2))),
        ],
        initial_code=0, setup=setup)


# ---------------------------------------------------------------------------
# ET unconscious: Init / Flip / Cruise, never terminates
# ---------------------------------------------------------------------------

def _make_etu() -> VectorProgram:
    def c_flip(core, m, look):
        np = _np
        core.v_dir[m] = -core.v_dir[m]
        redirect = np.where(m, 2, -1).astype(np.int64)
        zeros8 = np.zeros(core.pos.shape, dtype=np.int8)
        zeros64 = np.zeros(core.pos.shape, dtype=np.int64)
        return zeros8, zeros64, redirect

    def setup(core):
        core.v_dir = _np.full(core.pos.shape, _LEFT, dtype=_np.int64)

    return VectorProgram(
        [
            VState(0, dir_fn=_d_var, rules=((p_catches, 1),)),
            VState(1, custom=c_flip),
            VState(2, dir_fn=_d_var, rules=((p_catches, 1),)),
        ],
        initial_code=0, setup=setup)


# ---------------------------------------------------------------------------
# Landmark family shared machinery (Section 3.2 Bounce/Return/Forward +
# the BComm/FComm communication dances)
# ---------------------------------------------------------------------------

def _p_bounce_over(core, u, look, d):
    return (core.Etime > 2 * core.Esteps) | (core.Ntime > 0)


def _p_return_timeout_or_caught(core, u, look, d):
    timeout = (core.size >= 0) & (core.Ntime > 3 * core.size)
    return timeout | p_caught(core, u, look, d)


def _p_forward_done(core, u, look, d):
    timeout = (core.size >= 0) & (core.Ntime >= 7 * core.size)
    return timeout | p_meeting(core, u, look, d) | p_catches(core, u, look, d)


def _oe_enter_return(core, ne, look):
    core.v_bounce_steps[ne] = core.Esteps[ne]
    return None, None


def _oe_enter_bcomm(core, ne, look):
    steps = core.Esteps
    signal = ne & (((core.v_bounce_steps >= 0) &
                    (steps <= 2 * core.v_bounce_steps)) | (core.size >= 0))
    core.v_comm[ne] = False
    core.v_comm[signal] = True
    core.v_comm_step[ne] = 0
    return None, None


def _oe_enter_fcomm(core, ne, look):
    signal = ne & (core.size >= 0)
    core.v_comm[ne] = False
    core.v_comm[signal] = True
    core.v_comm_step[ne] = 0
    return None, None


def _c_bcomm(core, m, look):
    np = _np
    shape = core.pos.shape
    kind = np.zeros(shape, dtype=np.int8)
    dloc = np.zeros(shape, dtype=np.int64)
    redirect = np.full(shape, -1, dtype=np.int64)
    step0 = m & (core.v_comm_step == 0)
    core.v_comm_step[m] += 1
    company = look.others_interior > 0
    ms = m & core.v_comm              # "signal": step back, then stop
    mv = ms & step0
    kind[mv] = K_MOVE
    dloc[mv] = -core.v_fwd[mv]
    kind[ms & ~step0] = K_TERM
    mw = m & ~core.v_comm             # "wait": stay, listen, resume or stop
    later = mw & ~step0
    redirect[later & company] = 1     # -> Bounce
    kind[later & ~company] = K_TERM
    return kind, dloc, redirect


def _c_fcomm(core, m, look):
    np = _np
    shape = core.pos.shape
    kind = np.zeros(shape, dtype=np.int8)
    dloc = np.zeros(shape, dtype=np.int64)
    redirect = np.full(shape, -1, dtype=np.int64)
    step0 = m & (core.v_comm_step == 0)
    core.v_comm_step[m] += 1
    company = look.others_interior > 0
    ms = m & core.v_comm
    mv = ms & step0
    kind[mv] = K_MOVE
    dloc[mv] = core.v_fwd[mv]
    kind[ms & ~step0] = K_TERM
    mw = m & ~core.v_comm
    kind[mw & step0] = K_ENTER        # step off the port, then listen
    later = mw & ~step0
    redirect[later & company] = 3     # -> Forward
    kind[later & ~company] = K_TERM
    return kind, dloc, redirect


def _landmark_shared_states():
    """Bounce(1) / Return(2) / Forward(3) / BComm(4) / FComm(5)."""
    return [
        VState(1, dir_fn=_d_against_fwd, on_enter=_oe_remember_forward,
               rules=((p_meeting, TERMINAL_CODE), (_p_bounce_over, 2),
                      (p_catches, 4))),
        VState(2, dir_fn=_d_fwd, on_enter=_oe_enter_return,
               rules=((_p_return_timeout_or_caught, TERMINAL_CODE),
                      (p_catches, 4))),
        VState(3, dir_fn=_d_fwd, on_enter=_oe_remember_forward,
               rules=((_p_forward_done, TERMINAL_CODE), (p_caught, 5))),
        VState(4, custom=_c_bcomm, on_enter=_oe_enter_bcomm),
        VState(5, custom=_c_fcomm, on_enter=_oe_enter_fcomm),
    ]


def _landmark_columns(core):
    np = _np
    shape = core.pos.shape
    core.v_dir = np.full(shape, _LEFT, dtype=np.int64)
    core.v_fwd = np.full(shape, _LEFT, dtype=np.int64)
    core.v_fwd_set = np.zeros(shape, dtype=bool)
    core.v_bounce_steps = np.full(shape, -1, dtype=np.int64)
    core.v_comm = np.zeros(shape, dtype=bool)
    core.v_comm_step = np.zeros(shape, dtype=np.int64)


# ---------------------------------------------------------------------------
# landmark-chirality
# ---------------------------------------------------------------------------

def _make_lmc() -> VectorProgram:
    def p_init_timeout(core, u, look, d):
        return (core.size >= 0) & (core.Ntime > 2 * core.size)

    states = [
        VState(0, dir_fn=_d_var,
               rules=((p_init_timeout, TERMINAL_CODE), (p_catches, 1),
                      (p_caught, 3))),
    ] + _landmark_shared_states()

    return VectorProgram(states, initial_code=0, setup=_landmark_columns)


# ---------------------------------------------------------------------------
# landmark-no-chirality / start-from-landmark (the ID-schedule protocol)
# ---------------------------------------------------------------------------

def _make_lmnc(*, arbitrary_start: bool) -> VectorProgram:
    # Codes: shared 1-5; 6 InitL / 7 FirstBlockL / 8 AtLandmarkL /
    # 9 AtLandmarkCruiseL / 10 Happy / 11 Ready / 12 Reverse /
    # 13 ReverseTimeout; arbitrary-start quartet 14 Init / 15 FirstBlock /
    # 16 AtLandmark / 17 AtLandmarkCruise.
    from ..algorithms.fsync.ids import DirectionSchedule, interleave_id
    from .directions import LocalDirection

    def oe_init_l(core, ne, look):
        core.v_dir[ne] = _LEFT
        core.v_k1[ne] = 0
        core.v_k2[ne] = 0
        core.v_k3[ne] = 0
        return None, None

    def oe_first_block_l(core, ne, look):
        core.v_dir[ne] = _RIGHT
        core.v_k1[ne] = _np.maximum(core.Ttime[ne] - 1, 0)
        return None, None

    def oe_first_block_arb(core, ne, look):
        core.v_dir[ne] = _RIGHT
        core.v_k1[ne] = core.Ttime[ne]
        return None, None

    def oe_at_landmark(core, ne, look):
        core.v_k3[ne] = core.Etime[ne]
        core.v_dance[ne] = 0
        return None, None

    def oe_ready(core, ne, look):
        np = _np
        core.v_k2[ne] = core.Etime[ne]
        for ci, ai in zip(*np.nonzero(ne)):
            ident = interleave_id(int(core.v_k1[ci, ai]),
                                  int(core.v_k2[ci, ai]),
                                  int(core.v_k3[ci, ai]))
            core._schedules[ci][ai] = DirectionSchedule(ident)
        redirect = np.where(ne, 12, -1).astype(np.int64)
        return redirect, None

    def oe_reverse(core, ne, look):
        np = _np
        for ci, ai in zip(*np.nonzero(ne)):
            sched = core._schedules[ci][ai]
            want = sched.direction(int(core.Ttime[ci, ai]))
            core.v_dir[ci, ai] = \
                _LEFT if want is LocalDirection.LEFT else _RIGHT
        redirect = np.where(ne & (core.size >= 0), 13, -1).astype(np.int64)
        return redirect, None

    def p_happy_timeout(core, u, look, d):
        return (core.size >= 0) & \
            (core.Ttime >= core._lm_timeout[:, None] + 1)

    def p_reverse_timeout(core, u, look, d):
        return (core.size >= 0) & (core.Ttime >= core._lm_timeout[:, None])

    def p_switches(core, u, look, d):
        np = _np
        out = np.zeros(u.shape, dtype=bool)
        for ci, ai in zip(*np.nonzero(u)):
            sched = core._schedules[ci][ai]
            if sched is not None:
                out[ci, ai] = sched.switches(int(core.Ttime[ci, ai]))
        return out

    def make_dance(cruise_code, success_code):
        # success_code None => TERMINATE (the landmark-start quartet);
        # otherwise redirect (the arbitrary-start quartet restarts).
        def c_dance(core, m, look):
            np = _np
            shape = core.pos.shape
            kind = np.zeros(shape, dtype=np.int8)
            dloc = np.zeros(shape, dtype=np.int64)
            redirect = np.full(shape, -1, dtype=np.int64)
            step0 = m & (core.v_dance == 0)
            core.v_dance[m] += 1
            company = look.others_interior > 0
            redirect[m & ~company] = cruise_code
            success = m & ~step0 & company
            if success_code is None:
                kind[success] = K_TERM
            else:
                redirect[success] = success_code
            return kind, dloc, redirect
        return c_dance

    def quartet(init_code, first_code, at_code, cruise_code, *,
                oe_first, dance_success):
        init_rules = ((p_size_known, 10), (p_catches, 1), (p_caught, 3),
                      (p_blocked, first_code))
        first_rules = ((p_size_known, 10), (p_catches, 1), (p_caught, 3),
                       (p_is_lm, at_code), (p_blocked, 11))
        cruise_rules = ((p_size_known, 10), (p_catches, 1), (p_caught, 3),
                        (p_blocked, 11))
        return [
            VState(init_code, dir_fn=_d_var, on_enter=oe_init_l,
                   rules=init_rules),
            VState(first_code, dir_fn=_d_var, on_enter=oe_first,
                   rules=first_rules),
            VState(at_code, custom=make_dance(cruise_code, dance_success),
                   on_enter=oe_at_landmark),
            VState(cruise_code, dir_fn=_d_var, rules=cruise_rules),
        ]

    states = _landmark_shared_states()
    states += quartet(6, 7, 8, 9, oe_first=oe_first_block_l,
                      dance_success=None)
    states += [
        VState(10, dir_fn=_d_var,
               rules=((p_happy_timeout, TERMINAL_CODE), (p_catches, 1),
                      (p_caught, 3))),
        VState(11, dir_fn=_d_var, on_enter=oe_ready),
        VState(12, dir_fn=_d_var, on_enter=oe_reverse,
               rules=((p_catches, 1), (p_caught, 3), (p_switches, 12))),
        VState(13, dir_fn=_d_var,
               rules=((p_reverse_timeout, TERMINAL_CODE), (p_catches, 1),
                      (p_caught, 3))),
    ]
    if arbitrary_start:
        states += quartet(14, 15, 16, 17, oe_first=oe_first_block_arb,
                          dance_success=6)

    def setup(core):
        from ..algorithms.fsync.landmark_no_chirality import \
            no_chirality_timeout
        np = _np
        shape = core.pos.shape
        _landmark_columns(core)
        core.v_k1 = np.zeros(shape, dtype=np.int64)
        core.v_k2 = np.zeros(shape, dtype=np.int64)
        core.v_k3 = np.zeros(shape, dtype=np.int64)
        core.v_dance = np.zeros(shape, dtype=np.int64)
        core._schedules = [[None] * shape[1] for _ in range(shape[0])]
        # An agent only ever *learns* size == n (consecutive landmark
        # stands differ in net by a multiple of n, and the first
        # differing stand is exactly +-n away), so the no-chirality
        # timeout is a per-cell constant.
        core._lm_timeout = np.array(
            [no_chirality_timeout(int(n)) for n in core.n], dtype=np.int64)

    return VectorProgram(states, initial_code=14 if arbitrary_start else 6,
                         setup=setup)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def build_program(algorithm: str, cells) -> Optional[VectorProgram]:
    """The :class:`VectorProgram` for ``algorithm``, or None for the
    legacy bespoke kernels (``known-bound`` / ``unconscious``)."""
    if algorithm in ("pt-bound", "pt-bound-3", "et-exact"):
        done = _p_done_span
    else:
        done = p_size_known
    if algorithm in ("pt-bound", "pt-landmark"):
        return _make_pt2(done)
    if algorithm in ("pt-bound-3", "pt-landmark-3"):
        return _make_pt3(done, strict=False)
    if algorithm == "et-exact":
        return _make_pt3(done, strict=True)
    if algorithm == "et-unconscious":
        return _make_etu()
    if algorithm == "landmark-chirality":
        return _make_lmc()
    if algorithm == "start-from-landmark":
        return _make_lmnc(arbitrary_start=False)
    if algorithm == "landmark-no-chirality":
        return _make_lmnc(arbitrary_start=True)
    return None


__all__ = [
    "K_ENTER",
    "K_MOVE",
    "K_STAY",
    "K_TERM",
    "Look",
    "MAX_PASSES",
    "TERMINAL_CODE",
    "VState",
    "VectorProgram",
    "build_program",
]
