"""Outcome records and termination-mode classification.

The paper distinguishes three strengths of solving exploration
(Section 2.1):

* **explicit termination** — within finite time *every* agent enters a
  terminal state (after the ring is explored);
* **explicit partial termination** — at least one agent terminates;
* **unconscious exploration** — every node is visited but no agent is
  required to stop.

:class:`RunResult` captures everything a finite simulation can certify and
classifies which of these modes the run achieved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TerminationMode(enum.Enum):
    """Strongest termination requirement a finite run satisfied."""

    EXPLICIT = "explicit"          # all agents terminated, ring explored
    PARTIAL = "partial"            # >=1 agent terminated, ring explored
    UNCONSCIOUS = "unconscious"    # ring explored, nobody terminated
    INCORRECT = "incorrect"        # an agent terminated before exploration
    NONE = "none"                  # horizon hit: not explored, nobody stopped


@dataclass
class AgentStats:
    """Per-agent accounting at the end of a run."""

    index: int
    moves: int
    terminated: bool
    termination_round: int | None
    final_node: int
    waiting_on_port: bool
    crashed: bool = False


@dataclass
class RunResult:
    """Everything measured over one simulation run."""

    ring_size: int
    rounds: int
    explored: bool
    exploration_round: int | None
    visited: set[int] = field(default_factory=set)
    agents: list[AgentStats] = field(default_factory=list)
    halted_reason: str = "horizon"
    #: Crash census — ``None`` on fault-free runs (no fault plan attached),
    #: so fault-free records keep the pre-resilience shape byte for byte.
    crashed_count: int | None = None

    @property
    def total_moves(self) -> int:
        return sum(a.moves for a in self.agents)

    @property
    def terminated_count(self) -> int:
        return sum(1 for a in self.agents if a.terminated)

    @property
    def survivors(self) -> list[AgentStats]:
        """Agents that did not crash (the census termination anchors on)."""
        return [a for a in self.agents if not a.crashed]

    @property
    def all_terminated(self) -> bool:
        """Every *surviving* agent terminated (and at least one survived).

        Under fault injection termination re-anchors on the surviving
        census: crashed agents cannot be required to stop.  A run that
        lost its whole team certifies nothing and reports ``False``.
        Fault-free runs are unchanged (everyone is a survivor).
        """
        survivors = self.survivors
        return bool(survivors) and all(a.terminated for a in survivors)

    @property
    def any_terminated(self) -> bool:
        return any(a.terminated for a in self.agents)

    @property
    def last_termination_round(self) -> int | None:
        rounds = [a.termination_round for a in self.agents if a.termination_round is not None]
        return max(rounds) if rounds else None

    def termination_mode(self) -> TerminationMode:
        """Classify the run against the paper's three requirements."""
        if self.any_terminated and not self.explored_before_terminations():
            return TerminationMode.INCORRECT
        if self.explored and self.all_terminated:
            return TerminationMode.EXPLICIT
        if self.explored and self.any_terminated:
            return TerminationMode.PARTIAL
        if self.explored:
            return TerminationMode.UNCONSCIOUS
        if self.any_terminated:
            return TerminationMode.INCORRECT
        return TerminationMode.NONE

    def explored_before_terminations(self) -> bool:
        """Every termination happened at or after full exploration.

        The model requires the terminal state "to be entered only after the
        exploration of the ring"; a terminating agent on an unexplored ring
        is a correctness bug (this is how the impossibility demonstrations
        detect a broken protocol).
        """
        if not self.any_terminated:
            return True
        if self.exploration_round is None:
            return False
        return all(
            a.termination_round is None or a.termination_round >= self.exploration_round
            for a in self.agents
        )

    def summary(self) -> str:
        mode = self.termination_mode().value
        explored = (
            f"explored@r{self.exploration_round}" if self.explored else "NOT explored"
        )
        terms = ", ".join(
            f"a{a.index}:r{a.termination_round}" for a in self.agents if a.terminated
        )
        terms = terms or "none"
        crashed = (
            f" crashed={self.crashed_count}" if self.crashed_count is not None
            else ""
        )
        return (
            f"n={self.ring_size} rounds={self.rounds} {explored} "
            f"moves={self.total_moves} terminated=[{terms}] mode={mode}"
            f"{crashed}"
        )
