"""The dynamic-ring engine: a thin facade over the topology-generic core.

The full round loop — schedulers, transport models, port mutual
exclusion, the occupancy index, the peek cache, tracing and the invariant
audit — lives in :class:`repro.core.sim.SimulationCore`, shared with
every other topology (see :mod:`repro.extensions.dynamic_graph`).  This
module keeps the paper-facing surface:

* :class:`Engine` — the historical constructor signature (a
  :class:`~repro.core.ring.Ring` plus algorithm/positions/orientations),
  wired to the core through :class:`~repro.core.topology.RingTopology`;
  ``engine.ring`` stays the plain :class:`Ring`, so adversaries and
  analysis code keep the full ring algebra.
* :data:`TransportModel` / :data:`MAX_ROUNDS_LIMIT` re-exports (their
  definitions moved to :mod:`repro.core.sim` with the loop).

Ring behaviour is *trace-exact* through the unified core: the golden
fixture ``tests/core/golden_ring_traces.json`` pins event streams,
per-round peeks and results to the pre-refactor engine, for both the
optimized and the reference (``optimized=False``) Look paths.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .directions import Orientation
from .interfaces import ActivationScheduler, Algorithm, EdgeAdversary
from .ring import Ring
from .sim import (
    MAX_ROUNDS_LIMIT,
    SimulationCore,
    TransportModel,
    _default_tie_break,
)
from .topology import RingTopology
from .trace import Trace

__all__ = ["Engine", "MAX_ROUNDS_LIMIT", "TransportModel"]


class Engine(SimulationCore):
    """A single simulation of one algorithm on one dynamic ring."""

    def __init__(
        self,
        ring: Ring,
        algorithm: Algorithm,
        positions: Sequence[int],
        *,
        orientations: Sequence[Orientation] | None = None,
        scheduler: ActivationScheduler,
        adversary: EdgeAdversary,
        transport: TransportModel = TransportModel.NS,
        trace: Trace | None = None,
        port_tie_break: Callable[[Sequence[int]], int] = _default_tie_break,
        debug_invariants: bool | None = None,
        optimized: bool = True,
    ) -> None:
        self.ring = ring
        super().__init__(
            RingTopology(ring),
            algorithm,
            positions,
            orientations=orientations,
            scheduler=scheduler,
            adversary=adversary,
            transport=transport,
            trace=trace,
            port_tie_break=port_tie_break,
            debug_invariants=debug_invariants,
            optimized=optimized,
        )
