"""The dynamic-ring simulation engine.

Implements the computational model of Section 2.1 of the paper:

* discrete rounds; at most one ring edge missing per round (1-interval
  connectivity), chosen by an adaptive adversary;
* a non-empty subset of agents activated per round (FSYNC = all of them),
  chosen by a scheduler that may itself be adversarial;
* per active agent: Look (simultaneous local snapshots), Compute (the
  algorithm), Move (port mutual exclusion, traversal, blocking);
* the three SSYNC transport models — NS, PT, ET — governing what happens
  to an agent that sleeps while positioned on a port.

Round anatomy (all ordering decisions documented in DESIGN.md):

1. the adversary picks the missing edge;
2. the scheduler picks the activation set (it already sees the edge choice,
   like the single adversary of the paper that controls both);
3. every active agent Looks at the configuration *as of the start of the
   round* and Computes an action — decisions are simultaneous;
4. actions resolve: terminations, port releases (``ENTER_NODE``) and port
   acquisitions in mutual exclusion — a port occupied at the start of the
   round is denied to new requesters for the whole round, contention among
   new requesters is broken by a pluggable policy (default: lowest index);
5. Move: every active agent standing on the port it requested traverses if
   the edge is present, otherwise it stays blocked on the port; under PT
   every *sleeping* agent on a port of a present edge is passively
   transported across;
6. bookkeeping: counters tick for active agents, landmark observations and
   visited-set updates happen for agents that arrived at a node.

Agents that crossed the same edge in opposite directions simply swap —
the model says they "might not be able to detect each other", and no
snapshot ever exposes the encounter.

Hot path (see ARCHITECTURE.md, "Engine hot path")
-------------------------------------------------

The round loop is built around an **incrementally maintained occupancy
index** ``_occ`` (``node -> [interior count, PLUS-port holder, MINUS-port
holder]``), updated at every position change, so a Look snapshot is O(1)
per agent instead of an O(k) scan over the team.  On top of it sit a
**peek cache** (an adversary's ``peek_intended_action`` result stays
valid until the agent's memory or position, or its node's occupancy,
changes), **snapshot interning** (the Look phase reuses frozen
:class:`Snapshot` instances), and an allocation-audited round loop
(scratch containers are reused, trace details are only built when a
trace is attached, the live-agent set is maintained instead of rebuilt).
``Engine(..., optimized=False)`` keeps the original scan-per-snapshot
semantics as an executable reference; the trace-equivalence tests in
``tests/core/test_hotpath_equivalence.py`` assert both paths produce
identical event streams and results.
"""

from __future__ import annotations

import enum
import os
import sys
from typing import Callable, Iterable, Sequence

from .actions import Action, ActionKind, STAY
from .agent import AgentState
from .directions import GlobalDirection, LocalDirection, Orientation, CANONICAL
from .errors import AdversaryViolation, ConfigurationError, InvariantViolation
from .interfaces import ActivationScheduler, Algorithm, EdgeAdversary
from .memory import AgentMemory
from .results import AgentStats, RunResult
from .ring import Ring
from .snapshot import Snapshot, intern_snapshot
from .trace import Event, EventKind, Trace

_PLUS = GlobalDirection.PLUS
_LEFT = LocalDirection.LEFT
_RIGHT = LocalDirection.RIGHT


class TransportModel(enum.Enum):
    """What happens to an agent sleeping on a port (Section 2.1).

    ``NS`` — no simultaneity: a sleeping agent never moves.
    ``PT`` — passive transport: a sleeping agent on a port of a present
    edge is carried across during that round.
    ``ET`` — eventual transport: like NS, but the *scheduler* must
    guarantee that an agent sleeping on a port of an infinitely-often
    present edge is eventually activated in a round where the edge is
    present (see :class:`repro.schedulers.ssync.ETFairScheduler`).

    Under FSYNC nobody ever sleeps, so the choice is irrelevant there.
    """

    NS = "ns"
    PT = "pt"
    ET = "et"


#: Safety valve for same-round state-transition chains inside algorithms.
MAX_ROUNDS_LIMIT = 100_000_000


def _default_tie_break(contenders: Sequence[int]) -> int:
    """Default port-contention winner: the lowest agent index."""
    return min(contenders)


def _default_debug_invariants() -> bool:
    """Per-round invariant checking defaults on under pytest, off elsewhere.

    Campaigns pass the flag explicitly per cell
    (:attr:`repro.campaigns.spec.CellConfig.debug_invariants`), so sweep
    throughput never pays for the audit unless a cell asks for it.
    """
    return "PYTEST_CURRENT_TEST" in os.environ or "pytest" in sys.modules


class Engine:
    """A single simulation of one algorithm on one dynamic ring."""

    def __init__(
        self,
        ring: Ring,
        algorithm: Algorithm,
        positions: Sequence[int],
        *,
        orientations: Sequence[Orientation] | None = None,
        scheduler: ActivationScheduler,
        adversary: EdgeAdversary,
        transport: TransportModel = TransportModel.NS,
        trace: Trace | None = None,
        port_tie_break: Callable[[Sequence[int]], int] = _default_tie_break,
        debug_invariants: bool | None = None,
        optimized: bool = True,
    ) -> None:
        if not positions:
            raise ConfigurationError("at least one agent is required")
        if orientations is None:
            orientations = [CANONICAL] * len(positions)
        if len(orientations) != len(positions):
            raise ConfigurationError(
                f"{len(positions)} positions but {len(orientations)} orientations"
            )
        self.ring = ring
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.adversary = adversary
        self.transport = TransportModel(transport)
        self.trace = trace
        self._tie_break = port_tie_break
        self._optimized = bool(optimized)
        self._debug = (
            _default_debug_invariants() if debug_invariants is None
            else bool(debug_invariants)
        )
        self._landmark = ring.landmark

        # -- occupancy index + hot-path state (invariants in ARCHITECTURE.md):
        # _occ[node] == [interior count, PLUS-port holder, MINUS-port holder]
        # for every node hosting at least one agent (terminated agents stay
        # in the index: the Look phase still sees them); _node_version[node]
        # increases monotonically on every occupancy change at that node and
        # is never reset, so peek-cache entries can never alias across
        # visits; _live mirrors {a.index : not a.terminated}.
        self._occ: dict[int, list] = {}
        self._node_version: dict[int, int] = {}
        self._live: set[int] = set()
        self._peek_cache: dict[
            int, tuple[Action, int, GlobalDirection | None, int, int | None]
        ] = {}
        # Reused per-round scratch containers (allocation audit).
        self._decisions: dict[int, Action] = {}
        self._requests: dict[tuple[int, GlobalDirection], list[int]] = {}
        self._movers: set[int] = set()
        self._released: set[tuple[int, GlobalDirection]] = set()

        self.agents: list[AgentState] = []
        for index, (node, orientation) in enumerate(zip(positions, orientations)):
            agent = AgentState(
                index=index,
                orientation=orientation,
                node=ring.normalize(node),
                memory=AgentMemory(),
            )
            self.agents.append(agent)
            self._live.add(index)
            entry = self._occ.get(agent.node)
            if entry is None:
                self._occ[agent.node] = [1, None, None]
            else:
                entry[0] += 1
            self._node_version[agent.node] = self._node_version.get(agent.node, 0) + 1

        self.round_no = 0
        self.missing_edge: int | None = None
        self.visited: set[int] = set()
        self.exploration_round: int | None = None
        self.termination_rounds: dict[int, int] = {}
        self.last_active: set[int] = set()

        for agent in self.agents:
            self.algorithm.setup(agent.memory)
            self.visited.add(agent.node)
            if self.ring.is_landmark(agent.node):
                agent.memory.observe_landmark()
        if len(self.visited) == self.ring.size:
            self.exploration_round = 0
        self.adversary.reset(self)
        self.scheduler.reset(self)

    # ------------------------------------------------------------------
    # read API (used by adversaries, schedulers, analysis)
    # ------------------------------------------------------------------

    @property
    def exploration_complete(self) -> bool:
        return len(self.visited) == self.ring.size

    @property
    def live_agents(self) -> list[AgentState]:
        return [a for a in self.agents if not a.terminated]

    @property
    def live_indexes(self) -> set[int]:
        """Indexes of non-terminated agents (maintained; do not mutate)."""
        return self._live

    @property
    def all_terminated(self) -> bool:
        return not self._live

    def port_edge(self, agent: AgentState) -> int | None:
        """The edge the agent's occupied port leads to (``None`` if in a node)."""
        if agent.port is None:
            return None
        return self.ring.edge_from(agent.node, agent.port)

    def snapshot_for(self, agent: AgentState) -> Snapshot:
        """Build the agent's Look snapshot of the current configuration.

        On the optimized path this is an O(1) read of the occupancy index;
        ``optimized=False`` keeps the original O(k) scan as the executable
        reference the equivalence tests compare against.
        """
        if not self._optimized:
            return self._snapshot_for_scan(agent)
        node = agent.node
        interior, plus_holder, minus_holder = self._occ[node]
        port = agent.port
        if port is None:
            on_port = None
            interior -= 1  # don't count the observer itself
        elif port is agent.left_global:
            on_port = _LEFT
        else:
            on_port = _RIGHT
        if agent.left_global is _PLUS:
            left_holder, right_holder = plus_holder, minus_holder
        else:
            left_holder, right_holder = minus_holder, plus_holder
        index = agent.index
        memory = agent.memory
        return intern_snapshot(
            on_port,
            interior,
            left_holder is not None and left_holder != index,
            right_holder is not None and right_holder != index,
            node == self._landmark,
            memory.moved,
            memory.failed,
        )

    def _snapshot_for_scan(self, agent: AgentState) -> Snapshot:
        """Reference implementation: O(k) scan over the team (pre-index)."""
        others_in_node = 0
        left_port = agent.orientation.to_global(LocalDirection.LEFT)
        other_left = False
        other_right = False
        for other in self.agents:
            if other.index == agent.index or other.node != agent.node:
                continue
            if other.port is None:
                others_in_node += 1
            elif other.port is left_port:
                other_left = True
            else:
                other_right = True
        return Snapshot(
            on_port=agent.local_port(),
            others_in_node=others_in_node,
            other_on_left_port=other_left,
            other_on_right_port=other_right,
            is_landmark=self.ring.is_landmark(agent.node),
            moved=agent.memory.moved,
            failed=agent.memory.failed,
        )

    def peek_intended_action(self, index: int) -> Action:
        """Simulate the agent's next Compute without side effects.

        This is the omniscience the paper's adversaries enjoy: protocols
        are deterministic, so an adversary that knows the algorithm can
        always work out what an agent would do if activated now.

        Adversaries call this for every agent every round, so results are
        cached: a peek is a pure function of the agent's snapshot and
        memory, so a cached action stays valid until the agent's memory or
        position changes (the engine drops entries for agents that were
        active or passively transported) or the occupancy of its node
        changes (detected via the node's monotonic version counter).  A
        cache miss still pays one :meth:`AgentMemory.clone` plus one
        speculative Compute — see ``benchmarks/bench_engine_hotpath.py``
        for what the cache is worth under the peek-heavy adversaries.
        """
        agent = self.agents[index]
        if agent.terminated:
            return STAY
        if not self._optimized:
            snapshot = self.snapshot_for(agent)
            return self.algorithm.compute(snapshot, agent.memory.clone())
        return self._peek_entry(agent)[0]

    def peek_intended_edge(self, index: int) -> int | None:
        """The edge the agent would try to traverse if activated now.

        ``None`` when the agent is terminated or its intended action is
        not a MOVE.  This is the derived quantity every look-ahead
        adversary actually wants (see :mod:`repro.adversary.blocking`,
        :mod:`repro.adversary.impossibility`,
        :mod:`repro.adversary.worst_case` and
        :mod:`repro.analysis.model_check`); the edge is resolved once per
        cached peek instead of per call.
        """
        agent = self.agents[index]
        if agent.terminated:
            return None
        if not self._optimized:
            intent = self.peek_intended_action(index)
            if intent.kind is not ActionKind.MOVE:
                return None
            assert intent.direction is not None
            target = agent.orientation.to_global(intent.direction)
            return self.ring.edge_from(agent.node, target)
        return self._peek_entry(agent)[4]

    def _peek_entry(
        self, agent: AgentState
    ) -> tuple[Action, int, GlobalDirection | None, int, int | None]:
        """The agent's cached ``(action, node, port, version, edge)`` peek.

        Valid while the agent's position and its node's occupancy version
        are unchanged (memory changes drop the entry, see
        :meth:`_end_of_round` and :meth:`_move_phase`).
        """
        index = agent.index
        node = agent.node
        version = self._node_version.get(node, 0)
        entry = self._peek_cache.get(index)
        if (
            entry is not None
            and entry[1] == node
            and entry[2] is agent.port
            and entry[3] == version
        ):
            return entry
        snapshot = self.snapshot_for(agent)
        action = self.algorithm.compute(snapshot, agent.memory.clone())
        if action.kind is ActionKind.MOVE:
            target = (
                agent.left_global if action.direction is _LEFT else agent.right_global
            )
            edge = node if target is _PLUS else (node - 1) % self.ring.size
        else:
            edge = None
        entry = (action, node, agent.port, version, edge)
        self._peek_cache[index] = entry
        return entry

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one round; returns ``False`` if no live agent remains."""
        if not self._live:
            return False

        self.missing_edge = self._validated_edge(self.adversary.choose_missing_edge(self))
        active = self._validated_activation(self.scheduler.select(self))
        self.last_active = active
        if self.trace is not None:
            self._emit(EventKind.ROUND, None, (self.missing_edge, tuple(sorted(active))))

        # Look (simultaneous) + Compute.  Agent decisions are mutually
        # independent — a Compute only mutates its own agent's memory and
        # no snapshot reads any memory but the observer's — so the
        # optimized path fuses Look and Compute per agent; the reference
        # path keeps the original two-pass shape.
        decisions = self._decisions
        decisions.clear()
        algorithm = self.algorithm
        agents = self.agents
        if self._optimized:
            for i in active:
                agent = agents[i]
                snapshot = self.snapshot_for(agent)
                agent.memory.failed = False
                decisions[i] = algorithm.compute(snapshot, agent.memory)
        else:
            snapshots = {i: self.snapshot_for(agents[i]) for i in active}
            for i in active:
                agent = agents[i]
                agent.memory.failed = False
                decisions[i] = algorithm.compute(snapshots[i], agent.memory)

        movers = self._resolve_actions(decisions)
        self._move_phase(movers)
        self._end_of_round(active, movers)
        self.round_no += 1
        return True

    def run(
        self,
        max_rounds: int,
        *,
        stop_on_exploration: bool = False,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> RunResult:
        """Run until everyone terminated, a stop condition, or the horizon."""
        if not 0 < max_rounds <= MAX_ROUNDS_LIMIT:
            raise ConfigurationError(f"max_rounds must be in (0, {MAX_ROUNDS_LIMIT}]")
        reason = "horizon"
        for _ in range(max_rounds):
            if self.all_terminated:
                reason = "all-terminated"
                break
            if stop_on_exploration and self.exploration_complete:
                reason = "explored"
                break
            if stop_when is not None and stop_when(self):
                reason = "stop-condition"
                break
            self.step()
        else:
            if self.all_terminated:
                reason = "all-terminated"
            elif stop_on_exploration and self.exploration_complete:
                reason = "explored"
        return self._build_result(reason)

    # ------------------------------------------------------------------
    # occupancy-index maintenance
    # ------------------------------------------------------------------
    # Exactly three kinds of position change exist, each with one helper;
    # every helper bumps the touched nodes' version counters so cached
    # peeks of co-located agents are invalidated.

    def _occ_acquire_port(self, agent: AgentState, target: GlobalDirection) -> None:
        """Interior (or the other port) -> ``target`` port, same node."""
        node = agent.node
        entry = self._occ[node]
        old_port = agent.port
        if old_port is None:
            entry[0] -= 1
        else:
            entry[1 if old_port is _PLUS else 2] = None
            self._released.add((node, old_port))
        entry[1 if target is _PLUS else 2] = agent.index
        versions = self._node_version
        versions[node] = versions.get(node, 0) + 1

    def _occ_vacate_port(self, agent: AgentState) -> None:
        """Port -> interior of the same node (``ENTER_NODE``)."""
        node = agent.node
        entry = self._occ[node]
        entry[1 if agent.port is _PLUS else 2] = None
        entry[0] += 1
        self._released.add((node, agent.port))
        versions = self._node_version
        versions[node] = versions.get(node, 0) + 1

    def _occ_traverse(self, agent: AgentState, new_node: int) -> None:
        """Port of ``agent.node`` -> interior of ``new_node``."""
        node = agent.node
        entry = self._occ[node]
        entry[1 if agent.port is _PLUS else 2] = None
        if entry[0] == 0 and entry[1] is None and entry[2] is None:
            del self._occ[node]
        dest = self._occ.get(new_node)
        if dest is None:
            self._occ[new_node] = [1, None, None]
        else:
            dest[0] += 1
        versions = self._node_version
        versions[node] = versions.get(node, 0) + 1
        versions[new_node] = versions.get(new_node, 0) + 1

    # ------------------------------------------------------------------
    # round phases
    # ------------------------------------------------------------------

    def _resolve_actions(self, decisions: dict[int, Action]) -> set[int]:
        """Apply terminations/releases and resolve port mutual exclusion.

        Returns the set of agents positioned on the port they asked to
        traverse this round (the Move-phase participants).

        Port denial rule: a port occupied at the *start* of the round is
        denied to new requesters all round.  The optimized path answers
        "occupied at start?" from the live index plus ``_released`` (the
        ports vacated earlier in this very call — explicitly by
        ``ENTER_NODE`` or implicitly by an agent winning the opposite
        port); the reference path snapshots the start set up front.
        """
        optimized = self._optimized
        self._released.clear()
        if optimized:
            occupied_at_start = None
        else:
            occupied_at_start = {
                (a.node, a.port) for a in self.agents if a.port is not None
            }
        movers = self._movers
        movers.clear()
        requests = self._requests
        requests.clear()
        trace = self.trace

        for i, action in decisions.items():
            agent = self.agents[i]
            kind = action.kind
            if kind is ActionKind.STAY:
                continue
            if kind is ActionKind.MOVE:
                direction = action.direction
                target = (
                    agent.left_global if direction is _LEFT else agent.right_global
                )
                if agent.port is target:
                    movers.add(i)  # already holds the right port; Btime keeps counting
                else:
                    key = (agent.node, target)
                    group = requests.get(key)
                    if group is None:
                        requests[key] = [i]
                    else:
                        group.append(i)
                continue
            if kind is ActionKind.TERMINATE:
                agent.terminated = True
                self._live.discard(i)
                self.termination_rounds[i] = self.round_no
                if trace is not None:
                    self._emit(EventKind.TERMINATE, i, f"at v{agent.node}")
                continue
            # ENTER_NODE
            if agent.port is not None:
                self._occ_vacate_port(agent)
                agent.port = None
                agent.memory.Btime = 0
                if trace is not None:
                    self._emit(EventKind.ENTER_NODE, i, f"v{agent.node}")

        for (node, target), contenders in requests.items():
            if optimized:
                entry = self._occ.get(node)
                occupied = (
                    entry is not None
                    and entry[1 if target is _PLUS else 2] is not None
                ) or (node, target) in self._released
            else:
                occupied = (node, target) in occupied_at_start
            if occupied:
                winner = -1
            else:
                winner = self._tie_break(contenders)
                if winner not in contenders:
                    raise InvariantViolation("tie-break returned a non-contender")
            for i in contenders:
                agent = self.agents[i]
                # A fresh traversal attempt either way: the consecutive-wait
                # clock restarts (it only accumulates while pushing on the
                # same port across rounds).
                agent.memory.Btime = 0
                if i == winner:
                    self._occ_acquire_port(agent, target)
                    agent.port = target  # may implicitly vacate its other port
                    movers.add(i)
                else:
                    # Section 2.1: "otherwise it sets moved = false".
                    agent.memory.failed = True
                    agent.memory.moved = False
                    if trace is not None:
                        self._emit(
                            EventKind.PORT_DENIED, i, f"v{node} toward {target.name}"
                        )
        return movers

    def _move_phase(self, movers: set[int]) -> None:
        trace = self.trace
        missing = self.missing_edge
        for i in sorted(movers):
            agent = self.agents[i]
            assert agent.port is not None
            edge = self.ring.edge_from(agent.node, agent.port)
            if edge == missing:
                agent.memory.record_blocked()
                if trace is not None:
                    self._emit(EventKind.BLOCKED, i, f"v{agent.node} edge e{edge}")
            else:
                self._traverse(agent, EventKind.MOVE)

        if self.transport is TransportModel.PT:
            last_active = self.last_active
            peek_cache = self._peek_cache
            for agent in self.agents:
                if (
                    agent.terminated
                    or agent.index in last_active
                    or agent.port is None
                ):
                    continue
                edge = self.ring.edge_from(agent.node, agent.port)
                if edge != missing:
                    self._traverse(agent, EventKind.TRANSPORT)
                    # A transported agent's memory changed without it being
                    # active: its cached peek is stale.
                    peek_cache.pop(agent.index, None)

    def _traverse(self, agent: AgentState, kind: EventKind) -> None:
        assert agent.port is not None
        origin = agent.node
        local = _LEFT if agent.port is agent.left_global else _RIGHT
        destination = (origin + int(agent.port)) % self.ring.size
        self._occ_traverse(agent, destination)
        agent.node = destination
        agent.port = None
        agent.memory.record_traversal(local)
        if destination == self._landmark:
            agent.memory.observe_landmark()
        visited = self.visited
        if self.trace is not None:
            self._emit(kind, agent.index, f"v{origin}->v{destination}")
        if destination not in visited:
            visited.add(destination)
            if self.exploration_round is None and len(visited) == self.ring.size:
                # Exploration completes during round `round_no`; by the
                # paper's accounting that is "time round_no + 1" (rounds
                # are 0-indexed).
                self.exploration_round = self.round_no + 1
                if self.trace is not None:
                    self._emit(
                        EventKind.EXPLORED, None, f"after {self.round_no + 1} rounds"
                    )

    def _end_of_round(self, active: set[int], movers: set[int]) -> None:
        peek_cache = self._peek_cache
        for agent in self.agents:
            if agent.terminated:
                continue
            if agent.index in active:
                agent.memory.tick()
                agent.rounds_since_active = 0
                agent.activations += 1
                # Active agents Computed against their real memory (and may
                # have moved/blocked/been denied): drop their cached peeks.
                peek_cache.pop(agent.index, None)
            else:
                agent.rounds_since_active += 1
        if self._debug:
            self._check_invariants()

    # ------------------------------------------------------------------
    # validation / bookkeeping
    # ------------------------------------------------------------------

    def _validated_edge(self, edge: int | None) -> int | None:
        if edge is None:
            return None
        if not isinstance(edge, int) or not 0 <= edge < self.ring.size:
            raise AdversaryViolation(
                f"adversary removed invalid edge {edge!r} on ring of size {self.ring.size}"
            )
        return edge

    def _validated_activation(self, selected: Iterable[int]) -> set[int]:
        live = self._live
        active = {i for i in selected if i in live}
        if not active:
            raise AdversaryViolation(
                "scheduler activated no live agent (activation sets must be non-empty)"
            )
        return active

    def _check_invariants(self) -> None:
        seen: set[tuple[int, GlobalDirection]] = set()
        for agent in self.agents:
            if agent.port is None:
                continue
            key = (agent.node, agent.port)
            if key in seen:
                raise InvariantViolation(f"two agents share port {key}")
            seen.add(key)
        # The occupancy index and live set must equal a fresh recount.
        expected: dict[int, list] = {}
        for agent in self.agents:
            entry = expected.setdefault(agent.node, [0, None, None])
            if agent.port is None:
                entry[0] += 1
            else:
                entry[1 if agent.port is _PLUS else 2] = agent.index
        if expected != self._occ:
            raise InvariantViolation(
                f"occupancy index drifted: have {self._occ}, expected {expected}"
            )
        live = {a.index for a in self.agents if not a.terminated}
        if live != self._live:
            raise InvariantViolation(
                f"live set drifted: have {self._live}, expected {live}"
            )

    def _emit(self, kind: EventKind, agent: int | None, detail) -> None:
        if self.trace is not None:
            self.trace.emit(Event(self.round_no, kind, agent, detail))

    def _build_result(self, reason: str) -> RunResult:
        stats = [
            AgentStats(
                index=a.index,
                moves=a.memory.Tsteps,
                terminated=a.terminated,
                termination_round=self.termination_rounds.get(a.index),
                final_node=a.node,
                waiting_on_port=a.port is not None,
            )
            for a in self.agents
        ]
        return RunResult(
            ring_size=self.ring.size,
            rounds=self.round_no,
            explored=self.exploration_complete,
            exploration_round=self.exploration_round,
            visited=set(self.visited),
            agents=stats,
            halted_reason=reason,
        )
