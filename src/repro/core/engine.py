"""The dynamic-ring simulation engine.

Implements the computational model of Section 2.1 of the paper:

* discrete rounds; at most one ring edge missing per round (1-interval
  connectivity), chosen by an adaptive adversary;
* a non-empty subset of agents activated per round (FSYNC = all of them),
  chosen by a scheduler that may itself be adversarial;
* per active agent: Look (simultaneous local snapshots), Compute (the
  algorithm), Move (port mutual exclusion, traversal, blocking);
* the three SSYNC transport models — NS, PT, ET — governing what happens
  to an agent that sleeps while positioned on a port.

Round anatomy (all ordering decisions documented in DESIGN.md):

1. the adversary picks the missing edge;
2. the scheduler picks the activation set (it already sees the edge choice,
   like the single adversary of the paper that controls both);
3. every active agent Looks at the configuration *as of the start of the
   round* and Computes an action — decisions are simultaneous;
4. actions resolve: terminations, port releases (``ENTER_NODE``) and port
   acquisitions in mutual exclusion — a port occupied at the start of the
   round is denied to new requesters for the whole round, contention among
   new requesters is broken by a pluggable policy (default: lowest index);
5. Move: every active agent standing on the port it requested traverses if
   the edge is present, otherwise it stays blocked on the port; under PT
   every *sleeping* agent on a port of a present edge is passively
   transported across;
6. bookkeeping: counters tick for active agents, landmark observations and
   visited-set updates happen for agents that arrived at a node.

Agents that crossed the same edge in opposite directions simply swap —
the model says they "might not be able to detect each other", and no
snapshot ever exposes the encounter.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Sequence

from .actions import Action, ActionKind, STAY
from .agent import AgentState
from .directions import GlobalDirection, LocalDirection, Orientation, CANONICAL
from .errors import AdversaryViolation, ConfigurationError, InvariantViolation
from .interfaces import ActivationScheduler, Algorithm, EdgeAdversary
from .memory import AgentMemory
from .results import AgentStats, RunResult
from .ring import Ring
from .snapshot import Snapshot
from .trace import Event, EventKind, Trace


class TransportModel(enum.Enum):
    """What happens to an agent sleeping on a port (Section 2.1).

    ``NS`` — no simultaneity: a sleeping agent never moves.
    ``PT`` — passive transport: a sleeping agent on a port of a present
    edge is carried across during that round.
    ``ET`` — eventual transport: like NS, but the *scheduler* must
    guarantee that an agent sleeping on a port of an infinitely-often
    present edge is eventually activated in a round where the edge is
    present (see :class:`repro.schedulers.ssync.ETFairScheduler`).

    Under FSYNC nobody ever sleeps, so the choice is irrelevant there.
    """

    NS = "ns"
    PT = "pt"
    ET = "et"


#: Safety valve for same-round state-transition chains inside algorithms.
MAX_ROUNDS_LIMIT = 100_000_000


def _default_tie_break(contenders: Sequence[int]) -> int:
    """Default port-contention winner: the lowest agent index."""
    return min(contenders)


class Engine:
    """A single simulation of one algorithm on one dynamic ring."""

    def __init__(
        self,
        ring: Ring,
        algorithm: Algorithm,
        positions: Sequence[int],
        *,
        orientations: Sequence[Orientation] | None = None,
        scheduler: ActivationScheduler,
        adversary: EdgeAdversary,
        transport: TransportModel = TransportModel.NS,
        trace: Trace | None = None,
        port_tie_break: Callable[[Sequence[int]], int] = _default_tie_break,
    ) -> None:
        if not positions:
            raise ConfigurationError("at least one agent is required")
        if orientations is None:
            orientations = [CANONICAL] * len(positions)
        if len(orientations) != len(positions):
            raise ConfigurationError(
                f"{len(positions)} positions but {len(orientations)} orientations"
            )
        self.ring = ring
        self.algorithm = algorithm
        self.scheduler = scheduler
        self.adversary = adversary
        self.transport = TransportModel(transport)
        self.trace = trace
        self._tie_break = port_tie_break

        self.agents: list[AgentState] = []
        for index, (node, orientation) in enumerate(zip(positions, orientations)):
            agent = AgentState(
                index=index,
                orientation=orientation,
                node=ring.normalize(node),
                memory=AgentMemory(),
            )
            self.agents.append(agent)

        self.round_no = 0
        self.missing_edge: int | None = None
        self.visited: set[int] = set()
        self.exploration_round: int | None = None
        self.termination_rounds: dict[int, int] = {}
        self.last_active: set[int] = set()

        for agent in self.agents:
            self.algorithm.setup(agent.memory)
            self.visited.add(agent.node)
            if self.ring.is_landmark(agent.node):
                agent.memory.observe_landmark()
        if len(self.visited) == self.ring.size:
            self.exploration_round = 0
        self.adversary.reset(self)
        self.scheduler.reset(self)

    # ------------------------------------------------------------------
    # read API (used by adversaries, schedulers, analysis)
    # ------------------------------------------------------------------

    @property
    def exploration_complete(self) -> bool:
        return len(self.visited) == self.ring.size

    @property
    def live_agents(self) -> list[AgentState]:
        return [a for a in self.agents if not a.terminated]

    @property
    def all_terminated(self) -> bool:
        return all(a.terminated for a in self.agents)

    def port_edge(self, agent: AgentState) -> int | None:
        """The edge the agent's occupied port leads to (``None`` if in a node)."""
        if agent.port is None:
            return None
        return self.ring.edge_from(agent.node, agent.port)

    def snapshot_for(self, agent: AgentState) -> Snapshot:
        """Build the agent's Look snapshot of the current configuration."""
        others_in_node = 0
        left_port = agent.orientation.to_global(LocalDirection.LEFT)
        other_left = False
        other_right = False
        for other in self.agents:
            if other.index == agent.index or other.node != agent.node:
                continue
            if other.port is None:
                others_in_node += 1
            elif other.port is left_port:
                other_left = True
            else:
                other_right = True
        return Snapshot(
            on_port=agent.local_port(),
            others_in_node=others_in_node,
            other_on_left_port=other_left,
            other_on_right_port=other_right,
            is_landmark=self.ring.is_landmark(agent.node),
            moved=agent.memory.moved,
            failed=agent.memory.failed,
        )

    def peek_intended_action(self, index: int) -> Action:
        """Simulate the agent's next Compute without side effects.

        This is the omniscience the paper's adversaries enjoy: protocols
        are deterministic, so an adversary that knows the algorithm can
        always work out what an agent would do if activated now.

        Adversaries call this for every agent every round, so the
        speculative Compute runs against :meth:`AgentMemory.clone` — a
        shallow-plus-vars copy — instead of ``copy.deepcopy``
        (see ``benchmarks/bench_memory_clone.py`` for the difference).
        """
        agent = self.agents[index]
        if agent.terminated:
            return STAY
        snapshot = self.snapshot_for(agent)
        return self.algorithm.compute(snapshot, agent.memory.clone())

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one round; returns ``False`` if no live agent remains."""
        live = self.live_agents
        if not live:
            return False

        self.missing_edge = self._validated_edge(self.adversary.choose_missing_edge(self))
        active = self._validated_activation(self.scheduler.select(self))
        self.last_active = active
        self._emit(EventKind.ROUND, None, (self.missing_edge, tuple(sorted(active))))

        # Look (simultaneous) + Compute.
        snapshots = {i: self.snapshot_for(self.agents[i]) for i in active}
        decisions: dict[int, Action] = {}
        for i in active:
            agent = self.agents[i]
            agent.memory.failed = False
            decisions[i] = self.algorithm.compute(snapshots[i], agent.memory)

        movers = self._resolve_actions(decisions)
        self._move_phase(movers)
        self._end_of_round(active, movers)
        self.round_no += 1
        return True

    def run(
        self,
        max_rounds: int,
        *,
        stop_on_exploration: bool = False,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> RunResult:
        """Run until everyone terminated, a stop condition, or the horizon."""
        if not 0 < max_rounds <= MAX_ROUNDS_LIMIT:
            raise ConfigurationError(f"max_rounds must be in (0, {MAX_ROUNDS_LIMIT}]")
        reason = "horizon"
        for _ in range(max_rounds):
            if self.all_terminated:
                reason = "all-terminated"
                break
            if stop_on_exploration and self.exploration_complete:
                reason = "explored"
                break
            if stop_when is not None and stop_when(self):
                reason = "stop-condition"
                break
            self.step()
        else:
            if self.all_terminated:
                reason = "all-terminated"
            elif stop_on_exploration and self.exploration_complete:
                reason = "explored"
        return self._build_result(reason)

    # ------------------------------------------------------------------
    # round phases
    # ------------------------------------------------------------------

    def _resolve_actions(self, decisions: dict[int, Action]) -> set[int]:
        """Apply terminations/releases and resolve port mutual exclusion.

        Returns the set of agents positioned on the port they asked to
        traverse this round (the Move-phase participants).
        """
        occupied_at_start = {
            (a.node, a.port) for a in self.agents if a.port is not None
        }
        movers: set[int] = set()
        requests: dict[tuple[int, GlobalDirection], list[int]] = {}

        for i, action in decisions.items():
            agent = self.agents[i]
            if action.kind is ActionKind.TERMINATE:
                agent.terminated = True
                self.termination_rounds[i] = self.round_no
                self._emit(EventKind.TERMINATE, i, f"at v{agent.node}")
                continue
            if action.kind is ActionKind.STAY:
                continue
            if action.kind is ActionKind.ENTER_NODE:
                if agent.port is not None:
                    agent.port = None
                    agent.memory.Btime = 0
                    self._emit(EventKind.ENTER_NODE, i, f"v{agent.node}")
                continue
            # MOVE
            assert action.direction is not None
            target = agent.orientation.to_global(action.direction)
            if agent.port is target:
                movers.add(i)  # already holds the right port; Btime keeps counting
            else:
                requests.setdefault((agent.node, target), []).append(i)

        for (node, target), contenders in requests.items():
            if (node, target) in occupied_at_start:
                winners: list[int] = []
            else:
                winner = self._tie_break(contenders)
                if winner not in contenders:
                    raise InvariantViolation("tie-break returned a non-contender")
                winners = [winner]
            for i in contenders:
                agent = self.agents[i]
                # A fresh traversal attempt either way: the consecutive-wait
                # clock restarts (it only accumulates while pushing on the
                # same port across rounds).
                agent.memory.Btime = 0
                if i in winners:
                    agent.port = target  # may implicitly vacate its other port
                    movers.add(i)
                else:
                    # Section 2.1: "otherwise it sets moved = false".
                    agent.memory.failed = True
                    agent.memory.moved = False
                    self._emit(EventKind.PORT_DENIED, i, f"v{node} toward {target.name}")
        return movers

    def _move_phase(self, movers: set[int]) -> None:
        blocked: list[int] = []
        for i in sorted(movers):
            agent = self.agents[i]
            assert agent.port is not None
            edge = self.ring.edge_from(agent.node, agent.port)
            if edge == self.missing_edge:
                agent.memory.record_blocked()
                blocked.append(i)
                self._emit(EventKind.BLOCKED, i, f"v{agent.node} edge e{edge}")
            else:
                self._traverse(agent, EventKind.MOVE)

        if self.transport is TransportModel.PT:
            for agent in self.agents:
                if (
                    agent.terminated
                    or agent.index in self.last_active
                    or agent.port is None
                ):
                    continue
                edge = self.ring.edge_from(agent.node, agent.port)
                if edge != self.missing_edge:
                    self._traverse(agent, EventKind.TRANSPORT)

    def _traverse(self, agent: AgentState, kind: EventKind) -> None:
        assert agent.port is not None
        origin = agent.node
        local = agent.orientation.to_local(agent.port)
        agent.node = self.ring.neighbor(agent.node, agent.port)
        agent.port = None
        agent.memory.record_traversal(local)
        if self.ring.is_landmark(agent.node):
            agent.memory.observe_landmark()
        newly = agent.node not in self.visited
        self.visited.add(agent.node)
        self._emit(kind, agent.index, f"v{origin}->v{agent.node}")
        if newly and self.exploration_complete and self.exploration_round is None:
            # Exploration completes during round `round_no`; by the paper's
            # accounting that is "time round_no + 1" (rounds are 0-indexed).
            self.exploration_round = self.round_no + 1
            self._emit(EventKind.EXPLORED, None, f"after {self.round_no + 1} rounds")

    def _end_of_round(self, active: set[int], movers: set[int]) -> None:
        for i in active:
            agent = self.agents[i]
            if agent.terminated:
                continue
            agent.memory.tick()
        for agent in self.agents:
            if agent.terminated:
                continue
            if agent.index in active:
                agent.rounds_since_active = 0
                agent.activations += 1
            else:
                agent.rounds_since_active += 1
        self._check_invariants()

    # ------------------------------------------------------------------
    # validation / bookkeeping
    # ------------------------------------------------------------------

    def _validated_edge(self, edge: int | None) -> int | None:
        if edge is None:
            return None
        if not isinstance(edge, int) or not 0 <= edge < self.ring.size:
            raise AdversaryViolation(
                f"adversary removed invalid edge {edge!r} on ring of size {self.ring.size}"
            )
        return edge

    def _validated_activation(self, selected: Iterable[int]) -> set[int]:
        live = {a.index for a in self.agents if not a.terminated}
        active = {i for i in selected if i in live}
        if not active:
            raise AdversaryViolation(
                "scheduler activated no live agent (activation sets must be non-empty)"
            )
        return active

    def _check_invariants(self) -> None:
        seen: set[tuple[int, GlobalDirection]] = set()
        for agent in self.agents:
            if agent.port is None:
                continue
            key = (agent.node, agent.port)
            if key in seen:
                raise InvariantViolation(f"two agents share port {key}")
            seen.add(key)

    def _emit(self, kind: EventKind, agent: int | None, detail) -> None:
        if self.trace is not None:
            self.trace.emit(Event(self.round_no, kind, agent, detail))

    def _build_result(self, reason: str) -> RunResult:
        stats = [
            AgentStats(
                index=a.index,
                moves=a.memory.Tsteps,
                terminated=a.terminated,
                termination_round=self.termination_rounds.get(a.index),
                final_node=a.node,
                waiting_on_port=a.port is not None,
            )
            for a in self.agents
        ]
        return RunResult(
            ring_size=self.ring.size,
            rounds=self.round_no,
            explored=self.exploration_complete,
            exploration_round=self.exploration_round,
            visited=set(self.visited),
            agents=stats,
            halted_reason=reason,
        )
