"""The static structure underlying a 1-interval-connected dynamic ring.

A dynamic ring (Section 2.1) is a ring ``R = (v_0, ..., v_{n-1})`` in which
at every round the adversary may remove *at most one* edge — removing one
edge of a ring leaves a connected path, so the network is 1-interval
connected by construction.  The removal choice lives with the adversary
(:mod:`repro.adversary`); this module only models the invariant structure:
node count, edge naming, the optional landmark, and index arithmetic.

Edge ``e_i`` joins ``v_i`` and ``v_{i+1 mod n}`` (the paper's convention in
the proof of Theorem 19).
"""

from __future__ import annotations

from dataclasses import dataclass

from .directions import GlobalDirection
from .errors import ConfigurationError

#: Smallest meaningful ring: the paper's theorems quantify over ``n >= 3``.
MIN_RING_SIZE = 3


@dataclass(frozen=True)
class Ring:
    """An anonymous ring of ``size`` nodes with an optional landmark.

    ``landmark`` is the index of the unique observably-different node
    (Section 2.1), or ``None`` for a fully anonymous ring.  Nodes carry no
    identifiers visible to agents; indices exist only in the global frame
    used by the engine and adversaries.
    """

    size: int
    landmark: int | None = None

    def __post_init__(self) -> None:
        if self.size < MIN_RING_SIZE:
            raise ConfigurationError(
                f"ring size must be >= {MIN_RING_SIZE}, got {self.size}"
            )
        if self.landmark is not None and not 0 <= self.landmark < self.size:
            raise ConfigurationError(
                f"landmark index {self.landmark} outside ring of size {self.size}"
            )

    @property
    def has_landmark(self) -> bool:
        return self.landmark is not None

    @property
    def edges(self) -> range:
        """Edge indices; edge ``i`` joins ``v_i`` and ``v_{i+1 mod size}``."""
        return range(self.size)

    def normalize(self, node: int) -> int:
        """Map an arbitrary integer onto a node index."""
        return node % self.size

    def is_landmark(self, node: int) -> bool:
        return self.landmark is not None and self.normalize(node) == self.landmark

    def neighbor(self, node: int, direction: GlobalDirection) -> int:
        """The node reached from ``node`` moving one step in ``direction``."""
        return (node + int(direction)) % self.size

    def edge_from(self, node: int, direction: GlobalDirection) -> int:
        """The edge used when leaving ``node`` in ``direction``.

        Moving PLUS from ``v_i`` crosses ``e_i``; moving MINUS crosses
        ``e_{i-1}``.
        """
        node = self.normalize(node)
        if direction is GlobalDirection.PLUS:
            return node
        return (node - 1) % self.size

    def edge_endpoints(self, edge: int) -> tuple[int, int]:
        """Both endpoints of edge ``e_i`` as ``(v_i, v_{i+1})``."""
        edge = edge % self.size
        return edge, (edge + 1) % self.size

    def distance(self, a: int, b: int, direction: GlobalDirection) -> int:
        """Hops from ``a`` to ``b`` walking only in ``direction``."""
        a, b = self.normalize(a), self.normalize(b)
        if direction is GlobalDirection.PLUS:
            return (b - a) % self.size
        return (a - b) % self.size

    def hop_distance(self, a: int, b: int) -> int:
        """Undirected ring distance (minimum over the two arcs)."""
        plus = self.distance(a, b, GlobalDirection.PLUS)
        return min(plus, self.size - plus)

    def to_networkx(self, missing_edge: int | None = None):
        """Export the current-round footprint as a ``networkx.Graph``.

        Requires :mod:`networkx` (an optional dependency).  ``missing_edge``
        is the edge the adversary removed this round, if any; the result is
        the connected spanning subgraph guaranteed by 1-interval
        connectivity.  Node attribute ``landmark`` marks the special node.
        """
        import networkx as nx

        graph = nx.Graph()
        for node in range(self.size):
            graph.add_node(node, landmark=self.is_landmark(node))
        for edge in self.edges:
            if missing_edge is not None and edge % self.size == missing_edge % self.size:
                continue
            u, v = self.edge_endpoints(edge)
            graph.add_edge(u, v, index=edge)
        return graph

    def __repr__(self) -> str:
        mark = f", landmark={self.landmark}" if self.landmark is not None else ""
        return f"Ring(size={self.size}{mark})"
