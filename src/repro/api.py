"""High-level facade: build and run an exploration in one call.

Most users want::

    from repro import run_exploration
    from repro.algorithms.fsync import KnownUpperBound

    result = run_exploration(KnownUpperBound(bound=12), ring_size=12,
                             positions=[0, 5], max_rounds=100)
    print(result.summary())

Everything is overridable: adversary, scheduler, transport model,
orientations (chirality), landmark, tracing.  Defaults give the benign
FSYNC setting: no edge ever missing, everyone active, shared orientation.

For *families* of runs there are two campaign entry points built on
:mod:`repro.campaigns`: :func:`run_cell` executes one declarative,
serialisable :class:`~repro.campaigns.spec.CellConfig`, and
:func:`run_campaign` expands a whole sweep spec and executes it in
parallel with resumable JSONL persistence.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .adversary.simple import NoRemoval
from .core.directions import Orientation, orientations_for
from .core.engine import Engine, TransportModel
from .core.interfaces import ActivationScheduler, Algorithm, EdgeAdversary
from .core.results import RunResult
from .core.ring import Ring
from .core.trace import Trace
from .schedulers.fsync import FsyncScheduler


def build_engine(
    algorithm: Algorithm,
    *,
    ring_size: int,
    positions: Sequence[int],
    landmark: int | None = None,
    chirality: bool = True,
    flipped: tuple[int, ...] = (),
    orientations: Sequence[Orientation] | None = None,
    adversary: EdgeAdversary | None = None,
    scheduler: ActivationScheduler | None = None,
    transport: TransportModel = TransportModel.NS,
    trace: Trace | None = None,
    debug_invariants: bool | None = None,
    optimized: bool = True,
) -> Engine:
    """Assemble an :class:`Engine` with sensible defaults.

    ``chirality``/``flipped`` build the orientation vector unless an
    explicit ``orientations`` sequence is given.  Default adversary is
    :class:`NoRemoval`, default scheduler FSYNC.  ``debug_invariants``
    gates the per-round model audit (``None`` = on under pytest, off
    otherwise); ``optimized=False`` selects the reference (scan-based)
    Look path — see the engine docs.
    """
    ring = Ring(ring_size, landmark=landmark)
    if orientations is None:
        orientations = orientations_for(
            len(positions), chirality=chirality, flipped=flipped
        )
    return Engine(
        ring,
        algorithm,
        positions,
        orientations=orientations,
        scheduler=scheduler if scheduler is not None else FsyncScheduler(),
        adversary=adversary if adversary is not None else NoRemoval(),
        transport=transport,
        trace=trace,
        debug_invariants=debug_invariants,
        optimized=optimized,
    )


def run_exploration(
    algorithm: Algorithm,
    *,
    ring_size: int,
    positions: Sequence[int],
    max_rounds: int,
    landmark: int | None = None,
    chirality: bool = True,
    flipped: tuple[int, ...] = (),
    orientations: Sequence[Orientation] | None = None,
    adversary: EdgeAdversary | None = None,
    scheduler: ActivationScheduler | None = None,
    transport: TransportModel = TransportModel.NS,
    trace: Trace | None = None,
    stop_on_exploration: bool = False,
    stop_when: Callable[[Engine], bool] | None = None,
) -> RunResult:
    """Build an engine and run it to completion (see :func:`build_engine`)."""
    engine = build_engine(
        algorithm,
        ring_size=ring_size,
        positions=positions,
        landmark=landmark,
        chirality=chirality,
        flipped=flipped,
        orientations=orientations,
        adversary=adversary,
        scheduler=scheduler,
        transport=transport,
        trace=trace,
    )
    return engine.run(
        max_rounds,
        stop_on_exploration=stop_on_exploration,
        stop_when=stop_when,
    )


def run_cell(cell, *, trace: Trace | None = None) -> RunResult:
    """Run one campaign cell (:class:`~repro.campaigns.spec.CellConfig`).

    The declarative twin of :func:`run_exploration`: the configuration is
    plain data (names into the campaign registry), so it can be hashed,
    stored and shipped across processes.  Works for every topology —
    ring cells and graph cells build on the same unified core and return
    the same :class:`RunResult`.  Imported lazily because
    :mod:`repro.campaigns` itself builds on this module.
    """
    from .campaigns.registry import build_cell_engine

    engine = build_cell_engine(cell, trace=trace)
    return engine.run(cell.max_rounds, stop_on_exploration=cell.stop_on_exploration)


def run_campaign(
    spec,
    store: str | None = None,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    retry_failed: bool = False,
    distributed: bool = False,
    lease_ttl_s: float | None = None,
):
    """Expand and execute a campaign spec; returns the executor's report.

    ``spec`` is a :class:`~repro.campaigns.spec.CampaignSpec` or the name
    of a preset (``"smoke"``, ``"table2-fsync"``, …).  ``store`` selects
    where results stream: a backend URI (``"sqlite:results/t2.db"``,
    ``"jsonl:results/t2.jsonl"``), a bare path (JSONL by default), or a
    :class:`~repro.campaigns.stores.ResultStore` instance (default:
    ``results/<name>.jsonl``).  Re-running with the same spec and store
    resumes, skipping completed cells; ``retry_failed=True`` also
    re-drives cells whose only outcome so far is an error record.

    ``distributed=True`` executes through the lease-based work queue of
    :mod:`repro.campaigns.distributed` instead of a multiprocessing
    pool: pending cells are enqueued as claimable chunks in the (SQLite;
    default ``results/<name>.db``) store and ``workers`` local worker
    processes drain them — while any other machine pointed at the same
    store with ``python -m repro campaign worker`` joins the same fleet.
    """
    from .campaigns import executor, presets

    if isinstance(spec, str):
        spec = presets.get_spec(spec)
    if store is None:
        store = (f"results/{spec.name}.db" if distributed
                 else f"results/{spec.name}.jsonl")
    return executor.run_campaign(
        spec, store, workers=workers, chunk_size=chunk_size,
        retry_failed=retry_failed, distributed=distributed,
        lease_ttl_s=lease_ttl_s,
    )
