"""Robustness as a first-class subsystem, at both layers of the stack.

The paper's guarantees are stated for fault-free agents and the fleet
from the distributed subsystem is SIGKILL-tested — this package covers
everything in between:

* :mod:`~repro.resilience.faults` — agent fault models (crash-at-round,
  crash-on-edge-removal, stochastic crash rate) as an ordinary campaign
  dimension (``CellConfig.faults``), injected through one hook in the
  :class:`~repro.core.sim.SimulationCore` round loop;
* :mod:`~repro.resilience.chaos` — a seeded, env-gated
  (``REPRO_CHAOS=<spec>``) :class:`ChaosPolicy` injecting transient
  ``OperationalError``\\ s, crash-before/after-commit points, heartbeat
  clock skew and delayed completions into the store/queue layer,
  replayable byte-for-byte from its seed;
* :mod:`~repro.resilience.retry` — the one capped-exponential-backoff
  :func:`retry` helper every store/queue transaction routes through;
* :mod:`~repro.resilience.fsck` — store integrity checks behind
  ``campaign fsck`` (torn JSONL tails, orphaned leases, duplicate cell
  keys, chunk/span referential integrity) with quarantine-and-continue.
"""

from .chaos import ChaosCrash, ChaosPolicy, chaos_policy, reset_chaos_policy
from .faults import FaultInjector, FaultPlan
from .fsck import Finding, FsckReport, fsck_store
from .retry import retry

__all__ = [
    "ChaosCrash",
    "ChaosPolicy",
    "chaos_policy",
    "reset_chaos_policy",
    "FaultInjector",
    "FaultPlan",
    "Finding",
    "FsckReport",
    "fsck_store",
    "retry",
]
