"""Agent fault models: crash faults as an ordinary campaign dimension.

The paper's guarantees assume fault-free agents; the follow-up work
(arXiv 2001.04525) asks what survives with fewer or weaker robots.  A
:class:`FaultPlan` describes, declaratively and hashably, which agents
die and when — so ``CellConfig.faults`` sweeps fault models exactly the
way ``seed`` sweeps randomness, and ``report --fit`` contrasts the
fault-free bounds against their faulty counterparts.

Plan grammar — comma-separated clauses in one string::

    "crash:1@4"          agent 1 crashes at the start of round 4
    "lost:0"             agent 0 is lost the round it waits on a removed edge
    "lost:*"             every agent is removal-lossy
    "rate:0.01"          each live agent crashes w.p. 0.01 per round (seeded)

A crashed agent vanishes from the configuration: it leaves the live
set, its node/port occupancy is released (a dead robot does not hold a
port against the mutual-exclusion rule forever), and termination
semantics re-anchor on the *surviving-agent census* — a run where every
survivor terminated halts ``all-terminated``; a run that loses everyone
halts ``all-crashed``.

The stochastic clause draws from its own ``random.Random`` seeded from
the cell seed, so faulty cells replay deterministically and never
perturb the adversary's or scheduler's seeded streams.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from ..core.errors import ConfigurationError

_CRASH_RE = re.compile(r"^crash:(\d+)@(\d+)$")
_LOST_RE = re.compile(r"^lost:(\d+|\*)$")
_RATE_RE = re.compile(r"^rate:(0(?:\.\d+)?|\.\d+)$")


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, validated fault specification (immutable, hashable)."""

    #: ``(round, agent)`` scheduled crashes, sorted.
    crash_at: tuple[tuple[int, int], ...] = ()
    #: Agents lost when blocked on a removed edge.
    lost: frozenset = frozenset()
    #: ``lost:*`` — every agent is removal-lossy.
    lost_all: bool = False
    #: Per-agent per-round stochastic crash probability.
    rate: float = 0.0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``faults`` spec string; raises on anything malformed."""
        crash_at: list[tuple[int, int]] = []
        lost: set[int] = set()
        lost_all = False
        rate = 0.0
        clauses = [c.strip() for c in spec.split(",") if c.strip()]
        if not clauses:
            raise ConfigurationError(
                f"empty fault plan {spec!r} (use e.g. 'crash:1@4', "
                f"'lost:*', 'rate:0.01')")
        for clause in clauses:
            if match := _CRASH_RE.match(clause):
                crash_at.append((int(match.group(2)), int(match.group(1))))
            elif match := _LOST_RE.match(clause):
                if match.group(1) == "*":
                    lost_all = True
                else:
                    lost.add(int(match.group(1)))
            elif match := _RATE_RE.match(clause):
                if rate:
                    raise ConfigurationError(
                        f"fault plan {spec!r} sets rate twice")
                rate = float(match.group(1))
                if not 0.0 < rate < 1.0:
                    raise ConfigurationError(
                        f"fault rate must be in (0, 1), got {rate}")
            else:
                raise ConfigurationError(
                    f"bad fault clause {clause!r} (expected crash:A@R, "
                    f"lost:A, lost:* or rate:P)")
        if len({agent for _, agent in crash_at}) != len(crash_at):
            raise ConfigurationError(
                f"fault plan {spec!r} crashes the same agent twice")
        return cls(crash_at=tuple(sorted(crash_at)), lost=frozenset(lost),
                   lost_all=lost_all, rate=rate)

    def validate_agents(self, agents: int) -> None:
        """Check every named agent index exists in a team of ``agents``."""
        named = {agent for _, agent in self.crash_at} | set(self.lost)
        bad = sorted(i for i in named if not 0 <= i < agents)
        if bad:
            raise ConfigurationError(
                f"fault plan names agent(s) {bad} but the cell has "
                f"{agents} agent(s) (indexes 0..{agents - 1})")

    def injector(self, *, seed: int = 0) -> "FaultInjector":
        """A fresh per-run injector (owns the stochastic clause's RNG)."""
        return FaultInjector(self, seed=seed)


class FaultInjector:
    """Per-run execution state of one :class:`FaultPlan`.

    The engine consults it at the start of every round
    (:meth:`crashes_at_round`) and whenever an agent waits on a removed
    edge (:meth:`lost_on_removal`).  One injector serves one run: the
    stochastic stream advances with the rounds.
    """

    def __init__(self, plan: FaultPlan, *, seed: int = 0) -> None:
        self.plan = plan
        self._scheduled: dict[int, list[int]] = {}
        for round_no, agent in plan.crash_at:
            self._scheduled.setdefault(round_no, []).append(agent)
        # A dedicated stream (offset so it never aliases the adversary's
        # `seed` or the scheduler's `seed + 1` streams).
        self._rng = random.Random(seed + 0x5EED) if plan.rate else None

    def crashes_at_round(self, round_no: int, live: list[int]) -> list[int]:
        """Indexes (sorted, live) to crash at the start of ``round_no``.

        One stochastic draw per live agent per round, in index order —
        the draw sequence is a pure function of (seed, live-set
        history), so a faulty run replays exactly.
        """
        doomed = self._scheduled.get(round_no)
        hit = [i for i in doomed if i in live] if doomed else []
        if self._rng is not None:
            rate = self.plan.rate
            hit.extend(i for i in live
                       if self._rng.random() < rate and i not in hit)
        return sorted(hit)

    def lost_on_removal(self, index: int) -> bool:
        """Is ``index`` lost the round it waits on a removed edge?"""
        return self.plan.lost_all or index in self.plan.lost
