"""The unified retry/timeout/backoff helper for store and queue writes.

Before this module every transaction site handled ``SQLITE_BUSY`` its
own way (a connection-level ``timeout`` here, an ad-hoc except there).
Now there is exactly one policy: :func:`retry` wraps a transaction
attempt in up to :data:`DEFAULT_ATTEMPTS` tries with capped exponential
backoff and *deterministic* jitter — the delay schedule is a pure
function of ``(site, attempt)``, never of RNG state, so retries shift
no seeded randomness and two runs of the same workload back off
identically.

The chaos harness (:mod:`repro.resilience.chaos`) injects its transient
``OperationalError`` *here*, at the choke point every hardened
transaction already passes through: an injected busy error exercises
precisely the code path a real lock collision would.

Obs counters (no-ops unless metrics are enabled):

* ``resilience.retries``  — attempts that failed transiently and were retried;
* ``resilience.gave_up``  — calls that exhausted their attempts.
"""

from __future__ import annotations

import sqlite3
import time
import zlib
from typing import Any, Callable

from ..obs import metrics as obs_metrics
from .chaos import chaos_policy

#: Default attempt budget: enough to ride out a multi-worker lock
#: convoy, small enough that a genuinely wedged database surfaces fast.
DEFAULT_ATTEMPTS = 6

#: First backoff delay; doubles per attempt up to :data:`DEFAULT_CAP_S`.
DEFAULT_BASE_S = 0.01

#: Backoff ceiling — a retry never sleeps longer than this.
DEFAULT_CAP_S = 0.25


def backoff_delay(site: str, attempt: int, *,
                  base_s: float = DEFAULT_BASE_S,
                  cap_s: float = DEFAULT_CAP_S) -> float:
    """The deterministic sleep before retry number ``attempt`` (1-based).

    Capped exponential backoff plus up to 50% jitter derived from
    ``crc32(site:attempt)`` — stable across processes and Python hash
    randomization, so backoff schedules are replayable and two sites
    colliding once do not stay in lockstep forever.
    """
    delay = min(cap_s, base_s * (2 ** (attempt - 1)))
    jitter = zlib.crc32(f"{site}:{attempt}".encode()) % 1000 / 1000.0
    return delay * (1.0 + 0.5 * jitter)


def retry(
    fn: Callable[[], Any],
    *,
    site: str,
    attempts: int = DEFAULT_ATTEMPTS,
    base_s: float = DEFAULT_BASE_S,
    cap_s: float = DEFAULT_CAP_S,
    retry_on: tuple[type[BaseException], ...] = (sqlite3.OperationalError,),
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn`` until it succeeds, retrying transient failures.

    Only exceptions in ``retry_on`` (default: SQLite's transient
    ``OperationalError`` — lock contention, busy timeouts) are retried;
    everything else, including :class:`~repro.resilience.chaos.ChaosCrash`
    and the queue's ``LeaseLost``, propagates immediately.  The final
    attempt's exception is re-raised unchanged once the budget is spent.

    ``site`` names the call site for jitter derivation, chaos targeting
    and log/metric labels (e.g. ``"queue.claim"``, ``"store.write"``).
    """
    chaos = chaos_policy()
    last_attempt = max(1, attempts)
    for attempt in range(1, last_attempt + 1):
        try:
            if chaos is not None:
                chaos.maybe_busy(site)
            return fn()
        except retry_on:
            if attempt == last_attempt:
                if obs_metrics.enabled():
                    obs_metrics.registry().counter("resilience.gave_up").inc()
                raise
            if obs_metrics.enabled():
                obs_metrics.registry().counter("resilience.retries").inc()
            sleep(backoff_delay(site, attempt, base_s=base_s, cap_s=cap_s))
