"""Store integrity validation behind ``campaign fsck``.

A campaign store survives worker crashes by construction (append-only
JSONL, one-transaction lease completion) — ``fsck`` is how an operator
*proves* a store that lived through chaos is healthy, and quarantines
what is not instead of crashing every future reader:

JSONL checks
    * ``torn-tail`` — a final line truncated mid-write (the signature of
      a killed process; quarantine moves the bytes to ``<path>.quarantine``
      and truncates the store back to whole records);
    * ``malformed-line`` — an interior line that is not a JSON record;
    * ``bad-record`` — a parsed record missing ``key``/``config`` or
      carrying neither ``metrics`` nor ``error``;
    * ``duplicate-key`` — a cell key recorded successfully more than
      once (error-then-success retries are legitimate and not flagged).

SQLite checks
    * ``duplicate-key`` — as above, over ``ok = 1`` rows;
    * ``orphaned-lease`` — a lease row whose chunk is missing or not in
      state ``leased`` (quarantine deletes the lease);
    * ``leaseless-chunk`` — a ``leased`` chunk with no lease row
      (quarantine returns it to ``pending`` so a worker can claim it);
    * ``chunk-integrity`` — ``n_cells``/``cell_keys``/``cells`` payloads
      that disagree or fail to parse (quarantine parks the chunk);
    * ``orphaned-span`` — a span whose parent was never persisted
      (warning: a crashed worker flushes children before its session
      span closes — expected debris, not corruption);
    * ``bad-record`` — a result row whose JSON fails to parse
      (quarantine deletes the row so the cell re-runs).

Findings carry a severity: ``error`` findings fail ``campaign fsck``
(exit 1) unless repaired by ``--quarantine``; ``warning`` findings are
reported but never fail the check.

No store imports at module level on purpose: the store backends import
:mod:`repro.resilience.retry`, so this module resolves backends by
their ``scheme`` attribute at call time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ConfigurationError
from ..obs.logs import get_logger

_log = get_logger(__name__)


@dataclass
class Finding:
    """One integrity problem found in a store."""

    check: str
    severity: str            # "error" | "warning"
    message: str
    repaired: bool = False

    def render(self) -> str:
        tag = "repaired" if self.repaired else self.severity
        return f"[{tag}] {self.check}: {self.message}"


@dataclass
class FsckReport:
    """Everything one :func:`fsck_store` pass found (and fixed)."""

    store_uri: str
    checks: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def ok(self) -> bool:
        """No unrepaired error-severity findings remain."""
        return not any(
            f.severity == "error" and not f.repaired for f in self.findings)

    def summary(self) -> str:
        if self.clean:
            return (f"fsck {self.store_uri}: clean "
                    f"({len(self.checks)} checks)")
        repaired = sum(1 for f in self.findings if f.repaired)
        errors = sum(1 for f in self.findings
                     if f.severity == "error" and not f.repaired)
        warnings = sum(1 for f in self.findings
                       if f.severity == "warning" and not f.repaired)
        return (f"fsck {self.store_uri}: {len(self.findings)} finding(s) — "
                f"{errors} error(s), {warnings} warning(s), "
                f"{repaired} repaired")

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend("  " + f.render() for f in self.findings)
        return "\n".join(lines)


def fsck_store(store: Any, *, quarantine: bool = False) -> FsckReport:
    """Validate one store's integrity; optionally quarantine-and-repair."""
    report = FsckReport(store_uri=store.uri())
    scheme = getattr(store, "scheme", None)
    if scheme == "jsonl":
        _fsck_jsonl(store, report, quarantine=quarantine)
    elif scheme == "sqlite":
        _fsck_sqlite(store, report, quarantine=quarantine)
    else:
        raise ConfigurationError(
            f"fsck does not know store backend {type(store).__name__} "
            f"(scheme {scheme!r})")
    _check_duplicates(store, report)
    return report


# ---------------------------------------------------------------------------
# shared checks
# ---------------------------------------------------------------------------

def _check_duplicates(store: Any, report: FsckReport) -> None:
    """A cell key must hold at most one *successful* record."""
    report.checks.append("duplicate-key")
    seen: dict[str, int] = {}
    for record in store.records():
        if "error" in record:
            continue
        key = record.get("key")
        seen[key] = seen.get(key, 0) + 1
    for key, count in sorted(seen.items()):
        if count > 1:
            report.findings.append(Finding(
                "duplicate-key", "error",
                f"cell {key} recorded successfully {count} times"))


def _check_record_shape(record: dict, where: str, report: FsckReport) -> None:
    missing = [k for k in ("key", "config") if k not in record]
    if missing or ("metrics" not in record and "error" not in record):
        what = (f"missing {missing}" if missing
                else "has neither metrics nor error")
        report.findings.append(Finding(
            "bad-record", "warning", f"record at {where} {what}"))


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def _fsck_jsonl(store: Any, report: FsckReport, *, quarantine: bool) -> None:
    report.checks.extend(["torn-tail", "malformed-line", "bad-record"])
    path = store.path
    if not path.exists():
        return
    raw = path.read_bytes()
    good: list[bytes] = []
    bad: list[tuple[int, bytes, bool]] = []   # (line_no, bytes, is_tail)
    lines = raw.split(b"\n")
    trailing_newline = raw.endswith(b"\n")
    if trailing_newline or lines[-1] == b"":
        lines = lines[:-1]
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            good.append(line)
            continue
        is_tail = line_no == len(lines) and not trailing_newline
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            check = "torn-tail" if is_tail else "malformed-line"
            bad.append((line_no, line, is_tail))
            report.findings.append(Finding(
                check, "error",
                f"line {line_no}: {type(exc).__name__}: "
                f"{str(exc)[:80]} ({len(line)} bytes)"))
            continue
        good.append(line)
        if isinstance(record, dict):
            _check_record_shape(record, f"line {line_no}", report)
        else:
            report.findings.append(Finding(
                "bad-record", "warning",
                f"line {line_no} is not a JSON object"))
    if bad and quarantine:
        sidecar = path.with_name(path.name + ".quarantine")
        with sidecar.open("ab") as fh:
            for line_no, line, _ in bad:
                fh.write(line + b"\n")
        with path.open("wb") as fh:
            for line in good:
                fh.write(line + b"\n")
        for finding in report.findings:
            if finding.check in ("torn-tail", "malformed-line"):
                finding.repaired = True
        _log.warning("quarantined %d malformed line(s) of %s to %s",
                     len(bad), path, sidecar)
        store.invalidate_caches()


# ---------------------------------------------------------------------------
# SQLite
# ---------------------------------------------------------------------------

def _scoped(store: Any, column: str = "campaign_key") -> tuple[str, list]:
    if store.campaign is None:
        return "", []
    return f" WHERE {column} = ?", [store.campaign]


def _fsck_sqlite(store: Any, report: FsckReport, *, quarantine: bool) -> None:
    report.checks.extend(["bad-record", "orphaned-lease", "leaseless-chunk",
                          "chunk-integrity", "orphaned-span"])
    if not store.path.exists():
        return
    conn = store.connection()
    scope, params = _scoped(store)

    # results: every row's record must be parseable and well-shaped.
    bad_rows: list[int] = []
    for row_id, text in conn.execute(
            f"SELECT id, record FROM results{scope}", params):
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            bad_rows.append(row_id)
            report.findings.append(Finding(
                "bad-record", "error",
                f"results row {row_id}: {str(exc)[:80]}"))
            continue
        _check_record_shape(record, f"results row {row_id}", report)
    if bad_rows and quarantine:
        with conn:
            conn.executemany("DELETE FROM results WHERE id = ?",
                             [(i,) for i in bad_rows])
        for finding in report.findings:
            if finding.check == "bad-record" and finding.severity == "error":
                finding.repaired = True
        _log.warning("quarantined %d unparseable result row(s) of %s",
                     len(bad_rows), store.path)
        store.invalidate_caches()

    # leases <-> chunks referential integrity.
    orphaned = [
        (lease_chunk, worker)
        for lease_chunk, worker, state in conn.execute(
            "SELECT l.chunk_id, l.worker_id, c.state FROM leases l "
            "LEFT JOIN chunks c ON c.id = l.chunk_id")
        if state != "leased"
    ]
    for chunk_id, worker in orphaned:
        finding = Finding(
            "orphaned-lease", "error",
            f"lease on chunk {chunk_id} (held by {worker}) has no "
            f"matching leased chunk")
        if quarantine:
            with conn:
                conn.execute("DELETE FROM leases WHERE chunk_id = ?",
                             (chunk_id,))
            finding.repaired = True
        report.findings.append(finding)

    leaseless = [
        chunk_id for (chunk_id,) in conn.execute(
            f"SELECT c.id FROM chunks c LEFT JOIN leases l "
            f"ON l.chunk_id = c.id "
            f"WHERE c.state = 'leased' AND l.chunk_id IS NULL"
            + (" AND c.campaign_key = ?" if scope else ""), params)
    ]
    for chunk_id in leaseless:
        finding = Finding(
            "leaseless-chunk", "error",
            f"chunk {chunk_id} is 'leased' but holds no lease row")
        if quarantine:
            with conn:
                conn.execute(
                    "UPDATE chunks SET state = 'pending' WHERE id = ?",
                    (chunk_id,))
            finding.repaired = True
        report.findings.append(finding)

    # chunk payload integrity: cells/cell_keys/n_cells must agree.
    # Chunks already parked as 'failed' are skipped — that is where a
    # previous quarantine pass (or the worker's poison-chunk guard)
    # deliberately left them, so re-flagging would never converge.
    for chunk_id, cells_json, keys_json, n_cells in conn.execute(
            f"SELECT id, cells, cell_keys, n_cells FROM chunks "
            f"WHERE state != 'failed'"
            + (" AND campaign_key = ?" if scope else ""), params):
        problem = None
        try:
            cells = json.loads(cells_json)
            keys = json.loads(keys_json)
        except json.JSONDecodeError as exc:
            problem = f"unparseable payload: {str(exc)[:60]}"
        else:
            if not (len(cells) == len(keys) == n_cells):
                problem = (f"n_cells={n_cells} but {len(cells)} cells / "
                           f"{len(keys)} keys")
        if problem is None:
            continue
        finding = Finding(
            "chunk-integrity", "error", f"chunk {chunk_id}: {problem}")
        if quarantine:
            with conn:
                conn.execute(
                    "UPDATE chunks SET state = 'failed' WHERE id = ?",
                    (chunk_id,))
                conn.execute("DELETE FROM leases WHERE chunk_id = ?",
                             (chunk_id,))
            finding.repaired = True
        report.findings.append(finding)

    # span hierarchy: a persisted child should have a persisted parent.
    # A worker killed mid-session flushes chunk/cell spans whose session
    # span never closes — debris chaos runs are expected to leave.
    for span_id, parent_id in conn.execute(
            f"SELECT s.span_id, s.parent_id FROM spans s{scope} "
            f"{'AND' if scope else 'WHERE'} s.parent_id IS NOT NULL "
            f"AND s.parent_id NOT IN (SELECT span_id FROM spans)",
            params):
        report.findings.append(Finding(
            "orphaned-span", "warning",
            f"span {span_id} references missing parent {parent_id}"))
