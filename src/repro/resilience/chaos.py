"""Deterministic chaos injection for the store/queue layer.

``REPRO_CHAOS=<spec>`` arms a process-wide, *seeded*
:class:`ChaosPolicy` that the hardened transaction sites consult:

* transient ``sqlite3.OperationalError`` injection at every
  :func:`~repro.resilience.retry.retry` choke point (``busy=P``);
* a crash (process death) before or after the Nth completion commit
  (``crash=before-commit:N`` / ``crash=after-commit:N``) — the
  before-commit point rolls back and leaves an orphaned lease for a
  peer to steal, the after-commit point dies with the records safely
  recorded, exactly like a SIGKILL between two syscalls;
* heartbeat clock skew (``skew=S`` seconds added to the queue's wall
  clock — a worker whose clock is off);
* delayed completions (``delay=S`` slept before each completion).

Spec grammar — comma-separated ``key=value`` clauses::

    REPRO_CHAOS="seed=7,busy=0.2,crash=after-commit:2,skew=5,delay=0.01"

Determinism is the point: every stochastic decision draws from one
``random.Random(seed)``, so the same spec replays the same injection
schedule byte for byte (pinned by ``tests/resilience/test_chaos.py``)
and a chaos run that settles must leave a store byte-identical to an
undisturbed run — which is what the CI chaos lane diffs.
"""

from __future__ import annotations

import os
import random
import re
import sqlite3
import time
from typing import Callable

from ..core.errors import ConfigurationError
from ..obs import metrics as obs_metrics

#: Environment variable carrying the chaos spec (empty/unset = no chaos).
CHAOS_ENV = "REPRO_CHAOS"

#: Commit points :meth:`ChaosPolicy.crash_point` recognises.
CRASH_POINTS = ("before-commit", "after-commit")

_CRASH_RE = re.compile(r"^(before-commit|after-commit):(\d+)$")


class ChaosCrash(BaseException):
    """Deliberate process death at an armed commit point.

    Derives from ``BaseException`` so ordinary ``except Exception``
    recovery code cannot swallow it — a chaos crash must take the
    process down the way a SIGKILL would, not be retried into cleanup
    paths a real crash never reaches.
    """


class ChaosPolicy:
    """One process's armed chaos configuration (seeded, replayable)."""

    def __init__(self, *, seed: int = 0, busy: float = 0.0,
                 crash_point: str | None = None, crash_nth: int = 0,
                 skew_s: float = 0.0, delay_s: float = 0.0) -> None:
        if not 0.0 <= busy < 1.0:
            raise ConfigurationError(
                f"chaos busy probability must be in [0, 1), got {busy}")
        if crash_point is not None and crash_point not in CRASH_POINTS:
            raise ConfigurationError(
                f"chaos crash point must be one of {CRASH_POINTS}, "
                f"got {crash_point!r}")
        if delay_s < 0:
            raise ConfigurationError(f"chaos delay must be >= 0, got {delay_s}")
        self.seed = int(seed)
        self.busy = float(busy)
        self.crash_at = crash_point
        self.crash_nth = int(crash_nth)
        self.skew_s = float(skew_s)
        self.delay_s = float(delay_s)
        self._rng = random.Random(self.seed)
        self._commits = 0

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse a ``REPRO_CHAOS`` spec string (see module docstring)."""
        kwargs: dict = {}
        for clause in filter(None, (c.strip() for c in spec.split(","))):
            key, sep, value = clause.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"bad chaos clause {clause!r} (expected key=value)")
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "busy":
                    kwargs["busy"] = float(value)
                elif key == "crash":
                    match = _CRASH_RE.match(value)
                    if match is None:
                        raise ConfigurationError(
                            f"bad chaos crash spec {value!r} (expected "
                            f"before-commit:N or after-commit:N)")
                    kwargs["crash_point"] = match.group(1)
                    kwargs["crash_nth"] = int(match.group(2))
                elif key == "skew":
                    kwargs["skew_s"] = float(value)
                elif key == "delay":
                    kwargs["delay_s"] = float(value)
                else:
                    raise ConfigurationError(
                        f"unknown chaos key {key!r} (choose from "
                        f"seed/busy/crash/skew/delay)")
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad chaos clause {clause!r}: {exc}") from exc
        return cls(**kwargs)

    # -- injection points ----------------------------------------------

    def maybe_busy(self, site: str) -> None:
        """Raise a transient lock error with probability ``busy``.

        Called by :func:`~repro.resilience.retry.retry` before each
        attempt, so an injection exercises exactly the backoff path a
        real ``SQLITE_BUSY`` would.  Draw order is fixed (one draw per
        attempt), which is what makes the schedule replayable.
        """
        if self.busy and self._rng.random() < self.busy:
            self._count("busy")
            raise sqlite3.OperationalError(
                f"database is locked [chaos {site}]")

    def crash_point(self, point: str) -> None:
        """Die at the armed commit point once its Nth visit arrives."""
        if self.crash_at != point:
            return
        self._commits += 1
        if self._commits == self.crash_nth:
            self._count("crash")
            raise ChaosCrash(f"chaos crash at {point} #{self._commits}")

    def skewed(self, clock: Callable[[], float]) -> Callable[[], float]:
        """Wrap a wall clock with this policy's constant skew."""
        if not self.skew_s:
            return clock
        skew = self.skew_s

        def skewed_clock() -> float:
            return clock() + skew

        return skewed_clock

    def maybe_delay(self) -> None:
        """Sleep the configured completion delay (no-op when unset)."""
        if self.delay_s:
            self._count("delay")
            time.sleep(self.delay_s)

    def _count(self, kind: str) -> None:
        if obs_metrics.enabled():
            obs_metrics.registry().counter(
                "resilience.faults_injected").inc()
            obs_metrics.registry().counter(
                f"resilience.chaos.{kind}").inc()

    def __repr__(self) -> str:
        return (f"ChaosPolicy(seed={self.seed}, busy={self.busy}, "
                f"crash={self.crash_at}:{self.crash_nth}, "
                f"skew_s={self.skew_s}, delay_s={self.delay_s})")


#: Cached process policy; ``False`` = not parsed yet (None = chaos off).
_POLICY: ChaosPolicy | None | bool = False


def chaos_policy() -> ChaosPolicy | None:
    """The process's armed policy, or ``None`` when chaos is off.

    Parsed from :data:`CHAOS_ENV` exactly once per process: the policy
    owns the RNG whose draw sequence *is* the injection schedule, so
    re-parsing mid-run would reset the schedule.
    """
    global _POLICY
    if _POLICY is False:
        spec = os.environ.get(CHAOS_ENV, "").strip()
        _POLICY = ChaosPolicy.parse(spec) if spec else None
    return _POLICY


def reset_chaos_policy() -> None:
    """Drop the cached policy so the next call re-reads the env (tests)."""
    global _POLICY
    _POLICY = False
