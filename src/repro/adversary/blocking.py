"""Adaptive adversaries built on move look-ahead (Observations 1 and 2).

Both adversaries here exploit the determinism of the protocols: the
adversary simulates what each agent would do if activated now
(:meth:`Engine.peek_intended_action`) and removes an edge accordingly —
exactly the omniscient adversary of the paper's basic limitations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import ActionKind

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


class BlockAgentAdversary:
    """Observation 1: forever remove the edge one agent wants to cross.

    "The adversary can prevent an agent from leaving the initial node
    ``v0`` by always removing the edge over which the agent wants to leave
    ``v0``."  With a single agent this proves Corollary 1 (one agent cannot
    explore); with several it pins the target while the rest roam.
    """

    def __init__(self, target: int = 0) -> None:
        self._target = target

    def reset(self, engine: "Engine") -> None:
        if not 0 <= self._target < len(engine.agents):
            raise ValueError(f"no agent with index {self._target}")

    def choose_missing_edge(self, engine: "Engine"):
        agent = engine.agents[self._target]
        if agent.terminated:
            return None
        # Peek even when the agent already waits on a port: it may decide
        # to reverse this very round, and Observation 1's adversary always
        # removes the edge the agent is about to try.
        edge = engine.peek_intended_edge(self._target)
        if edge is not None:
            return edge
        if agent.port is not None:
            return engine.port_edge(agent)
        return None

    def __repr__(self) -> str:
        return f"BlockAgentAdversary(target={self._target})"


class MeetingPreventionAdversary:
    """Observation 2: never let the two agents end a round at the same node.

    "The adversary will never remove an edge, except in the case when that
    would lead to agents meeting in the next step."  Two cases (paper's
    proof):

    * one agent waits at a node and the other would traverse the edge
      between them — remove that edge;
    * both agents would traverse different edges into the same node —
      remove either one.

    We prevent *any* co-location at a node (interior or port), which also
    rules out the ``catches``/``caught`` detections — the Theorem 1
    construction needs the agents to never observe each other at all.  Two
    agents crossing the *same* edge in opposite directions swap without
    meeting ("might not be able to detect each other"), so that case needs
    (and gets) no removal.  The construction is stated for two agents; with
    more agents one removal per round may not suffice, so :meth:`reset`
    rejects larger teams.

    The construction is **topology-generic**: prediction resolves moves
    through :attr:`~repro.core.sim.SimulationCore.topology` (a ring MOVE
    carries a local direction, a graph explorer MOVE a port number), and
    the distance argument survives on any graph — two agents about to
    co-locate at ``v`` arrive over at most two identifiable edges, and one
    removal per round suffices.  What does *not* survive everywhere is
    removal *legality*: on the ring every single-edge removal is legal, on
    a general graph the chosen edge may be a bridge.  Graph cells wrap
    this adversary in
    :class:`~repro.extensions.dynamic_graph.ConnectivitySafeAdversary`,
    which turns an illegal choice into "remove nothing" — so on the path,
    where *every* edge is a bridge, the adversary is provably impotent
    and meetings happen (the degree-2 boundary of Observation 2's reach).
    """

    def reset(self, engine: "Engine") -> None:
        if len(engine.agents) != 2:
            raise ValueError("Observation 2's construction is for exactly two agents")
        a, b = engine.agents
        if a.node == b.node:
            raise ValueError("Observation 2 needs the agents to start at distinct nodes")

    def choose_missing_edge(self, engine: "Engine"):
        topology = engine.topology
        nodes = []          # predicted node of each agent after the round
        crossing = []       # edge each agent would traverse, if any
        for agent in engine.agents:
            intent = (
                engine.peek_intended_action(agent.index)
                if not agent.terminated
                else None
            )
            if intent is not None and intent.kind is ActionKind.MOVE:
                if intent.direction is not None:
                    port = agent.orientation.to_global(intent.direction)
                else:
                    port = intent.port  # graph explorers move by port number
                nodes.append(topology.neighbor(agent.node, port))
                crossing.append(topology.edge_from(agent.node, port))
            else:
                nodes.append(agent.node)
                crossing.append(None)

        if nodes[0] != nodes[1]:
            return None  # includes the same-edge swap: predicted nodes differ
        # Imminent co-location: block one of the traversals causing it.
        for edge in crossing:
            if edge is not None:
                return edge
        return None  # neither agent moves; they were already co-located

    def __repr__(self) -> str:
        return "MeetingPreventionAdversary()"
