"""Worst-case schedules and lower-bound adversaries (Fig. 2, Th. 13/15).

These adversaries extract the paper's *lower bounds* from the (optimal)
algorithms: Figure 2's schedule makes ``KnownNNoChirality`` spend exactly
``3n - 6`` rounds, and the zig-zag forcing adversary makes the PT
algorithms spend a quadratic number of edge traversals, matching the
Omega(N*n) / Omega(n^2) bounds of Theorems 13 and 15.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import ActionKind
from ..core.directions import GlobalDirection, MIRRORED, Orientation
from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


class Figure2Schedule:
    """The schedule of Figure 2: exploration takes exactly ``3n - 6`` rounds.

    With agents ``a`` at ``v_i`` and ``b`` at ``v_{i+1}``, both oriented so
    that *left* is the global ``PLUS`` direction (chirality holds):

    * rounds ``0 .. n-4``: edge ``e_i`` is removed — ``a`` is pinned while
      ``b`` walks to ``v_{i-2}``;
    * rounds ``n-3`` onward: edge ``e_{i-2}`` is removed — ``b`` is pinned,
      ``a`` walks over and catches it at round ``2n - 5``, bounces, and
      finishes the lone unexplored node ``v_{i-1}`` the long way round at
      round ``3n - 6``.

    Use :meth:`configuration` for the matching positions/orientations.
    """

    def __init__(self, anchor: int = 0) -> None:
        self._i = anchor

    def configuration(self, ring_size: int) -> dict:
        """Positions/orientations for :func:`repro.api.run_exploration`."""
        if ring_size < 5:
            raise ConfigurationError("the Figure 2 schedule needs n >= 5")
        i = self._i % ring_size
        orientations: list[Orientation] = [MIRRORED, MIRRORED]  # left == PLUS
        return {
            "positions": [i, (i + 1) % ring_size],
            "orientations": orientations,
            "adversary": self,
        }

    def reset(self, engine: "Engine") -> None:
        if engine.ring.size < 5:
            raise ConfigurationError("the Figure 2 schedule needs n >= 5")

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        n = engine.ring.size
        if engine.round_no <= n - 4:
            return self._i % n
        return (self._i - 2) % n

    def __repr__(self) -> str:
        return f"Figure2Schedule(anchor={self._i})"


class ETPingPongAdversary:
    """Theorem 20's closing remark: unbounded (but finite) ET executions.

    "Consider the situation when two agents are blocked going on opposite
    directions on two different edges, while the third agent goes back and
    forth between them; since we are in the ET model, this configuration
    cannot be kept forever, but there is no bound on the number of rounds
    in which it holds."

    Two *wall* agents are parked on ports of two distinct edges; each round
    the adversary removes the edge of one wall and lets the other sleep
    (alternating), so neither ever crosses while the ET fairness condition
    is violated only for as long as the adversary runs.  The *bouncer*
    zig-zags between the walls, generating an unbounded stream of catch
    events with equal-length legs — which the ET algorithm's strict
    ``CheckD`` tolerates indefinitely.  From ``release_round`` on the
    adversary stands down (no removals, everyone active) and the run must
    terminate shortly after, which is exactly the ET guarantee.

    Use as **both** adversary and scheduler with
    ``transport=TransportModel.ET`` and the placement from
    :meth:`configuration`.
    """

    def __init__(self, release_round: int) -> None:
        if release_round < 2:
            raise ConfigurationError("release_round must be >= 2")
        self.release_round = release_round
        self._round = -1
        self._activation: set[int] = set()
        self._edge: int | None = None

    @staticmethod
    def configuration(ring_size: int) -> dict:
        """Walls at v2 (pushing e_1) and v6-ish (pushing outward), bouncer
        between them; wall 1 is mirrored so both walls push away from the
        bouncer's corridor."""
        if ring_size < 7:
            raise ConfigurationError("the ping-pong corridor needs n >= 7")
        from ..core.directions import CANONICAL, MIRRORED

        far = ring_size - 3
        return {
            "positions": [2, (2 + far) // 2, far],
            "orientations": [CANONICAL, CANONICAL, MIRRORED],
        }

    def reset(self, engine: "Engine") -> None:
        if len(engine.agents) != 3:
            raise ConfigurationError("the ping-pong forcing drives three agents")
        self._round = -1

    def _wall_edge(self, engine: "Engine", index: int) -> int | None:
        agent = engine.agents[index]
        if agent.terminated:
            return None
        if agent.port is not None:
            return engine.port_edge(agent)
        return engine.peek_intended_edge(index)

    def _plan(self, engine: "Engine") -> None:
        self._round = engine.round_no
        live = {a.index for a in engine.agents if not a.terminated}
        if engine.round_no >= self.release_round:
            self._edge = None
            self._activation = set(live)
            return
        walls = (0, 2)
        focus = walls[engine.round_no % 2]
        other = walls[1 - engine.round_no % 2]
        self._edge = self._wall_edge(engine, focus)
        self._activation = set(live) - {other}
        if not self._activation:
            self._activation = set(live)

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        self._plan(engine)
        return self._edge

    def select(self, engine: "Engine") -> set[int]:
        if self._round != engine.round_no:
            self._plan(engine)
        return set(self._activation)

    def __repr__(self) -> str:
        return f"ETPingPongAdversary(release_round={self.release_round})"


class ZigZagForcingAdversary:
    """Quadratic-cost forcing for the PT algorithms (Theorems 13 and 15).

    Setup: two agents with chirality (left = global ``MINUS``), PT
    transport.  Agent 0 is the *anchor*, agent 1 the *walker*.  The
    adversary keeps the anchor's next edge removed, so the walker bounces
    off it; each time the walker's rightward excursion reaches ``cap``
    steps the adversary instead removes the *walker's* edge and lets the
    anchor sleep that round — passive transport carries the anchor one
    step left (the proof's "let it move passively on the next node"), so
    the walker's next leftward run is one step longer than its rightward
    run and the algorithm's crossing test ``rightSteps >= leftSteps``
    never fires.  Progress is one node per ~``2*cap`` traversals: a
    quadratic total before the span/landmark termination triggers.

    Use as **both** the adversary and the scheduler, with
    ``transport=TransportModel.PT``.
    """

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ConfigurationError("cap must be >= 1")
        self.cap = cap
        self._round = -1
        self._activation: set[int] = set()
        self._edge: int | None = None

    @staticmethod
    def configuration(ring_size: int) -> dict:
        """Canonical placement: anchor at ``v_1``, walker at ``v_3``."""
        if ring_size < 5:
            raise ConfigurationError("zig-zag forcing needs n >= 5")
        return {"positions": [1, 3], "chirality": True}

    def reset(self, engine: "Engine") -> None:
        if len(engine.agents) != 2:
            raise ConfigurationError("zig-zag forcing drives exactly two agents")
        self._round = -1

    def _pushed_edge(self, engine: "Engine", index: int) -> int | None:
        agent = engine.agents[index]
        if agent.terminated:
            return None
        if agent.port is not None:
            return engine.port_edge(agent)
        return engine.peek_intended_edge(index)

    def _plan(self, engine: "Engine") -> None:
        anchor, walker = engine.agents[0], engine.agents[1]
        live = {a.index for a in engine.agents if not a.terminated}
        self._activation = set(live)
        self._edge = None
        self._round = engine.round_no
        if not live:
            return

        anchor_edge = self._pushed_edge(engine, 0)
        if walker.terminated:
            self._edge = anchor_edge  # pin the anchor forever
            return

        intent = engine.peek_intended_action(1)
        moving_plus = (
            intent.kind is ActionKind.MOVE
            and intent.direction is not None
            and walker.orientation.to_global(intent.direction) is GlobalDirection.PLUS
        )
        excursion = engine.ring.distance(anchor.node, walker.node, GlobalDirection.PLUS)
        if moving_plus and excursion >= self.cap and walker.port is None:
            # End of excursion: pin the walker; sleeping anchor creeps left.
            assert intent.direction is not None
            port = walker.orientation.to_global(intent.direction)
            walker_edge = engine.ring.edge_from(walker.node, port)
            self._edge = walker_edge
            if anchor_edge is not None and anchor_edge != walker_edge and 0 in live:
                self._activation = live - {0}
        else:
            self._edge = anchor_edge

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        self._plan(engine)
        return self._edge

    def select(self, engine: "Engine") -> set[int]:
        if self._round != engine.round_no:
            self._plan(engine)
        return set(self._activation)

    def __repr__(self) -> str:
        return f"ZigZagForcingAdversary(cap={self.cap})"
