"""Edge adversaries: benign baselines and the paper's proof constructions."""

from .simple import (
    FunctionAdversary,
    FixedMissingEdge,
    NoRemoval,
    PeriodicMissingEdge,
    RandomMissingEdge,
)
from .blocking import BlockAgentAdversary, MeetingPreventionAdversary
from .impossibility import (
    NSStarvationAdversary,
    Theorem19Adversary,
    theorem10_configuration,
)
from .restricted import DeltaRecurrentAdversary, TIntervalAdversary
from .worst_case import ETPingPongAdversary, Figure2Schedule, ZigZagForcingAdversary

__all__ = [
    "BlockAgentAdversary",
    "DeltaRecurrentAdversary",
    "ETPingPongAdversary",
    "Figure2Schedule",
    "FixedMissingEdge",
    "FunctionAdversary",
    "MeetingPreventionAdversary",
    "NoRemoval",
    "NSStarvationAdversary",
    "PeriodicMissingEdge",
    "RandomMissingEdge",
    "Theorem19Adversary",
    "TIntervalAdversary",
    "ZigZagForcingAdversary",
    "theorem10_configuration",
]
