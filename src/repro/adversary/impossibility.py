"""Adversaries from the impossibility proofs (Theorems 9, 10, 19).

Impossibility theorems quantify over *all* algorithms; a simulator can only
demonstrate the constructions against concrete protocols.  Each class here
implements the paper's adversary literally enough that, run against any of
this library's algorithms (or any deterministic algorithm a user plugs in),
it produces the failure the proof predicts.  EXPERIMENTS.md labels the
corresponding benches *demonstrations, not proofs*.

Two of these control the activation schedule as well as the missing edge —
pass the same object as both ``adversary=`` and ``scheduler=``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import ActionKind
from ..core.directions import CANONICAL, MIRRORED, Orientation
from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


def _intended_edge(engine: "Engine", index: int) -> int | None:
    """Edge the agent would try to traverse if activated now, if any.

    Thin alias for :meth:`Engine.peek_intended_edge`, which resolves the
    edge once per cached peek (these adversaries ask for every agent every
    round).
    """
    return engine.peek_intended_edge(index)


class NSStarvationAdversary:
    """Theorem 9: in the NS model no algorithm explores, ever.

    The proof's scheduler: let ``A(t)`` be the agents that would move if
    activated and ``P(t)`` the rest; activate ``P(t)`` plus the single
    would-be mover ``first(t)`` that has been inactive longest, and remove
    the edge ``first(t)`` wants to cross.  Nobody moves, yet every agent is
    activated infinitely often (the starving would-be movers rotate through
    ``first(t)``), so the schedule is fair.

    Use as **both** the adversary and the scheduler, with
    ``transport=TransportModel.NS``.
    """

    def __init__(self) -> None:
        self._round = -1
        self._activation: set[int] = set()
        self._edge: int | None = None

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002
        self._round = -1
        self._activation = set()
        self._edge = None

    def _plan(self, engine: "Engine") -> None:
        live = [a.index for a in engine.agents if not a.terminated]
        movers = [i for i in live if _intended_edge(engine, i) is not None]
        passive = [i for i in live if i not in movers]
        if not movers:
            self._activation = set(live)
            self._edge = None
        else:
            first = max(
                movers,
                key=lambda i: (engine.agents[i].rounds_since_active, -i),
            )
            self._activation = set(passive) | {first}
            self._edge = _intended_edge(engine, first)
        self._round = engine.round_no

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        self._plan(engine)
        return self._edge

    def select(self, engine: "Engine") -> set[int]:
        if self._round != engine.round_no:
            self._plan(engine)
        return set(self._activation)

    def __repr__(self) -> str:
        return "NSStarvationAdversary()"


def theorem10_configuration(ring_size: int) -> dict:
    """Theorem 10's scenario: PT, two agents, *no* chirality.

    The proof's adversary defers the ring topology until both agents commit
    to waiting on a port and then identifies the two waited-on edges.  With
    a fixed topology the equivalent configuration is chosen up front: two
    agents with opposite orientations placed so that, pushing their private
    "left", both converge on the two endpoints of the same edge ``e_0``
    within one step.  Keeping ``e_0`` removed (one edge per round — legal)
    and everyone active (no sleeping, hence no passive transport) strands
    them there forever: at most four nodes are ever visited.

    Returns keyword arguments for :func:`repro.api.run_exploration`:
    positions, orientations, and the adversary.  Valid for ``n >= 5``
    (the theorem's own bound).
    """
    if ring_size < 5:
        raise ConfigurationError("Theorem 10 is stated for rings of size n >= 5")
    from .simple import FixedMissingEdge

    # Agent 0: left = MINUS, walks 2 -> 1, then pushes e_0 toward node 0.
    # Agent 1: left = PLUS, walks (n-1) -> 0, then pushes e_0 toward node 1.
    positions = [2, ring_size - 1]
    orientations: list[Orientation] = [CANONICAL, MIRRORED]
    return {
        "positions": positions,
        "orientations": orientations,
        "adversary": FixedMissingEdge(0),
    }


class Theorem19Adversary:
    """Theorem 19: ET with only an upper bound cannot partially terminate.

    The proof builds two rings, ``R1`` of size ``n1`` (one edge perpetually
    missing) and ``R2`` of size ``n2 > n1``, and a schedule on ``R2`` that
    the agents cannot distinguish from the ``R1`` run: the agents live in
    the segment ``v_0 .. v_{n1-1}``, whose two boundary edges
    ``e_{n1-1}`` and ``e_{n2-1}`` play the role of ``R1``'s single missing
    edge.  In "busy" rounds, with agents pushing both boundaries, the
    adversary alternates: remove one boundary edge and put the agents
    pushing the other to sleep.  In the ET model such a schedule is legal
    for any finite number of rounds — long enough for the algorithm to
    terminate believing it explored ``R1``.

    Use as **both** the adversary and the scheduler on the *large* ring,
    with ``transport=TransportModel.ET`` and an algorithm configured for
    the small size ``n1``.
    """

    def __init__(self, small_size: int) -> None:
        if small_size < 3:
            raise ConfigurationError("the simulated small ring needs n1 >= 3")
        self._n1 = small_size
        self._parity = False
        self._round = -1
        self._activation: set[int] = set()
        self._edge: int | None = None

    def reset(self, engine: "Engine") -> None:
        if engine.ring.size <= self._n1:
            raise ConfigurationError(
                f"the host ring (n={engine.ring.size}) must be larger than n1={self._n1}"
            )
        for agent in engine.agents:
            if not agent.node < self._n1:
                raise ConfigurationError(
                    "all agents must start inside the segment v_0 .. v_{n1-1}"
                )
        self._parity = False
        self._round = -1

    def _plan(self, engine: "Engine") -> None:
        e_low = self._n1 - 1
        e_high = engine.ring.size - 1
        live = [a.index for a in engine.agents if not a.terminated]
        low = [i for i in live if _intended_edge(engine, i) == e_low]
        high = [i for i in live if _intended_edge(engine, i) == e_high]
        if low and high:
            if self._parity:
                self._edge, asleep = e_low, set(high)
            else:
                self._edge, asleep = e_high, set(low)
            self._parity = not self._parity
        elif low:
            self._edge, asleep = e_low, set()
        elif high:
            self._edge, asleep = e_high, set()
        else:
            self._edge, asleep = None, set()
        self._activation = set(live) - asleep
        self._round = engine.round_no

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        self._plan(engine)
        return self._edge

    def select(self, engine: "Engine") -> set[int]:
        if self._round != engine.round_no:
            self._plan(engine)
        return set(self._activation)

    def __repr__(self) -> str:
        return f"Theorem19Adversary(small_size={self._n1})"
