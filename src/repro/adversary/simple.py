"""Benign/oblivious edge adversaries.

These choose the missing edge without inspecting agent intentions; they
are the baselines under which the possibility results are exercised.  All
of them respect 1-interval connectivity by construction (at most one edge
missing per round).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


class NoRemoval:
    """The static ring: no edge is ever missing."""

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002
        return None

    def choose_missing_edge(self, engine: "Engine") -> int | None:  # noqa: ARG002
        return None

    def __repr__(self) -> str:
        return "NoRemoval()"


class FixedMissingEdge:
    """Remove one fixed edge during a round window (default: forever).

    The simplest non-trivial adversary; a perpetually missing edge turns
    the ring into a static path, which is the configuration behind many of
    the paper's termination corner cases (e.g. the partial-termination
    behaviour of Theorem 12).
    """

    def __init__(self, edge: int, *, from_round: int = 0, until_round: int | None = None) -> None:
        if from_round < 0:
            raise ConfigurationError("from_round must be >= 0")
        if until_round is not None and until_round <= from_round:
            raise ConfigurationError("until_round must exceed from_round")
        self._edge = edge
        self._from = from_round
        self._until = until_round

    def reset(self, engine: "Engine") -> None:
        if not 0 <= self._edge < engine.ring.size:
            raise ConfigurationError(
                f"edge {self._edge} outside ring of size {engine.ring.size}"
            )

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        t = engine.round_no
        if t < self._from:
            return None
        if self._until is not None and t >= self._until:
            return None
        return self._edge

    def __repr__(self) -> str:
        window = f", from_round={self._from}"
        if self._until is not None:
            window += f", until_round={self._until}"
        return f"FixedMissingEdge({self._edge}{window})"


class PeriodicMissingEdge:
    """Remove ``edge`` in every round where ``round % period < duty``.

    Models intermittent links: present for ``period - duty`` rounds, absent
    for ``duty`` rounds, repeating.
    """

    def __init__(self, edge: int, period: int, duty: int = 1) -> None:
        if period < 1 or not 0 <= duty <= period:
            raise ConfigurationError("need period >= 1 and 0 <= duty <= period")
        self._edge = edge
        self._period = period
        self._duty = duty

    def reset(self, engine: "Engine") -> None:
        if not 0 <= self._edge < engine.ring.size:
            raise ConfigurationError(
                f"edge {self._edge} outside ring of size {engine.ring.size}"
            )

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        if engine.round_no % self._period < self._duty:
            return self._edge
        return None

    def __repr__(self) -> str:
        return f"PeriodicMissingEdge({self._edge}, period={self._period}, duty={self._duty})"


class RandomMissingEdge:
    """Each round, with probability ``p``, remove a uniformly random edge."""

    def __init__(self, p: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("p must be in [0, 1]")
        self._p = p
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002
        self._rng = random.Random(self._seed)

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        if self._p < 1.0 and self._rng.random() >= self._p:
            return None
        return self._rng.randrange(engine.ring.size)

    def __repr__(self) -> str:
        return f"RandomMissingEdge(p={self._p}, seed={self._seed})"


class FunctionAdversary:
    """Adapter: an arbitrary ``engine -> edge | None`` callable.

    The worst-case schedules of the paper (e.g. Figure 2) are plain
    functions of the round number; this adapter keeps them one-liners.
    """

    def __init__(self, fn: Callable[["Engine"], int | None], label: str = "fn") -> None:
        self._fn = fn
        self._label = label

    def reset(self, engine: "Engine") -> None:  # noqa: ARG002
        return None

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        return self._fn(engine)

    def __repr__(self) -> str:
        return f"FunctionAdversary({self._label})"
