"""Restricted dynamism classes from the paper's related work (§1.1.2-1.1.3).

The paper situates 1-interval connectivity among stronger recurrence
assumptions studied elsewhere:

* **T-interval connectivity** ([13] Class 9; [37]) — a connected spanning
  subgraph persists for ``T`` consecutive rounds.  On a ring this means
  the adversary may switch which edge is missing only every ``T`` rounds.
  ``T = 1`` is the paper's model.
* **delta-recurrence** ([37]) — every edge appears at least once every
  ``delta`` rounds; on a ring, no edge stays missing for ``delta``
  consecutive rounds.

These wrappers constrain any inner adversary to the declared class, which
lets the benches measure how exploration cost decays as the dynamism gets
friendlier — the cross-model sensitivity the related work cares about.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.errors import ConfigurationError
from .simple import RandomMissingEdge

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import Engine


class TIntervalAdversary:
    """Hold each inner choice for ``T`` rounds (T-interval connectivity).

    Consults the inner adversary once per ``T``-round window and repeats
    its answer for the whole window, so the spanning subgraph (ring minus
    at most one edge) is stable across any window of ``T`` rounds.
    """

    def __init__(self, inner, interval: int) -> None:
        if interval < 1:
            raise ConfigurationError("the interval T must be >= 1")
        self._inner = inner
        self._interval = interval
        self._held: int | None = None

    def reset(self, engine: "Engine") -> None:
        self._inner.reset(engine)
        self._held = None

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        if engine.round_no % self._interval == 0:
            self._held = self._inner.choose_missing_edge(engine)
        return self._held

    def __repr__(self) -> str:
        return f"TIntervalAdversary({self._inner!r}, interval={self._interval})"


class DeltaRecurrentAdversary:
    """Cap consecutive absences of any edge at ``delta - 1`` rounds.

    Wraps an inner adversary; whenever it would keep one edge missing for
    the ``delta``-th consecutive round, the removal is suppressed for one
    round (the edge "recurs"), after which the inner choice applies again.
    """

    def __init__(self, inner, delta: int) -> None:
        if delta < 1:
            raise ConfigurationError("delta must be >= 1")
        self._inner = inner
        self._delta = delta
        self._streak_edge: int | None = None
        self._streak = 0

    def reset(self, engine: "Engine") -> None:
        self._inner.reset(engine)
        self._streak_edge = None
        self._streak = 0

    def choose_missing_edge(self, engine: "Engine") -> int | None:
        choice = self._inner.choose_missing_edge(engine)
        if choice is None:
            self._streak_edge, self._streak = None, 0
            return None
        if choice == self._streak_edge:
            if self._streak >= self._delta - 1:
                self._streak_edge, self._streak = None, 0
                return None  # forced recurrence
            self._streak += 1
            return choice
        if self._delta == 1:
            # delta = 1: every edge present every round (the static ring);
            # no absence streak may even begin.
            self._streak_edge, self._streak = None, 0
            return None
        self._streak_edge, self._streak = choice, 1
        return choice

    def __repr__(self) -> str:
        return f"DeltaRecurrentAdversary({self._inner!r}, delta={self._delta})"


def recurrence_suite(seed: int, delta: int) -> DeltaRecurrentAdversary:
    """A random adversary confined to the delta-recurrent class."""
    return DeltaRecurrentAdversary(RandomMissingEdge(seed=seed), delta)
