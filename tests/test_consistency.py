"""Cross-module consistency and model corner cases."""

from repro.adversary import DeltaRecurrentAdversary, RandomMissingEdge, TIntervalAdversary
from repro.algorithms.fsync import LandmarkWithChirality, UnconsciousExploration
from repro.algorithms.fsync.landmark_no_chirality import (
    no_chirality_timeout as algorithm_timeout,
)
from repro.analysis.checker import check_safety
from repro.api import run_exploration
from repro.core import TerminationMode
from repro.theory.bounds import no_chirality_timeout as theory_timeout


class TestBoundConsistency:
    def test_timeout_formulas_agree(self):
        """The algorithm's deadline and theory/bounds must never drift."""
        for n in range(3, 200):
            assert algorithm_timeout(n) == theory_timeout(n)

    def test_table_complexity_strings_match_bounds(self):
        from repro.theory import lookup

        row = lookup(algorithm="KnownUpperBound")[0]
        assert "3N - 6" in row.complexity


class TestStartupCorners:
    def test_everything_explored_at_round_zero(self):
        """Three agents covering a 3-ring: exploration holds before any move."""
        result = run_exploration(
            UnconsciousExploration(), ring_size=3, positions=[0, 1],
            max_rounds=30, stop_on_exploration=True,
        )
        assert result.explored  # two agents on a 3-ring finish in one move

        engine_result = run_exploration(
            UnconsciousExploration(), ring_size=3, positions=[0, 1],
            max_rounds=1, stop_on_exploration=True,
        )
        assert engine_result.rounds <= 1

    def test_all_agents_on_one_node_of_minimal_ring(self):
        result = run_exploration(
            UnconsciousExploration(), ring_size=3, positions=[1, 1],
            max_rounds=60, stop_on_exploration=True,
        )
        assert result.explored


class TestAdversaryComposition:
    """The restricted dynamism wrappers compose with the full algorithms."""

    def test_landmark_algorithm_under_t_interval(self):
        for t in (2, 5):
            result = run_exploration(
                LandmarkWithChirality(), ring_size=8, positions=[1, 4],
                landmark=0,
                adversary=TIntervalAdversary(RandomMissingEdge(seed=3), interval=t),
                max_rounds=3_000,
            )
            assert check_safety(result) == []
            assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_landmark_algorithm_under_delta_recurrence(self):
        for delta in (2, 6):
            result = run_exploration(
                LandmarkWithChirality(), ring_size=8, positions=[1, 4],
                landmark=0,
                adversary=DeltaRecurrentAdversary(
                    RandomMissingEdge(seed=4), delta=delta
                ),
                max_rounds=3_000,
            )
            assert check_safety(result) == []
            assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_nested_wrappers(self):
        """delta-recurrence over T-interval over random: still sound."""
        adversary = DeltaRecurrentAdversary(
            TIntervalAdversary(RandomMissingEdge(seed=5), interval=3), delta=4
        )
        result = run_exploration(
            LandmarkWithChirality(), ring_size=8, positions=[2, 6], landmark=0,
            adversary=adversary, max_rounds=3_000,
        )
        assert check_safety(result) == []
        assert result.explored
