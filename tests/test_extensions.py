"""The arbitrary-topology extension (paper §5 open problem)."""

import pytest

from repro.core.errors import AdversaryViolation, ConfigurationError
from repro.extensions import (
    ConnectivityPreservingAdversary,
    DynamicGraphEngine,
    RandomWalkExplorer,
    RotorRouterExplorer,
    StaticGraphAdversary,
    hypercube,
    ring_graph,
    torus,
)
from repro.extensions.explorers import attach_node_oracle

TOPOLOGIES = {
    "ring12": ring_graph(12),
    "torus3x4": torus(3, 4),
    "cube3": hypercube(3),
}


def run_walker(graph, explorer, *, adversary=None, agents=1, horizon=60_000,
               rotor=False):
    engine = DynamicGraphEngine(
        graph, explorer, list(range(agents)),
        adversary=adversary or StaticGraphAdversary(),
    )
    if rotor:
        attach_node_oracle(engine)
    return engine.run(horizon)


class TestTopologies:
    def test_ring_matches_cycle(self):
        graph = ring_graph(8)
        assert graph.number_of_nodes() == 8
        assert all(d == 2 for _, d in graph.degree())

    def test_torus_is_4_regular(self):
        graph = torus(3, 5)
        assert graph.number_of_nodes() == 15
        assert all(d == 4 for _, d in graph.degree())

    def test_hypercube_degrees(self):
        graph = hypercube(4)
        assert graph.number_of_nodes() == 16
        assert all(d == 4 for _, d in graph.degree())


class TestEngineBasics:
    def test_requires_agents_and_connectivity(self):
        import networkx as nx

        with pytest.raises(ConfigurationError):
            DynamicGraphEngine(ring_graph(5), RandomWalkExplorer(), [])
        disconnected = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ConfigurationError):
            DynamicGraphEngine(disconnected, RandomWalkExplorer(), [0])

    def test_start_node_must_exist(self):
        with pytest.raises(ConfigurationError):
            DynamicGraphEngine(ring_graph(5), RandomWalkExplorer(), [99])

    def test_adversary_cannot_disconnect(self):
        class Disconnector:
            def reset(self, engine):
                return None

            def missing_edges(self, engine):
                # remove both edges of node 0: disconnects a ring
                return {frozenset((0, 1)), frozenset((0, 4))}

        engine = DynamicGraphEngine(
            ring_graph(5), RandomWalkExplorer(seed=1), [2],
            adversary=Disconnector(),
        )
        with pytest.raises(AdversaryViolation):
            engine.step()

    def test_connectivity_preserving_adversary_is_legal(self):
        engine = DynamicGraphEngine(
            torus(3, 4), RandomWalkExplorer(seed=2), [0],
            adversary=ConnectivityPreservingAdversary(budget=3, seed=5),
        )
        for _ in range(50):
            engine.step()  # the engine itself validates connectivity

    def test_blocked_agent_waits_on_port(self):
        class RemoveAll:
            """Keep the agent's port-0 edge missing while switched on."""

            def __init__(self):
                self.on = True

            def reset(self, engine):
                return None

            def missing_edges(self, engine):
                if not self.on:
                    return set()
                agent = engine.agents[0]
                return {engine._edge_of_port(agent.node, 0)}

        class PushPortZero:
            name = "push0"

            def setup(self, memory):
                return None

            def choose_port(self, snapshot, memory):
                return 0

        adversary = RemoveAll()
        engine = DynamicGraphEngine(
            ring_graph(6), PushPortZero(), [3], adversary=adversary
        )
        engine.step()
        assert engine.agents[0].port == 0
        assert engine.agents[0].node == 3
        adversary.on = False
        engine.step()
        assert engine.agents[0].node != 3

    def test_port_mutual_exclusion(self):
        class PushPortZero:
            name = "push0"

            def setup(self, memory):
                return None

            def choose_port(self, snapshot, memory):
                return 0

        class HoldEverything:
            def reset(self, engine):
                return None

            def missing_edges(self, engine):
                return {frozenset((0, 1))}  # port 0 of node 0 is edge (0,1)

        engine = DynamicGraphEngine(
            ring_graph(6), PushPortZero(), [0, 0], adversary=HoldEverything()
        )
        engine.step()
        holders = [a for a in engine.agents if a.port == 0]
        assert len(holders) == 1  # the other agent was denied


class TestExploration:
    @pytest.mark.parametrize("label", sorted(TOPOLOGIES))
    def test_random_walk_explores_static(self, label):
        result = run_walker(TOPOLOGIES[label], RandomWalkExplorer(seed=7))
        assert result.explored

    @pytest.mark.parametrize("label", sorted(TOPOLOGIES))
    def test_rotor_router_explores_static(self, label):
        result = run_walker(TOPOLOGIES[label], RotorRouterExplorer(), rotor=True)
        assert result.explored

    @pytest.mark.parametrize("label", sorted(TOPOLOGIES))
    def test_random_walk_explores_dynamic(self, label):
        result = run_walker(
            TOPOLOGIES[label], RandomWalkExplorer(seed=11),
            adversary=ConnectivityPreservingAdversary(budget=1, seed=13),
        )
        assert result.explored

    @pytest.mark.parametrize("label", sorted(TOPOLOGIES))
    def test_rotor_router_explores_dynamic(self, label):
        result = run_walker(
            TOPOLOGIES[label], RotorRouterExplorer(), rotor=True,
            adversary=ConnectivityPreservingAdversary(budget=1, seed=17),
        )
        assert result.explored

    def test_multiple_agents_explore_faster_on_average(self):
        graph = torus(4, 4)
        solo = run_walker(graph, RandomWalkExplorer(seed=3))
        team = run_walker(graph, RandomWalkExplorer(seed=3), agents=4)
        assert team.explored
        assert team.exploration_round <= solo.exploration_round

    def test_rotor_router_requires_the_oracle(self):
        engine = DynamicGraphEngine(ring_graph(6), RotorRouterExplorer(), [0])
        with pytest.raises(ConfigurationError):
            engine.step()
